"""The SMS planner: SQL -> a chain of MapReduce jobs.

Mirrors HadoopDB's SMS (SQL-to-MapReduce-to-SQL) planner as the paper
describes it per query:

* Q1 (selection only)          -> one **map-only** job; the full SQL is
  pushed to each worker's local database (§6.1.6),
* Q2 (single-table aggregate)  -> one job; maps compute *partial* aggregates
  locally, one reduce round merges them (§6.1.7),
* Q3 (join)                    -> one job; maps fetch qualified tuples of
  both tables, reducers join (§6.1.8),
* Q4 (join + aggregate)        -> two jobs: join, then aggregation (§6.1.9),
* Q5 (3 joins + aggregate)     -> four jobs (§6.1.10).

The planner is generic over this query family: it splits predicates,
pushes single-table conjuncts and projections into per-worker local SQL,
orders joins by FROM order, decomposes algebraic aggregates into partial
form, and leaves ORDER BY / LIMIT / HAVING / DISTINCT to the lightweight
driver (the paper's SMS does the same — those run in the final serial step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.expr import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    find_aggregates,
)
from repro.sqlengine.parser import SelectItem, SelectStmt, parse
from repro.sqlengine.planner import _combine_conjuncts, _split_conjuncts
from repro.sqlengine.schema import TableSchema


# ----------------------------------------------------------------------
# Plan dataclasses
# ----------------------------------------------------------------------
@dataclass
class TableLocalPlan:
    """Per-worker local SQL for one table binding."""

    binding: str
    table: str
    sql: str
    # Qualified output column names, e.g. ["l.l_orderkey", ...].
    columns: List[str]


@dataclass
class JoinStage:
    """One shuffle join: accumulated rows ⋈ a new table."""

    left_key: str  # qualified column in the accumulated row
    right: TableLocalPlan
    right_key: str  # qualified column in the right table's output
    residual: Optional[Expr] = None  # post-join filter once columns exist


@dataclass
class PartialAggregate:
    """An algebraic aggregate decomposed for map-side partial evaluation."""

    call: FuncCall  # the original aggregate in the query
    partial_sqls: List[str]  # map-side aggregate expressions (1 or 2)
    merge_ops: List[str]  # "sum" | "min" | "max", one per partial
    finalize: str  # "identity" | "div" (avg = sum / count)


@dataclass
class AggregateStage:
    """The final grouping/aggregation step."""

    group_exprs: Tuple[Expr, ...]
    group_names: List[str]
    aggregates: Tuple[FuncCall, ...]
    # Filled only on the single-table pushdown path.
    partials: Optional[List[PartialAggregate]] = None


@dataclass
class DistributedPlan:
    """Everything a driver needs to run the query as MapReduce jobs."""

    base: TableLocalPlan
    joins: List[JoinStage]
    aggregate: Optional[AggregateStage]
    items: Tuple[SelectItem, ...]
    having: Optional[Expr]
    order_by: tuple
    limit: Optional[int]
    distinct: bool
    # Qualified column names of the record stream after all joins.
    columns_after_joins: List[str]
    # The original statement and the part of its WHERE clause that was NOT
    # pushed into per-table local SQL (multi-table conjuncts).  The basic
    # engine's processing phase re-evaluates the query over the fetched
    # partitions using exactly this residual predicate.
    statement: Optional[SelectStmt] = None
    residual_where: Optional[Expr] = None

    @property
    def num_jobs(self) -> int:
        """How many MapReduce jobs the plan compiles to."""
        jobs = len(self.joins)
        if self.aggregate is not None:
            jobs += 1
        elif not self.joins:
            jobs = 1  # map-only selection job
        return jobs


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class SmsPlanner:
    """Compiles SELECT statements against the global schema."""

    def __init__(self, schemas: Dict[str, TableSchema]) -> None:
        self._schemas = {name.lower(): schema for name, schema in schemas.items()}

    def compile(self, sql_or_stmt) -> DistributedPlan:
        stmt = (
            parse(sql_or_stmt)
            if isinstance(sql_or_stmt, str)
            else sql_or_stmt
        )
        if not isinstance(stmt, SelectStmt):
            raise SqlExecutionError("the SMS planner only compiles SELECT")

        bindings = self._resolve_bindings(stmt)
        where_conjuncts = _split_conjuncts(stmt.where)
        conjuncts = list(where_conjuncts)
        for join in stmt.joins:
            if join.kind != "inner":
                raise SqlExecutionError(
                    "the SMS planner supports inner joins only"
                )
            conjuncts.extend(_split_conjuncts(join.condition))

        local_predicates: Dict[str, List[Expr]] = {b: [] for b in bindings}
        multi: List[Expr] = []
        residual_where: List[Expr] = []
        for conjunct in conjuncts:
            touched = self._bindings_of(conjunct, bindings)
            if len(touched) == 1:
                local_predicates[next(iter(touched))].append(conjunct)
            else:
                multi.append(conjunct)
                if conjunct in where_conjuncts:
                    residual_where.append(conjunct)

        aggregates = self._collect_aggregates(stmt)
        needed = self._needed_columns(stmt, bindings, multi)

        order = [ref.binding for ref in stmt.tables] + [
            join.table.binding for join in stmt.joins
        ]

        # Single-table aggregate pushdown (the Q2 path).
        partials = None
        if len(order) == 1 and aggregates:
            partials = _decompose_aggregates(aggregates)

        base = self._local_plan(
            order[0],
            bindings[order[0]],
            local_predicates[order[0]],
            needed[order[0]],
            # On the pushdown path the local SQL computes partial aggregates
            # itself, built by the driver from the AggregateStage.
        )

        joins: List[JoinStage] = []
        in_tree: Set[str] = {order[0]}
        used: List[Expr] = []
        accumulated = list(base.columns)
        for binding in order[1:]:
            in_tree.add(binding)
            right = self._local_plan(
                binding,
                bindings[binding],
                local_predicates[binding],
                needed[binding],
            )
            equi, residuals = self._pick_join_condition(
                multi, used, in_tree, binding, bindings
            )
            if equi is None:
                raise SqlExecutionError(
                    f"no equi-join condition connects {binding!r}; the SMS "
                    "planner does not compile cross joins"
                )
            left_key, right_key = equi
            joins.append(
                JoinStage(
                    left_key=left_key,
                    right=right,
                    right_key=right_key,
                    residual=_combine_conjuncts(residuals),
                )
            )
            accumulated.extend(right.columns)

        leftover = [conjunct for conjunct in multi if conjunct not in used]
        if leftover:
            raise SqlExecutionError(
                f"unplaced join predicates: "
                f"{[conjunct.to_sql() for conjunct in leftover]}"
            )

        aggregate_stage = None
        if stmt.group_by or aggregates:
            group_names = []
            for expr in stmt.group_by:
                if isinstance(expr, ColumnRef):
                    group_names.append(
                        self._qualify(expr.name, bindings)
                    )
                else:
                    group_names.append(expr.to_sql().lower())
            aggregate_stage = AggregateStage(
                group_exprs=tuple(stmt.group_by),
                group_names=group_names,
                aggregates=tuple(aggregates),
                partials=partials,
            )
        elif stmt.having is not None:
            raise SqlExecutionError("HAVING requires GROUP BY or aggregates")

        return DistributedPlan(
            base=base,
            joins=joins,
            aggregate=aggregate_stage,
            items=stmt.items,
            having=stmt.having,
            order_by=stmt.order_by,
            limit=stmt.limit,
            distinct=stmt.distinct,
            columns_after_joins=accumulated,
            statement=stmt,
            residual_where=_combine_conjuncts(residual_where),
        )

    # ------------------------------------------------------------------
    # Local plans
    # ------------------------------------------------------------------
    def _local_plan(
        self,
        binding: str,
        table: str,
        predicates: List[Expr],
        columns: List[str],
    ) -> TableLocalPlan:
        where = _combine_conjuncts(predicates)
        bare = [name.rsplit(".", 1)[-1] for name in columns]
        select_list = ", ".join(f"{binding}.{column}" for column in bare)
        sql = f"SELECT {select_list} FROM {table} {binding}"
        if where is not None:
            sql += f" WHERE {where.to_sql()}"
        return TableLocalPlan(
            binding=binding,
            table=table,
            sql=sql,
            columns=[f"{binding}.{column}" for column in bare],
        )

    # ------------------------------------------------------------------
    # Binding resolution (mirrors the local planner's rules)
    # ------------------------------------------------------------------
    def _resolve_bindings(self, stmt: SelectStmt) -> Dict[str, str]:
        bindings: Dict[str, str] = {}
        for ref in list(stmt.tables) + [join.table for join in stmt.joins]:
            if ref.table not in self._schemas:
                raise SqlCatalogError(f"unknown table: {ref.table!r}")
            if ref.binding in bindings:
                raise SqlCatalogError(f"duplicate binding: {ref.binding!r}")
            bindings[ref.binding] = ref.table
        return bindings

    def _owner_of(self, name: str, bindings: Dict[str, str]) -> str:
        lowered = name.lower()
        if "." in lowered:
            qualifier = lowered.split(".", 1)[0]
            if qualifier in bindings:
                return qualifier
        bare = lowered.rsplit(".", 1)[-1]
        owners = [
            binding
            for binding, table in bindings.items()
            if self._schemas[table].has_column(bare)
        ]
        if len(owners) == 1:
            return owners[0]
        if len(owners) > 1:
            raise SqlExecutionError(f"ambiguous column: {name!r}")
        raise SqlCatalogError(f"unknown column: {name!r}")

    def _qualify(self, name: str, bindings: Dict[str, str]) -> str:
        owner = self._owner_of(name, bindings)
        return f"{owner}.{name.lower().rsplit('.', 1)[-1]}"

    def _bindings_of(self, expr: Expr, bindings: Dict[str, str]) -> Set[str]:
        return {
            self._owner_of(name, bindings)
            for name in expr.referenced_columns()
        }

    # ------------------------------------------------------------------
    # Column pruning
    # ------------------------------------------------------------------
    def _needed_columns(
        self,
        stmt: SelectStmt,
        bindings: Dict[str, str],
        multi_conjuncts: List[Expr],
    ) -> Dict[str, List[str]]:
        """Which columns of each binding must survive the local projection."""
        needed: Dict[str, List[str]] = {binding: [] for binding in bindings}

        def note(name: str) -> None:
            owner = self._owner_of(name, bindings)
            bare = name.lower().rsplit(".", 1)[-1]
            if bare not in needed[owner]:
                needed[owner].append(bare)

        star_all = any(item.is_star and item.star_qualifier is None
                       for item in stmt.items)
        star_bindings = {
            item.star_qualifier
            for item in stmt.items
            if item.is_star and item.star_qualifier is not None
        }
        for binding, table in bindings.items():
            if star_all or binding in star_bindings:
                needed[binding] = list(self._schemas[table].column_names)

        sources: List[Expr] = [
            item.expr for item in stmt.items if item.expr is not None
        ]
        sources.extend(multi_conjuncts)
        sources.extend(stmt.group_by)
        if stmt.having is not None:
            sources.append(stmt.having)
        for order_item in stmt.order_by:
            sources.append(order_item.expr)
        for expr in sources:
            for name in expr.referenced_columns():
                # ORDER BY may reference projection aliases; skip those.
                try:
                    note(name)
                except SqlCatalogError:
                    aliases = {
                        item.alias for item in stmt.items if item.alias
                    }
                    if name.lower() not in aliases:
                        raise
        for binding in needed:
            if not needed[binding]:
                # A table joined purely for its filtering effect still needs
                # its join key, found among the multi conjuncts; fall back to
                # the first column to keep the stream non-empty.
                needed[binding].append(
                    self._schemas[bindings[binding]].column_names[0]
                )
        return needed

    # ------------------------------------------------------------------
    # Join conditions
    # ------------------------------------------------------------------
    def _pick_join_condition(
        self,
        multi: List[Expr],
        used: List[Expr],
        in_tree: Set[str],
        new_binding: str,
        bindings: Dict[str, str],
    ):
        """The equi condition linking ``new_binding`` plus residual filters."""
        equi: Optional[Tuple[str, str]] = None
        residuals: List[Expr] = []
        for conjunct in multi:
            if conjunct in used:
                continue
            touched = self._bindings_of(conjunct, bindings)
            if not touched <= in_tree or new_binding not in touched:
                continue
            pair = self._as_equi_pair(conjunct, new_binding, bindings)
            if pair is not None and equi is None:
                equi = pair
                used.append(conjunct)
            else:
                residuals.append(conjunct)
                used.append(conjunct)
        return equi, residuals

    def _as_equi_pair(
        self, conjunct: Expr, new_binding: str, bindings: Dict[str, str]
    ) -> Optional[Tuple[str, str]]:
        if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
            return None
        if not isinstance(conjunct.left, ColumnRef) or not isinstance(
            conjunct.right, ColumnRef
        ):
            return None
        left_owner = self._owner_of(conjunct.left.name, bindings)
        right_owner = self._owner_of(conjunct.right.name, bindings)
        if left_owner == right_owner:
            return None
        left_name = self._qualify(conjunct.left.name, bindings)
        right_name = self._qualify(conjunct.right.name, bindings)
        if right_owner == new_binding:
            return left_name, right_name
        if left_owner == new_binding:
            return right_name, left_name
        return None

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def _collect_aggregates(self, stmt: SelectStmt) -> List[FuncCall]:
        aggregates: List[FuncCall] = []
        seen = set()
        sources = [item.expr for item in stmt.items if item.expr is not None]
        if stmt.having is not None:
            sources.append(stmt.having)
        for expr in sources:
            for aggregate in find_aggregates(expr):
                key = aggregate.to_sql().lower()
                if key not in seen:
                    seen.add(key)
                    aggregates.append(aggregate)
        return aggregates


def partial_aggregate_plan(plan: DistributedPlan) -> TableLocalPlan:
    """Rewrite a single-table aggregate plan's local SQL to partial form.

    Used by both HadoopDB's map tasks and BestPeer++'s basic engine (§6.1.7:
    "sends the entire SQL query to each data owner peer ... The partial
    aggregation results are then sent back").
    """
    aggregate = plan.aggregate
    if aggregate is None or aggregate.partials is None:
        raise SqlExecutionError("plan has no decomposable aggregates")
    select_parts = [expr.to_sql() for expr in aggregate.group_exprs]
    for partial in aggregate.partials:
        select_parts.extend(partial.partial_sqls)
    sql = (
        f"SELECT {', '.join(select_parts)} "
        f"FROM {plan.base.table} {plan.base.binding}"
    )
    where_index = plan.base.sql.upper().find(" WHERE ")
    if where_index >= 0:
        sql += plan.base.sql[where_index:]
    if aggregate.group_exprs:
        sql += " GROUP BY " + ", ".join(
            expr.to_sql() for expr in aggregate.group_exprs
        )
    return TableLocalPlan(
        binding=plan.base.binding,
        table=plan.base.table,
        sql=sql,
        columns=[],
    )


def _decompose_aggregates(
    aggregates: Sequence[FuncCall],
) -> Optional[List[PartialAggregate]]:
    """Split algebraic aggregates into map-side partials + merge ops.

    Returns ``None`` when any aggregate is not algebraically decomposable
    (COUNT(DISTINCT ...)), in which case the driver falls back to shuffling
    raw rows.
    """
    partials: List[PartialAggregate] = []
    for call in aggregates:
        if call.distinct:
            return None
        name = call.name.lower()
        if call.star:
            partials.append(
                PartialAggregate(call, ["COUNT(*)"], ["sum"], "identity")
            )
            continue
        arg_sql = call.args[0].to_sql()
        if name in ("sum", "count"):
            partials.append(
                PartialAggregate(
                    call, [f"{name.upper()}({arg_sql})"], ["sum"], "identity"
                )
            )
        elif name in ("min", "max"):
            partials.append(
                PartialAggregate(
                    call, [f"{name.upper()}({arg_sql})"], [name], "identity"
                )
            )
        elif name == "avg":
            partials.append(
                PartialAggregate(
                    call,
                    [f"SUM({arg_sql})", f"COUNT({arg_sql})"],
                    ["sum", "sum"],
                    "div",
                )
            )
        else:  # pragma: no cover - parser limits aggregate names
            return None
    return partials
