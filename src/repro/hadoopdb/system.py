"""The HadoopDB cluster facade.

Wires together the simulated network, HDFS, the MapReduce engine, one local
database per worker, the SMS planner and the plan driver into a system with
a one-call interface: :meth:`HadoopDbCluster.execute`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.hadoopdb.driver import DistributedPlanDriver, DriverResult, LocalResult
from repro.hadoopdb.sms import SmsPlanner
from repro.mapreduce.engine import MapReduceConfig, MapReduceEngine
from repro.mapreduce.hdfs import Hdfs
from repro.sim.compute import DEFAULT_COMPUTE_MODEL, ComputeModel
from repro.sim.network import NetworkConfig, SimNetwork
from repro.sqlengine.database import Database
from repro.sqlengine.schema import TableSchema


@dataclass
class HadoopDbResult:
    """Query output plus the simulated end-to-end latency."""

    columns: List[str]
    records: List[tuple]
    duration_s: float
    num_jobs: int

    def __len__(self) -> int:
        return len(self.records)


class HadoopDbCluster:
    """N worker nodes, each hosting a task tracker and a local database.

    Per the paper's setup (§6.1.1/§6.1.3): worker nodes double as datanodes,
    a dedicated node acts as job tracker + HDFS namenode, and tables are
    *not* co-partitioned across workers.
    """

    def __init__(
        self,
        num_workers: int,
        network: Optional[SimNetwork] = None,
        mr_config: Optional[MapReduceConfig] = None,
        compute_model: Optional[ComputeModel] = None,
        # Worker compute capacity; m1.small = 1.0 as in the benchmark.
        compute_units: float = 1.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"need at least one worker: {num_workers}")
        self.network = network or SimNetwork()
        self.workers = [f"hdb-worker-{i}" for i in range(num_workers)]
        self.jobtracker = "hdb-jobtracker"
        for host in self.workers + [self.jobtracker]:
            self.network.add_host(host)
        self.hdfs = Hdfs(self.network)
        for host in self.workers:
            self.hdfs.register_datanode(host)
        self.engine = MapReduceEngine(
            self.workers, self.network, self.hdfs, mr_config
        )
        self.compute_model = compute_model or DEFAULT_COMPUTE_MODEL
        self.compute_units = compute_units
        self.databases: Dict[str, Database] = {
            host: Database(host) for host in self.workers
        }
        self._schemas: Dict[str, TableSchema] = {}
        self._query_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Loading (SQL COPY + index build per worker, §6.1.5)
    # ------------------------------------------------------------------
    def create_tables(
        self,
        schemas: Sequence[TableSchema],
        secondary_indices: Optional[Dict[str, List[str]]] = None,
    ) -> None:
        for schema in schemas:
            self._schemas[schema.name] = schema
            for database in self.databases.values():
                database.create_table(schema)
                for column in (secondary_indices or {}).get(schema.name, []):
                    database.table(schema.name).create_index(
                        f"idx_{schema.name}_{column}", column
                    )

    def load_worker(self, worker_index: int, data: Dict[str, List[tuple]]) -> None:
        """Bulk-load one worker's partition of each table."""
        database = self.databases[self.workers[worker_index]]
        for table, rows in data.items():
            database.table(table).insert_many(rows)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> HadoopDbResult:
        """Compile with the SMS planner and run the MapReduce job chain."""
        plan = SmsPlanner(self._schemas).compile(sql)
        driver = DistributedPlanDriver(
            self.engine, self.workers, self._local_execute
        )
        query_id = f"q{next(self._query_counter)}"
        result = driver.run(plan, query_id)
        return HadoopDbResult(
            columns=result.columns,
            records=result.records,
            duration_s=result.duration_s,
            num_jobs=len(result.jobs),
        )

    def _local_execute(self, host: str, sql: str) -> LocalResult:
        query_result = self.databases[host].execute(sql)
        return LocalResult(
            records=list(query_result.rows),
            seconds=self.compute_model.seconds(
                query_result.stats, self.compute_units
            ),
        )
