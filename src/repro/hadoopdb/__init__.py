"""HadoopDB — the baseline system of the paper's performance benchmark.

HadoopDB (Abouzeid et al., VLDB'09) is "an architectural hybrid of MapReduce
and DBMS technologies": every worker node hosts a local single-node database
(PostgreSQL in the paper; :class:`repro.sqlengine.Database` here) and an SMS
planner compiles SQL into chains of MapReduce jobs that push selections and
projections into the local databases.

Configuration follows §6.1.3/§6.1.5 of the BestPeer++ paper: 256 MB HDFS
blocks, replication 3, one map and one reduce slot per worker, reducers set
equal to the number of workers, and — crucially — *no co-partitioning* ("we
disabled this co-partition function for HadoopDB"), so every join shuffles.
"""

from repro.hadoopdb.sms import DistributedPlan, SmsPlanner
from repro.hadoopdb.system import HadoopDbCluster, HadoopDbResult

__all__ = [
    "SmsPlanner",
    "DistributedPlan",
    "HadoopDbCluster",
    "HadoopDbResult",
]
