"""Executes a :class:`~repro.hadoopdb.sms.DistributedPlan` as MapReduce jobs.

This driver is shared between HadoopDB and BestPeer++'s own MapReduce engine
(§5.4) — the job shapes are identical; only where the input splits come from
differs (PostgreSQL workers vs. BestPeer++ instances), which is abstracted
behind the ``local_execute`` callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SqlExecutionError
from repro.hadoopdb.sms import (
    AggregateStage,
    DistributedPlan,
    JoinStage,
    TableLocalPlan,
    partial_aggregate_plan,
)
from repro.mapreduce.engine import MapReduceEngine, records_byte_size
from repro.mapreduce.job import InputSplit, JobResult, MapReduceJob, SplitData
from repro.sqlengine.executor import compute_aggregates
from repro.sqlengine.expr import RowLayout


@dataclass
class LocalResult:
    """What running a pushed-down SQL fragment on one worker yields."""

    records: List[tuple]
    seconds: float


# (host, sql) -> LocalResult
LocalExecuteFn = Callable[[str, str], LocalResult]


@dataclass
class DriverResult:
    """Final records plus per-job accounting."""

    columns: List[str]
    records: List[tuple]
    jobs: List[JobResult]

    @property
    def duration_s(self) -> float:
        """Jobs run sequentially (§7: 'processed sequentially')."""
        return sum(job.duration_s for job in self.jobs)


class DistributedPlanDriver:
    """Runs compiled plans over a MapReduce engine."""

    def __init__(
        self,
        engine: MapReduceEngine,
        workers: Sequence[str],
        local_execute: LocalExecuteFn,
    ) -> None:
        self.engine = engine
        self.workers = list(workers)
        self.local_execute = local_execute

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, plan: DistributedPlan, query_id: str) -> DriverResult:
        jobs: List[JobResult] = []

        if not plan.joins and plan.aggregate is None:
            # Q1 shape: one map-only job pushing the full selection down.
            result = self.engine.run_job(
                MapReduceJob(
                    name=f"{query_id}-select",
                    splits=self._table_splits(plan.base),
                    map_fn=lambda row: [(None, row)],
                )
            )
            jobs.append(result)
            columns = list(plan.columns_after_joins)
            records = result.records
        elif not plan.joins and plan.aggregate is not None:
            result, columns = self._run_single_table_aggregate(plan, query_id)
            jobs.append(result)
            records = result.records
        else:
            records, columns, join_jobs = self._run_join_chain(plan, query_id)
            jobs.extend(join_jobs)
            if plan.aggregate is not None:
                agg_result, columns = self._run_aggregate_job(
                    plan, query_id, len(jobs)
                )
                jobs.append(agg_result)
                records = agg_result.records

        records, columns = self._finalize(plan, records, columns)
        return DriverResult(columns=columns, records=records, jobs=jobs)

    # ------------------------------------------------------------------
    # Splits
    # ------------------------------------------------------------------
    def _table_splits(
        self, local_plan: TableLocalPlan, tag: Optional[str] = None
    ) -> List[InputSplit]:
        splits = []
        for host in self.workers:
            def fetch(host=host, sql=local_plan.sql, tag=tag):
                local = self.local_execute(host, sql)
                records = local.records
                if tag is not None:
                    records = [(tag, row) for row in records]
                return SplitData(
                    records=records,
                    local_seconds=local.seconds,
                    bytes_estimate=records_byte_size(local.records),
                )

            splits.append(
                InputSplit(host=host, fetch=fetch, label=local_plan.table)
            )
        return splits

    def _hdfs_splits(self, path: str, tag: Optional[str] = None) -> List[InputSplit]:
        """Each worker reads its share of the previous stage's HDFS output."""
        worker_count = len(self.workers)
        splits = []
        for index, host in enumerate(self.workers):
            def fetch(host=host, index=index, tag=tag):
                records, seconds = self.engine.hdfs.read(path, host)
                share = records[index::worker_count]
                if tag is not None:
                    share = [(tag, row) for row in share]
                return SplitData(
                    records=share, local_seconds=seconds / worker_count
                )

            splits.append(InputSplit(host=host, fetch=fetch, label=path))
        return splits

    # ------------------------------------------------------------------
    # Join chain (Q3/Q4/Q5 shapes)
    # ------------------------------------------------------------------
    def _run_join_chain(self, plan: DistributedPlan, query_id: str):
        columns = list(plan.base.columns)
        jobs: List[JobResult] = []
        previous_path: Optional[str] = None
        for stage_index, stage in enumerate(plan.joins):
            left_layout = RowLayout(columns)
            left_position = left_layout.resolve(stage.left_key)
            right_layout = RowLayout(stage.right.columns)
            right_position = right_layout.resolve(stage.right_key)

            if previous_path is None:
                left_splits = self._table_splits(plan.base, tag="L")
            else:
                left_splits = self._hdfs_splits(previous_path, tag="L")
            right_splits = self._table_splits(stage.right, tag="R")

            out_columns = columns + stage.right.columns
            out_layout = RowLayout(out_columns)
            residual = stage.residual

            def map_fn(tagged, lp=left_position, rp=right_position):
                tag, row = tagged
                key = row[lp] if tag == "L" else row[rp]
                if key is None:
                    return []
                return [(key, tagged)]

            def reduce_fn(key, tagged_rows, layout=out_layout, residual=residual):
                lefts = [row for tag, row in tagged_rows if tag == "L"]
                rights = [row for tag, row in tagged_rows if tag == "R"]
                joined = []
                for left_row in lefts:
                    for right_row in rights:
                        combined = left_row + right_row
                        if residual is None or residual.evaluate(
                            combined, layout
                        ) is True:
                            joined.append(combined)
                return joined

            # Every stage persists to HDFS ("The join results are then
            # written to HDFS", §6.1.9); the next join or the aggregation
            # job reads it back.
            output_path = f"/{query_id}/stage-{stage_index}"
            result = self.engine.run_job(
                MapReduceJob(
                    name=f"{query_id}-join-{stage_index}",
                    splits=left_splits + right_splits,
                    map_fn=map_fn,
                    reduce_fn=reduce_fn,
                    num_reducers=len(self.workers),
                    output_path=output_path,
                )
            )
            jobs.append(result)
            previous_path = output_path
            columns = out_columns
        self._last_join_path = previous_path
        return jobs[-1].records, columns, jobs

    # ------------------------------------------------------------------
    # Aggregation jobs
    # ------------------------------------------------------------------
    def _run_aggregate_job(
        self, plan: DistributedPlan, query_id: str, stage_index: int
    ):
        aggregate = plan.aggregate
        layout = RowLayout(plan.columns_after_joins)
        group_exprs = aggregate.group_exprs
        aggregates = aggregate.aggregates

        def map_fn(row):
            key = tuple(expr.evaluate(row, layout) for expr in group_exprs)
            return [(key, row)]

        def reduce_fn(key, rows):
            values = compute_aggregates(aggregates, rows, layout)
            return [tuple(key) + values]

        result = self.engine.run_job(
            MapReduceJob(
                name=f"{query_id}-aggregate",
                splits=self._hdfs_splits(self._last_join_path),
                map_fn=map_fn,
                reduce_fn=reduce_fn,
                num_reducers=len(self.workers),
            )
        )
        columns = aggregate.group_names + [
            call.to_sql().lower() for call in aggregates
        ]
        return result, columns

    def _run_single_table_aggregate(self, plan: DistributedPlan, query_id: str):
        aggregate = plan.aggregate
        group_count = len(aggregate.group_exprs)
        columns = aggregate.group_names + [
            call.to_sql().lower() for call in aggregate.aggregates
        ]

        if aggregate.partials is None:
            # Non-decomposable aggregates: shuffle raw rows (rare path).
            layout = RowLayout(plan.base.columns)
            group_exprs = aggregate.group_exprs
            aggregates = aggregate.aggregates

            def raw_map(row):
                key = tuple(expr.evaluate(row, layout) for expr in group_exprs)
                return [(key, row)]

            def raw_reduce(key, rows):
                return [tuple(key) + compute_aggregates(aggregates, rows, layout)]

            result = self.engine.run_job(
                MapReduceJob(
                    name=f"{query_id}-aggregate",
                    splits=self._table_splits(plan.base),
                    map_fn=raw_map,
                    reduce_fn=raw_reduce,
                    num_reducers=len(self.workers),
                )
            )
            return result, columns

        # The Q2 path: maps compute partial aggregates via local SQL; the
        # reduce round merges them.
        partial_plan = self._partial_aggregate_plan(plan)
        partials = aggregate.partials
        merge_ops: List[str] = []
        for partial in partials:
            merge_ops.extend(partial.merge_ops)

        def partial_map(row):
            return [(tuple(row[:group_count]), tuple(row[group_count:]))]

        def partial_reduce(key, partial_rows):
            merged = list(partial_rows[0])
            for partial_row in partial_rows[1:]:
                for position, op in enumerate(merge_ops):
                    merged[position] = _merge_value(
                        op, merged[position], partial_row[position]
                    )
            return [tuple(key) + _finalize_partials(partials, merged)]

        result = self.engine.run_job(
            MapReduceJob(
                name=f"{query_id}-partial-aggregate",
                splits=self._table_splits(partial_plan),
                map_fn=partial_map,
                reduce_fn=partial_reduce,
                # A scalar aggregate has a single group; more reducers would
                # sit idle.
                num_reducers=1 if group_count == 0 else len(self.workers),
            )
        )
        return result, columns

    def _partial_aggregate_plan(self, plan: DistributedPlan) -> TableLocalPlan:
        """Rewrite the base local SQL to compute partial aggregates."""
        return partial_aggregate_plan(plan)

    # ------------------------------------------------------------------
    # Driver-side finishing: HAVING, projection, DISTINCT, ORDER, LIMIT
    # ------------------------------------------------------------------
    def _finalize(self, plan: DistributedPlan, records, columns):
        return finalize_records(plan, records, columns)


def finalize_records(plan: DistributedPlan, records, columns):
    """Apply HAVING, projection, DISTINCT, ORDER BY and LIMIT serially.

    Shared by every distributed execution path (HadoopDB's driver and
    BestPeer++'s engines): these steps run on the coordinating node over the
    already-small final record stream.
    """
    layout = RowLayout(columns)
    if plan.having is not None:
        records = [
            row for row in records
            if plan.having.evaluate(row, layout) is True
        ]

    output_names: List[str] = []
    evaluators = []
    for item in plan.items:
        if item.is_star:
            for position, column in enumerate(layout.columns):
                if item.star_qualifier is not None and not column.startswith(
                    item.star_qualifier + "."
                ):
                    continue
                output_names.append(column)
                evaluators.append(
                    lambda row, position=position: row[position]
                )
            continue
        output_names.append(item.output_name().lower())
        evaluators.append(
            lambda row, expr=item.expr: expr.evaluate(row, layout)
        )
    projected = [
        tuple(evaluate(row) for evaluate in evaluators) for row in records
    ]
    out_layout = RowLayout(output_names)

    if plan.distinct:
        seen = set()
        unique = []
        for row in projected:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        projected = unique

    for order_item in reversed(plan.order_by):
        try:
            target_layout, target = out_layout, projected
            keyed = sorted(
                target,
                key=lambda row: _null_safe(
                    order_item.expr.evaluate(row, target_layout)
                ),
                reverse=not order_item.ascending,
            )
            projected = keyed
        except SqlExecutionError:
            # Order key not in the projection: sort the raw records and
            # re-project (the local planner's sort-below-project case).
            records = sorted(
                records,
                key=lambda row: _null_safe(
                    order_item.expr.evaluate(row, layout)
                ),
                reverse=not order_item.ascending,
            )
            projected = [
                tuple(evaluate(row) for evaluate in evaluators)
                for row in records
            ]

    if plan.limit is not None:
        projected = projected[: plan.limit]
    return projected, output_names


def merge_partial_aggregates(partials, partial_rows: Sequence[tuple]) -> Tuple[object, ...]:
    """Merge map-side partial aggregate rows and finalize them.

    ``partial_rows`` hold only the partial values (group keys stripped);
    returns the finalized aggregate values.  Shared by HadoopDB's reducers
    and BestPeer++'s basic engine (§6.1.7's "final aggregation").
    """
    merge_ops: List[str] = []
    for partial in partials:
        merge_ops.extend(partial.merge_ops)
    merged = list(partial_rows[0])
    for row in partial_rows[1:]:
        for position, op in enumerate(merge_ops):
            merged[position] = _merge_value(op, merged[position], row[position])
    return _finalize_partials(partials, merged)


def _merge_value(op: str, left: object, right: object) -> object:
    if left is None:
        return right
    if right is None:
        return left
    if op == "sum":
        return left + right
    if op == "min":
        return min(left, right)
    return max(left, right)


def _finalize_partials(partials, merged: List[object]) -> Tuple[object, ...]:
    values: List[object] = []
    position = 0
    for partial in partials:
        width = len(partial.partial_sqls)
        chunk = merged[position : position + width]
        position += width
        if partial.finalize == "div":
            total, count = chunk
            values.append(None if not count else total / count)
        else:
            value = chunk[0]
            if partial.call.name.lower() == "count" and value is None:
                value = 0
            values.append(value)
    return tuple(values)


class _NullsFirst:
    def __lt__(self, other):
        return not isinstance(other, _NullsFirst)

    def __gt__(self, other):
        return False


_NULLS_FIRST = _NullsFirst()


def _null_safe(value: object):
    return _NULLS_FIRST if value is None else value
