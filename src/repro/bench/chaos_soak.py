"""Nightly chaos soak: bootstrap crash/partition sweep over many seeds.

For every seed this driver replays the same TPC-H workload — queries, a
late peer join, one maintenance epoch, more queries — under three fault
scenarios aimed at the bootstrap HA pair:

* ``bootstrap-crash``   — the primary's instance crashes mid-workload,
* ``bootstrap-partition`` — the primary is cut off by a symmetric
  :class:`~repro.sim.failure.Partition` (split-brain attempt), and
* ``drops-and-crash``   — message drops layered on top of a crash.

Each scenario must (a) return answers row-identical to the fault-free
baseline, (b) actually exercise a standby promotion, (c) satisfy the
bootstrap safety invariants (:func:`repro.sim.chaos
.verify_bootstrap_invariants`), and (d) be bit-for-bit deterministic —
the scenario runs twice and the full outcome (answers, promotions,
leadership epochs, authoritative-log fingerprint) must repeat exactly.

On the first divergence the failing seed and its fault plan are written
as a JSON artifact (``--out``) for CI to upload, and the process exits
non-zero.  Everything is derived arithmetically from the seed — no wall
clock, no global RNG — so a failure replays locally from the artifact
alone:  ``python -m repro.bench.chaos_soak --start-seed N --seeds 1``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.core import BestPeerNetwork
from repro.errors import ReproError
from repro.sim import FaultPlan, Partition, verify_bootstrap_invariants
from repro.tpch import Q1, Q2, SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator

DATA_SEED = 21
SCALE = 0.25
PEER_COUNT = 3
LATE_PEER = "late-joiner"
QUERIES = (Q2(), Q1(ship_date="1998-11-01"))
#: Scenarios that must observe at least one standby promotion.
PROMOTING_SCENARIOS = frozenset(
    {"bootstrap-crash", "bootstrap-partition", "drops-and-crash"}
)


class SoakFailure(ReproError):
    """One seed/scenario diverged from the baseline or broke an invariant."""


def _sort_key(row: tuple) -> tuple:
    """Total order over heterogeneous rows (None-safe)."""
    return tuple(
        (value is None, str(type(value)), value if value is not None else 0)
        for value in row
    )


def build_network() -> BestPeerNetwork:
    """A fresh three-corporation TPC-H deployment, identically seeded."""
    net = BestPeerNetwork(TPCH_SCHEMAS, SECONDARY_INDICES)
    generator = TpchGenerator(seed=DATA_SEED, scale=SCALE)
    for index in range(PEER_COUNT):
        peer_id = f"corp-{index}"
        net.add_peer(peer_id)
        net.load_peer(peer_id, generator.generate_peer(index))
    return net


def scenario_plans(seed: int) -> Dict[str, FaultPlan]:
    """The seed's three fault plans, derived arithmetically from it.

    Crash ordinals are drawn from [1, 4]: the opening query batch always
    completes exactly four priced transfers (each logical message
    completes once even under drops — retries re-send the *same*
    message), so any ordinal in that range kills the primary before the
    mid-workload join.  A later ordinal would crash it after the last
    leader contact and the promotion assertion would (correctly, loudly)
    flag the scenario as toothless.
    """
    crash_ordinal = 1 + (seed % 4)
    window_start = 1 + (seed % 4)
    return {
        "bootstrap-crash": FaultPlan(
            seed=seed, crash_after={crash_ordinal: "bootstrap"}
        ),
        "bootstrap-partition": FaultPlan(
            seed=seed,
            partitions=[
                Partition(
                    group=("bootstrap",),
                    start=window_start,
                    end=window_start + 100_000,
                )
            ],
        ),
        "drops-and-crash": FaultPlan(
            seed=seed,
            drop_probability=0.05,
            crash_after={1 + ((seed + 2) % 4): "bootstrap"},
        ),
    }


def plan_to_dict(plan: FaultPlan) -> Dict[str, object]:
    """JSON-serializable replay recipe for the artifact."""
    return {
        "seed": plan.seed,
        "drop_probability": plan.drop_probability,
        "timeout_s": plan.timeout_s,
        "crash_after": {
            str(ordinal): host
            for ordinal, host in sorted(plan.crash_after.items())
        },
        "partitions": [
            {
                "group": sorted(partition.group),
                "start": partition.start,
                "end": partition.end,
            }
            for partition in plan.partitions
        ],
        "outages": [
            {"host": outage.host, "start": outage.start, "end": outage.end}
            for outage in plan.outages
        ],
    }


def run_pass(plan: Optional[FaultPlan]) -> Dict[str, object]:
    """One full workload pass on a fresh deployment; returns its outcome.

    The mid-workload join and maintenance epoch are what drive the
    bootstrap: with the primary crashed or partitioned away they force
    leader discovery, promotion, and commit retry on the new leader.
    """
    net = build_network()
    if plan is not None:
        net.install_fault_plan(plan)
    answers: List[Tuple] = []
    for sql in QUERIES:
        execution = net.execute(sql)
        answers.append(
            (sql, tuple(sorted(execution.records, key=_sort_key)))
        )
    net.add_peer(LATE_PEER)
    net.load_peer(
        LATE_PEER,
        TpchGenerator(seed=DATA_SEED, scale=SCALE).generate_peer(PEER_COUNT),
    )
    net.run_maintenance()
    for sql in QUERIES:
        execution = net.execute(sql)
        answers.append(
            (sql, tuple(sorted(execution.records, key=_sort_key)))
        )
    net.install_fault_plan(None)
    verify_bootstrap_invariants(net)
    cluster = net.bootstrap_cluster
    return {
        "answers": tuple(answers),
        "promotions": cluster.promotions,
        "leader": cluster.leader_id,
        "epoch": cluster.epoch,
        "log": cluster.leader.log.fingerprint(),
        "transitions": tuple(cluster.service.transitions),
    }


def check_scenario(
    name: str,
    plan: FaultPlan,
    baseline_answers: Tuple,
) -> None:
    """Run one scenario twice; verify equivalence, promotion, determinism."""
    first = run_pass(plan)
    if first["answers"] != baseline_answers:
        raise SoakFailure(
            f"{name}: answers diverged from the fault-free baseline"
        )
    if name in PROMOTING_SCENARIOS and first["promotions"] < 1:
        raise SoakFailure(
            f"{name}: no standby promotion happened — the fault plan "
            f"never hit the bootstrap"
        )
    second = run_pass(plan)
    if first != second:
        diverged = sorted(
            key for key in first if first[key] != second[key]
        )
        raise SoakFailure(
            f"{name}: two runs of the same plan diverged in {diverged}"
        )


def soak(seeds: int, start_seed: int, out: str) -> int:
    """Sweep ``seeds`` consecutive seeds; 0 on success, 1 on divergence.

    On the first failure the seed, scenario and full fault plan are
    written to ``out`` as a JSON replay artifact.
    """
    baseline = run_pass(None)
    baseline_answers = baseline["answers"]
    if baseline["promotions"] != 0:
        raise SoakFailure("fault-free baseline saw a promotion")
    for seed in range(start_seed, start_seed + seeds):
        plans = scenario_plans(seed)
        for name in sorted(plans):
            try:
                check_scenario(name, plans[name], baseline_answers)
            except ReproError as exc:
                artifact = {
                    "seed": seed,
                    "scenario": name,
                    "plan": plan_to_dict(plans[name]),
                    "error": str(exc),
                }
                with open(out, "w") as handle:
                    json.dump(artifact, handle, indent=2, sort_keys=True)
                print(
                    f"FAIL seed={seed} scenario={name}: {exc}\n"
                    f"replay artifact written to {out}"
                )
                return 1
        print(f"seed {seed}: {len(plans)} scenarios ok")
    print(f"chaos soak passed: {seeds} seeds x {len(PROMOTING_SCENARIOS)} "
          f"scenarios, answers identical, invariants held")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro.bench.chaos_soak``)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", type=int, default=24,
        help="how many consecutive seeds to sweep (default 24)",
    )
    parser.add_argument(
        "--start-seed", type=int, default=0,
        help="first seed of the sweep (default 0)",
    )
    parser.add_argument(
        "--out", default="chaos-soak-failure.json",
        help="path for the failing-seed artifact (default "
             "chaos-soak-failure.json)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")
    return soak(args.seeds, args.start_seed, args.out)


if __name__ == "__main__":
    sys.exit(main())
