"""Benchmark harness for the paper's evaluation (§6).

:mod:`~repro.bench.harness` builds calibrated BestPeer++ networks and
HadoopDB clusters for the performance benchmark (Figs. 6-11);
:mod:`~repro.bench.workloads` builds the supply-chain network and the
closed/open-loop drivers of the throughput benchmark (Figs. 12-14);
:mod:`~repro.bench.reporting` renders result tables.
"""

from repro.bench.harness import (
    ROW_SCALE,
    PerfPoint,
    bench_compute_model,
    bench_cost_params,
    bench_mr_config,
    bench_network_config,
    get_bestpeer_network,
    get_hadoopdb_cluster,
    run_adaptive_comparison,
    run_performance_comparison,
)
from repro.bench.workloads import (
    SupplyChainBench,
    closed_loop_throughput,
    open_loop_sweep,
)
from repro.bench.reporting import format_table, print_series

__all__ = [
    "ROW_SCALE",
    "PerfPoint",
    "bench_compute_model",
    "bench_network_config",
    "bench_mr_config",
    "bench_cost_params",
    "get_bestpeer_network",
    "get_hadoopdb_cluster",
    "run_performance_comparison",
    "run_adaptive_comparison",
    "SupplyChainBench",
    "closed_loop_throughput",
    "open_loop_sweep",
    "format_table",
    "print_series",
]
