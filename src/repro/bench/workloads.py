"""Throughput-benchmark workloads (Figs. 12-14, §6.2).

Builds the supply-chain network — suppliers and retailers in equal numbers,
each hosting one nation's data under the nation-key-extended schema, with
range indexes on the nation key — and drives it two ways:

* **closed loop** (Fig. 12): one test user per requesting peer issues
  queries back-to-back; throughput scales with the number of peers because
  every query hits exactly one target peer (the single-peer optimization),
* **open loop** (Figs. 13-14): queries arrive at a configurable offered
  rate; each target peer serves them FIFO.  Below saturation the latency is
  flat; past it the queue grows and latency hockey-sticks, which is exactly
  the average-latency-vs-throughput curve the paper plots.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import (
    SEED,
    bench_compute_model,
    bench_mr_config,
    bench_network_config,
)
from repro.core import BestPeerNetwork
from repro.tpch import (
    COMMON_TABLES,
    RETAILER_TABLES,
    SUPPLIER_TABLES,
    SupplyChainPartitioner,
    TpchGenerator,
    retailer_throughput_query,
    supplier_throughput_query,
)
from repro.tpch.dbgen import NUM_NATIONS
from repro.tpch.schema import NATION_KEY_COLUMNS, TABLE_NAMES, schema_for


@dataclass
class RoleSample:
    """Measured single-query service times for one role's target peers."""

    role: str  # which *data* is queried: "supplier" or "retailer"
    service_times: List[float]

    @property
    def mean_service_time(self) -> float:
        return sum(self.service_times) / len(self.service_times)

    @property
    def capacity_qps(self) -> float:
        """Aggregate saturation throughput of all target peers."""
        return sum(1.0 / s for s in self.service_times)


class SupplyChainBench:
    """The §6.2 supply-chain network plus its measurement machinery."""

    def __init__(self, num_peers: int, seed: int = SEED) -> None:
        if num_peers < 2 or num_peers % 2:
            raise ValueError(
                f"the supply chain needs an even number of peers: {num_peers}"
            )
        self.num_peers = num_peers
        generator = TpchGenerator(seed=seed, scale=1.0)
        self.partitioner = SupplyChainPartitioner(generator)
        schemas = {
            name: schema_for(name, with_nation_key=True) for name in TABLE_NAMES
        }
        self.network = BestPeerNetwork(
            schemas,
            secondary_indices=None,
            mr_config=bench_mr_config(),
            compute_model=bench_compute_model(),
            network_config=bench_network_config(),
        )
        peer_ids = [f"peer-{i}" for i in range(num_peers)]
        self.assignments = self.partitioner.assign(peer_ids)
        for index, assignment in enumerate(self.assignments):
            self.network.add_peer(
                assignment.peer_id, tables=assignment.tables
            )
            data = self.partitioner.generate_for(assignment, index)
            # "we also build a range index on the nation key column of each
            # table in order to avoid accessing suppliers or retailers which
            # do not host data of interest" (§6.2.2).
            range_columns = {
                table: [NATION_KEY_COLUMNS[table]]
                for table in assignment.tables
                if table not in COMMON_TABLES
            }
            self.network.load_peer(
                assignment.peer_id, data, range_columns=range_columns
            )
        role = self.network.create_full_access_role("throughput")
        self.network.create_user(
            "tester", self.assignments[0].peer_id, role
        )

    # ------------------------------------------------------------------
    # Single-query measurements
    # ------------------------------------------------------------------
    def sample_role(self, data_role: str) -> RoleSample:
        """Measure one query against every peer of ``data_role``.

        ``data_role="supplier"`` measures the light-weight supplier queries
        (issued by retailer users); ``"retailer"`` the heavy-weight ones.
        """
        targets = [
            assignment
            for assignment in self.assignments
            if assignment.role == data_role
        ]
        requesters = [
            assignment
            for assignment in self.assignments
            if assignment.role != data_role
        ]
        service_times: List[float] = []
        for index, target in enumerate(targets):
            requester = requesters[index % len(requesters)]
            if data_role == "supplier":
                sql = supplier_throughput_query(target.nation_key)
            else:
                sql = retailer_throughput_query(target.nation_key)
            execution = self.network.execute(
                sql, peer_id=requester.peer_id, engine="basic", user="tester"
            )
            if execution.strategy != "single-peer":
                raise AssertionError(
                    "throughput queries must hit a single peer, got "
                    f"{execution.strategy} ({execution.peers_contacted} peers)"
                )
            service_times.append(execution.latency_s)
        return RoleSample(role=data_role, service_times=service_times)


# ----------------------------------------------------------------------
# Load models
# ----------------------------------------------------------------------
def closed_loop_throughput(sample: RoleSample, clients: int) -> float:
    """Aggregate q/s of ``clients`` issuing queries back-to-back.

    Each client completes ``1 / mean_service_time`` queries per second, and
    targets are disjoint single peers, so throughput adds up until the
    targets saturate.
    """
    per_client = 1.0 / sample.mean_service_time
    return min(clients * per_client, sample.capacity_qps)


@dataclass
class LoadPoint:
    """One point on the latency-vs-throughput curve."""

    offered_qps: float
    achieved_qps: float
    avg_latency_s: float


def open_loop_sweep(
    sample: RoleSample,
    offered_rates: Sequence[float],
    round_duration_s: float = 1200.0,
) -> List[LoadPoint]:
    """Sweep offered load and model each target as a D/D/1 queue.

    Below saturation (utilization < 1) latency is service time plus the
    deterministic-queue waiting term; past saturation the backlog grows for
    the whole 20-minute round (§6.2.1's round length) and the achieved
    throughput caps at capacity.
    """
    points: List[LoadPoint] = []
    targets = len(sample.service_times)
    for offered in offered_rates:
        per_peer_rate = offered / targets
        total_completed = 0.0
        weighted_latency = 0.0
        for service in sample.service_times:
            utilization = per_peer_rate * service
            if utilization < 1.0:
                completed = per_peer_rate * round_duration_s
                # D/D/1 with deterministic arrivals has no queueing below
                # saturation; add a contention term that grows smoothly as
                # utilization approaches 1 (bursty arrivals in practice).
                latency = service * (1.0 + 0.5 * utilization / (1.0 - utilization))
            else:
                completed = round_duration_s / service
                backlog_wait = (utilization - 1.0) * round_duration_s / 2.0
                latency = service + backlog_wait
            total_completed += completed
            weighted_latency += completed * latency
        points.append(
            LoadPoint(
                offered_qps=offered,
                achieved_qps=total_completed / round_duration_s,
                avg_latency_s=weighted_latency / total_completed,
            )
        )
    return points


@lru_cache(maxsize=None)
def get_supply_chain(num_peers: int) -> SupplyChainBench:
    return SupplyChainBench(num_peers)


# ----------------------------------------------------------------------
# Skewed access streams (Zipf keys and tenants)
# ----------------------------------------------------------------------
class ZipfGenerator:
    """Seeded Zipf(``theta``) sampler over ranks ``0..n-1`` (0 hottest).

    Rank ``i`` (1-based) carries weight ``1 / i**theta``; at the classic
    ``theta = 0.99`` roughly a third of all samples land on the hottest
    few percent of ranks, which is the shape real key popularity takes.
    Two generators built from the same ``(n, theta, seed)`` produce the
    same sample stream — the determinism every bench artifact rests on.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = SEED) -> None:
        if n < 1:
            raise ValueError(f"a Zipf generator needs n >= 1 ranks: {n}")
        if theta <= 0.0:
            raise ValueError(f"theta must be positive: {theta}")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self._cumulative: List[float] = []
        total = 0.0
        for rank in range(1, n + 1):
            total += 1.0 / rank ** theta
            self._cumulative.append(total)

    def sample(self) -> int:
        """One rank, 0-based; 0 is the hottest."""
        point = self._rng.random() * self._cumulative[-1]
        return bisect.bisect_left(self._cumulative, point)

    def sample_many(self, count: int) -> List[int]:
        if count < 0:
            raise ValueError(f"count must be non-negative: {count}")
        return [self.sample() for _ in range(count)]


@dataclass(frozen=True)
class SkewedAccess:
    """One access in a skewed stream: which key, on whose behalf."""

    key: float
    tenant: str


class ZipfWorkload:
    """A seeded stream of Zipf-skewed ``(key, tenant)`` accesses.

    Key *ranks* are Zipf-distributed but the rank-to-key mapping is a
    seeded shuffle, so the hot keys scatter across the key domain instead
    of always clustering at its low end — a skewed workload should melt
    whichever node happens to own the hot keys, not structurally the
    leftmost one.  Tenants draw from an independent Zipf stream (offset
    seed), modelling one noisy tenant dominating traffic.
    """

    def __init__(
        self,
        keys: Sequence[float],
        tenants: Sequence[str],
        theta: float = 0.99,
        seed: int = SEED,
    ) -> None:
        if not keys:
            raise ValueError("a skewed workload needs at least one key")
        if not tenants:
            raise ValueError("a skewed workload needs at least one tenant")
        self._keys = list(keys)
        random.Random(seed).shuffle(self._keys)
        self._tenants = list(tenants)
        self._key_ranks = ZipfGenerator(len(self._keys), theta, seed + 1)
        self._tenant_ranks = ZipfGenerator(
            len(self._tenants), theta, seed + 2
        )

    @property
    def hottest_key(self) -> float:
        """The key rank 0 maps to — where the flash crowd will land."""
        return self._keys[0]

    def hot_keys(self, count: int) -> List[float]:
        """The ``count`` hottest keys, hottest first."""
        if count < 0:
            raise ValueError(f"count must be non-negative: {count}")
        return self._keys[:count]

    def next_access(self) -> SkewedAccess:
        return SkewedAccess(
            key=self._keys[self._key_ranks.sample()],
            tenant=self._tenants[self._tenant_ranks.sample()],
        )

    def take(self, count: int) -> List[SkewedAccess]:
        if count < 0:
            raise ValueError(f"count must be non-negative: {count}")
        return [self.next_access() for _ in range(count)]
