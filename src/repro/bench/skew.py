"""Skew and flash-crowd sweep over the BATON overlay.

Runs three chaos scenarios against a replicated overlay — a Zipf-skewed
steady workload, a flash crowd concentrated on one supplier's sub-domain,
and the same flash crowd with churn (joins, a leave, a crash) in the
middle of the hot spell — once without mitigation and once per balancing
policy (random / least-loaded / power-of-k replica read fan-out plus
measured-load hot-range migration).

Every variant of every scenario runs the *same* seeded operation script
through :class:`repro.sim.chaos.OverlayChaosHarness`, so the only thing
that differs is the mitigation; and every run is census-gated — the
overlay must hold exactly the entries the script inserted after every
operation, so a migration that loses or duplicates an index entry fails
the sweep outright.

The acceptance gates:

* least-loaded or power-of-k cuts the final max/mean load ratio at least
  2x vs. no balancing in the flash-crowd scenarios (and strictly improves
  it under plain Zipf skew),
* the hot-range p99 latency proxy (routing hops + serving-node backlog)
  improves under mitigation,
* no mitigated variant ends more skewed than the unmitigated control,
* zero census violations anywhere, churn included.

Usage::

    python -m repro.bench.skew --out BENCH_skew.json
    python -m repro.bench.skew --searches 600 --seed 7
"""

from __future__ import annotations

import argparse
import json
import math
import random
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baton import (
    BatonOverlay,
    LoadBalancer,
    LoadBalancerConfig,
    ReplicatedOverlay,
    make_policy,
)
from repro.bench.harness import SEED
from repro.bench.workloads import ZipfWorkload
from repro.errors import MigrationCensusError
from repro.sim.chaos import OverlayChaosHarness

NUM_NODES = 8
NUM_KEYS = 192
#: Zipf exponent: a hot head without being a single-key workload.
THETA = 1.2
#: A node is hot past 1.5x the overlay's mean load score.
HOT_MULTIPLE = 1.5
#: The unmitigated control still decays its load windows on the same
#: cadence (a real server drains its queue over time) but its hot
#: threshold is unreachable, so it never migrates.
NO_BALANCE_MULTIPLE = 1.0e9
#: One decay/rebalance round every this many operations.
REBALANCE_EVERY = 150
#: How many of the hottest keys count as "the hot range" for p99.
HOT_KEY_COUNT = 12

SCENARIOS = ("zipf", "flash-crowd", "churn-hot-spell")
VARIANTS = ("none", "random", "least-loaded", "power-of-k")
#: The policies the ratio-cut gate accepts (random fan-out spreads reads
#: but ignores load, so it is reported, not gated).
GATED_POLICIES = ("least-loaded", "power-of-k")


def node_ids() -> List[str]:
    """The overlay's member ids (also the workload's tenant names)."""
    return [f"n{index}" for index in range(NUM_NODES)]


def overlay_factory(policy_name: str, seed: int):
    """A fresh replicated overlay with the variant's read policy."""

    def build() -> ReplicatedOverlay:
        policy = (
            None
            if policy_name == "none"
            else make_policy(policy_name, seed=seed)
        )
        overlay = ReplicatedOverlay(BatonOverlay(), read_policy=policy)
        for node_id in node_ids():
            overlay.join(node_id)
        return overlay

    return build


def balancer_factory(mitigate: bool):
    """A balancer that migrates, or a decay-only control."""

    def build(overlay) -> LoadBalancer:
        multiple = HOT_MULTIPLE if mitigate else NO_BALANCE_MULTIPLE
        return LoadBalancer(
            overlay, LoadBalancerConfig(hot_multiple=multiple)
        )

    return build


# ----------------------------------------------------------------------
# Scenario scripts
# ----------------------------------------------------------------------
def _search_step(
    key: float, tenant: str, members: List[str]
) -> Tuple[str, float, str]:
    """A search issued by ``tenant``'s peer, or a surviving peer."""
    start = tenant if tenant in members else members[0]
    return ("search", key, start)


def build_script(
    scenario: str, searches: int, seed: int
) -> Tuple[List[tuple], List[int]]:
    """The operation script plus the indices of its hot-range searches.

    The script is a pure function of ``(scenario, searches, seed)`` —
    every mitigation variant replays exactly the same operations.
    """
    if scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r} (valid: {', '.join(SCENARIOS)})"
        )
    keys = [(index + 0.5) / NUM_KEYS for index in range(NUM_KEYS)]
    workload = ZipfWorkload(keys, node_ids(), theta=THETA, seed=seed)
    if scenario == "zipf":
        hot_keys = set(workload.hot_keys(HOT_KEY_COUNT))
    else:
        # The flash crowd slams one supplier's entire sub-domain: the
        # contiguous keys owned by the hottest key's responsible node.
        # Join order is deterministic, so a probe overlay finds the same
        # ranges every variant will see.
        probe = overlay_factory("none", seed)()
        owner, _ = probe.overlay.find_responsible(workload.hottest_key)
        hot_keys = {
            key for key in keys if owner.r0.low <= key < owner.r0.high
        }
    rng = random.Random(seed)
    members = list(node_ids())

    script: List[tuple] = [
        ("insert", key, f"item-{index}") for index, key in enumerate(keys)
    ]
    hot_indices: List[int] = []
    search_count = 0

    def add_search(key: float, tenant: str, hot: bool) -> None:
        nonlocal search_count
        script.append(_search_step(key, tenant, members))
        if hot:
            hot_indices.append(search_count)
        search_count += 1

    def maybe_rebalance() -> None:
        if (len(script) + 1) % REBALANCE_EVERY == 0:
            script.append(("rebalance",))

    if scenario == "zipf":
        for _ in range(searches):
            access = workload.next_access()
            add_search(access.key, access.tenant, access.key in hot_keys)
            maybe_rebalance()
        script.append(("rebalance",))
        return script, hot_indices

    # Flash crowd: a uniform warm-up, then most traffic slams the hottest
    # keys — one supplier's sub-domain — while a Zipf trickle continues.
    warmup = searches // 4
    hot_list = sorted(hot_keys)
    churn_points: Dict[int, List[tuple]] = {}
    if scenario == "churn-hot-spell":
        spell = searches - warmup
        survivors = [
            node_id for node_id in node_ids()
            if node_id not in ("n0", "n1")
        ]
        crash_target = survivors[0]
        churn_points = {
            warmup + spell // 5: [("join", f"n{NUM_NODES}")],
            warmup + 2 * spell // 5: [("crash", crash_target)],
            warmup + 3 * spell // 5: [("restore", crash_target)],
            warmup + 4 * spell // 5: [
                ("leave", survivors[1]),
                ("join", f"n{NUM_NODES + 1}"),
            ],
        }
    for position in range(searches):
        for step in churn_points.get(position, ()):
            script.append(step)
            if step[0] == "join":
                members.append(step[1])
            elif step[0] == "leave":
                members.remove(step[1])
            elif step[0] == "crash":
                members.remove(step[1])
            elif step[0] == "restore":
                members.append(step[1])
        access = workload.next_access()
        if position < warmup or rng.random() >= 0.8:
            add_search(access.key, access.tenant, access.key in hot_keys)
        else:
            key = hot_list[rng.randrange(len(hot_list))]
            add_search(key, access.tenant, True)
        maybe_rebalance()
    script.append(("rebalance",))
    return script, hot_indices


# ----------------------------------------------------------------------
# Running and gating
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], fraction: float) -> float:
    """Exact percentile (0 for an empty sample)."""
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1]: {fraction}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, math.ceil(fraction * len(ordered)) - 1)
    return ordered[rank]


@dataclass
class ScenarioResult:
    """One (scenario, policy) run's measurements."""

    scenario: str
    policy: str
    searches: int
    ratio_final: float
    ratio_peak: float
    migrations: int
    entries_moved: int
    census_checks: int
    fanout_reads: int
    failover_reads: int
    hot_p50: float
    hot_p99: float
    overall_p99: float
    census_violation: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "searches": self.searches,
            "ratio_final": self.ratio_final,
            "ratio_peak": self.ratio_peak,
            "migrations": self.migrations,
            "entries_moved": self.entries_moved,
            "census_checks": self.census_checks,
            "fanout_reads": self.fanout_reads,
            "failover_reads": self.failover_reads,
            "hot_p50": self.hot_p50,
            "hot_p99": self.hot_p99,
            "overall_p99": self.overall_p99,
            "census_violation": self.census_violation,
        }


def run_variant(
    scenario: str, policy: str, searches: int, seed: int
) -> ScenarioResult:
    """One scenario under one mitigation variant, census-gated."""
    script, hot_indices = build_script(scenario, searches, seed)
    harness = OverlayChaosHarness(
        overlay_factory(policy, seed),
        balancer_factory(mitigate=policy != "none"),
        check_every=10,
    )
    try:
        report = harness.run(script)
    except MigrationCensusError as error:
        return ScenarioResult(
            scenario=scenario,
            policy=policy,
            searches=0,
            ratio_final=0.0,
            ratio_peak=0.0,
            migrations=0,
            entries_moved=0,
            census_checks=0,
            fanout_reads=0,
            failover_reads=0,
            hot_p50=0.0,
            hot_p99=0.0,
            overall_p99=0.0,
            census_violation=str(error),
        )
    latencies = report.search_latencies()
    hot = [latencies[index] for index in hot_indices]
    return ScenarioResult(
        scenario=scenario,
        policy=policy,
        searches=report.searches,
        ratio_final=report.final_ratio,
        ratio_peak=report.peak_ratio,
        migrations=report.migrations,
        entries_moved=report.entries_moved,
        census_checks=report.census_checks,
        fanout_reads=report.fanout_reads,
        failover_reads=report.failover_reads,
        hot_p50=percentile(hot, 0.50),
        hot_p99=percentile(hot, 0.99),
        overall_p99=percentile(latencies, 0.99),
    )


def run_sweep(
    searches: int = 1200, seed: int = SEED
) -> Dict[str, Dict[str, ScenarioResult]]:
    """Every scenario under every variant: {scenario: {policy: result}}."""
    return {
        scenario: {
            policy: run_variant(scenario, policy, searches, seed)
            for policy in VARIANTS
        }
        for scenario in SCENARIOS
    }


def check_gates(
    results: Dict[str, Dict[str, ScenarioResult]]
) -> List[str]:
    """The skew acceptance gates; returns human-readable violations."""
    violations: List[str] = []
    for scenario, variants in sorted(results.items()):
        for policy, result in sorted(variants.items()):
            if result.census_violation is not None:
                violations.append(
                    f"{scenario}/{policy}: census violated — "
                    f"{result.census_violation}"
                )
        if any(
            result.census_violation is not None
            for result in variants.values()
        ):
            continue
        control = variants["none"]
        # Balanced must never end more skewed than unbalanced.
        for policy in GATED_POLICIES:
            if variants[policy].ratio_final > control.ratio_final:
                violations.append(
                    f"{scenario}/{policy}: balanced ratio "
                    f"{variants[policy].ratio_final:.2f} exceeds "
                    f"unbalanced {control.ratio_final:.2f}"
                )
        # One gated policy must deliver the headline result: under the
        # flash-crowd scenarios, a >=2x cut in max/mean load ratio AND a
        # better hot-range p99 than no mitigation; under plain Zipf skew
        # (hot keys scattered across the domain), a strict ratio
        # improvement.
        required_cut = 2.0 if scenario != "zipf" else 1.0
        passed = [
            variants[policy]
            for policy in GATED_POLICIES
            if variants[policy].ratio_final * required_cut
            <= control.ratio_final
            and (
                scenario == "zipf"
                or variants[policy].hot_p99 < control.hot_p99
            )
            and (
                scenario != "zipf"
                or variants[policy].ratio_final < control.ratio_final
            )
        ]
        if not passed:
            violations.append(
                f"{scenario}: no gated policy cut the unbalanced "
                f"max/mean {control.ratio_final:.2f} by "
                f"{required_cut:g}x while improving the hot-range p99 "
                f"{control.hot_p99:.1f}"
            )
        elif all(result.migrations == 0 for result in passed):
            violations.append(
                f"{scenario}: mitigation never migrated — the scenario "
                f"did not exercise hot-range migration"
            )
    return violations


def render(results: Dict[str, Dict[str, ScenarioResult]]) -> str:
    """A terminal summary, one block per scenario."""
    lines: List[str] = []
    for scenario in SCENARIOS:
        lines.append(f"{scenario}:")
        for policy in VARIANTS:
            result = results[scenario][policy]
            if result.census_violation is not None:
                lines.append(
                    f"  {policy}: CENSUS VIOLATION — "
                    f"{result.census_violation}"
                )
                continue
            lines.append(
                f"  {policy}: max/mean={result.ratio_final:.2f} "
                f"(peak {result.ratio_peak:.2f}) "
                f"hot p99={result.hot_p99:.1f} "
                f"migrations={result.migrations} "
                f"moved={result.entries_moved} "
                f"fanout={result.fanout_reads}"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns 1 when any skew gate is violated."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.skew",
        description="Zipf / flash-crowd / churn sweep with balancing gates",
    )
    parser.add_argument(
        "--searches", type=int, default=1200,
        help="searches per scenario (default: 1200)",
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--out", default=None, help="write the JSON report here"
    )
    args = parser.parse_args(argv)

    results = run_sweep(searches=args.searches, seed=args.seed)
    print(render(results))
    violations = check_gates(results)
    if args.out:
        payload = {
            "seed": args.seed,
            "searches": args.searches,
            "scenarios": {
                scenario: {
                    policy: result.as_dict()
                    for policy, result in sorted(variants.items())
                }
                for scenario, variants in sorted(results.items())
            },
            "violations": violations,
        }
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"report written to {args.out}")
    if violations:
        print("skew gate violations:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print("all skew gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
