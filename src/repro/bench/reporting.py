"""Plain-text rendering of benchmark results."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    formatted_rows = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in formatted_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def print_series(title: str, headers: Sequence[str], rows) -> None:
    """Print one figure's data series under a title banner."""
    banner = "=" * max(len(title), 8)
    print(f"\n{banner}\n{title}\n{banner}")
    print(format_table(headers, rows))


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:,.1f}"
        return f"{cell:.3f}"
    return str(cell)
