"""Regenerate every paper figure from the command line.

Usage::

    python -m repro.bench            # all figures (~1 minute)
    python -m repro.bench fig10 fig11
    python -m repro.bench --list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.harness import (
    CLUSTER_SIZES,
    latency_of,
    run_adaptive_comparison,
    run_performance_comparison,
)
from repro.bench.reporting import print_series
from repro.bench.workloads import (
    closed_loop_throughput,
    get_supply_chain,
    open_loop_sweep,
)
from repro.tpch import Q1, Q2, Q3, Q4, Q5


def _performance_figure(name, title, sql):
    def run():
        points = run_performance_comparison(name, sql)
        print_series(
            title,
            ["nodes", "BestPeer++ (s)", "HadoopDB (s)"],
            [
                [
                    nodes,
                    latency_of(points, "BestPeer++", nodes),
                    latency_of(points, "HadoopDB", nodes),
                ]
                for nodes in CLUSTER_SIZES
            ],
        )

    return run


def _fig11():
    points = run_adaptive_comparison(Q5())
    print_series(
        "Fig. 11 — adaptive query processing (Q5)",
        ["nodes", "P2P (s)", "MapReduce (s)", "Adaptive (s)"],
        [
            [
                nodes,
                latency_of(points, "P2P engine", nodes),
                latency_of(points, "MapReduce engine", nodes),
                latency_of(points, "Adaptive engine", nodes),
            ]
            for nodes in CLUSTER_SIZES
        ],
    )


def _fig12():
    rows = []
    for num_peers in (10, 20, 50):
        bench = get_supply_chain(num_peers)
        clients = num_peers // 2
        rows.append(
            [
                num_peers,
                closed_loop_throughput(bench.sample_role("supplier"), clients),
                closed_loop_throughput(bench.sample_role("retailer"), clients),
            ]
        )
    print_series(
        "Fig. 12 — throughput scalability (closed loop)",
        ["peers", "supplier q/s", "retailer q/s"],
        rows,
    )


def _latency_sweep(role, title):
    def run():
        bench = get_supply_chain(50)
        sample = bench.sample_role(role)
        offered = [
            sample.capacity_qps * fraction
            for fraction in (0.2, 0.4, 0.6, 0.8, 0.95, 1.1, 1.3)
        ]
        points = open_loop_sweep(sample, offered)
        print_series(
            title,
            ["offered q/s", "achieved q/s", "avg latency (s)"],
            [[p.offered_qps, p.achieved_qps, p.avg_latency_s] for p in points],
        )

    return run


FIGURES = {
    "fig06": _performance_figure("Q1", "Fig. 6 — Q1: selection on LineItem", Q1()),
    "fig07": _performance_figure(
        "Q2", "Fig. 7 — Q2: aggregation on LineItem", Q2(ship_date="1995-06-01")
    ),
    "fig08": _performance_figure("Q3", "Fig. 8 — Q3: LineItem join Orders", Q3()),
    "fig09": _performance_figure(
        "Q4", "Fig. 9 — Q4: PartSupp join Part + aggregation", Q4()
    ),
    "fig10": _performance_figure("Q5", "Fig. 10 — Q5: multi-table join", Q5()),
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _latency_sweep(
        "supplier", "Fig. 13 — supplier latency vs throughput (50 peers)"
    ),
    "fig14": _latency_sweep(
        "retailer", "Fig. 14 — retailer latency vs throughput (50 peers)"
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the BestPeer++ paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        help=f"figures to run (default: all of {', '.join(FIGURES)})",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available figures and exit"
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in FIGURES:
            print(name)
        return 0
    wanted = args.figures or list(FIGURES)
    unknown = [name for name in wanted if name not in FIGURES]
    if unknown:
        parser.error(f"unknown figures: {', '.join(unknown)}")
    # This is the one place wall time is correct: it reports how long the
    # *driver process* took to regenerate figures, not a simulated quantity
    # — every latency the figures print comes from the sim clock.
    started = time.time()  # repro: allow[SIM002] driver wall-time, not simulated time
    for name in wanted:
        FIGURES[name]()
    print(f"\ndone in {time.time() - started:.1f}s wall-clock")  # repro: allow[SIM002] driver wall-time, not simulated time
    return 0


if __name__ == "__main__":
    sys.exit(main())
