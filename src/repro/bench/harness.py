"""Performance-benchmark harness (Figs. 6-11).

The paper runs 1 GB of TPC-H data per m1.small node; the reproduction runs
a few thousand rows per simulated peer.  To keep the *shape* of the results
(who wins, by what factor, where Q5's crossover falls) the harness scales
all per-row and per-byte costs by :data:`ROW_SCALE` — every simulated row
stands in for ``ROW_SCALE``-fold more work on the paper's testbed — while
absolute constants (the ~12 s MapReduce job startup, the ~1 s pull-based
shuffle delay) stay absolute, exactly as they are in reality.

Networks and clusters are memoized per (system, size) so the per-figure
benchmarks share setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.core import BestPeerNetwork
from repro.core.costmodel import CostParams
from repro.hadoopdb import HadoopDbCluster
from repro.mapreduce.engine import MapReduceConfig
from repro.sim.compute import ComputeModel
from repro.sim.network import NetworkConfig
from repro.tpch import SECONDARY_INDICES, TPCH_SCHEMAS, TpchGenerator

# Cost amplification: one simulated row ~ ROW_SCALE rows of the paper's
# 1 GB-per-node dataset (relative to our default generator scale).
ROW_SCALE = 30.0
# Rows per peer relative to the generator's base mix (~2400 lineitems/peer).
DATA_SCALE = 2.0
SEED = 42
CLUSTER_SIZES = (10, 20, 50)


def bench_compute_model() -> ComputeModel:
    """Per-row costs amplified by ROW_SCALE."""
    return ComputeModel(
        scan_s_per_row=1e-5 * ROW_SCALE,
        emit_s_per_row=2e-5 * ROW_SCALE,
        join_s_per_row=5e-6 * ROW_SCALE,
        index_probe_s=5e-6 * ROW_SCALE,
    )


def bench_network_config() -> NetworkConfig:
    """Effective bandwidth shrunk by ROW_SCALE (bytes are scaled rows)."""
    return NetworkConfig(
        bandwidth_bytes_per_s=100e6 / ROW_SCALE,
        loopback_bandwidth_bytes_per_s=2e9 / ROW_SCALE,
    )


def bench_mr_config() -> MapReduceConfig:
    """Hadoop constants: absolute startup/shuffle delays, scaled CPU."""
    return MapReduceConfig(
        job_startup_s=12.0,
        shuffle_notification_delay_s=1.0,
        map_cpu_per_record_s=4e-6 * ROW_SCALE,
        reduce_cpu_per_record_s=4e-6 * ROW_SCALE,
    )


def bench_cost_params() -> CostParams:
    """Adaptive-planner parameters calibrated by the statistics module.

    ``phi / mu`` is pinned to the measured ~12 s job startup; ``mu`` is set
    from measured node throughput at bench scale (the feedback loop of §5.5
    refines these online).
    """
    mu = 9.2e6
    return CostParams(phi=12.0 * mu, mu=mu)


@dataclass
class PerfPoint:
    """One (system, query, cluster size) measurement."""

    system: str
    query: str
    nodes: int
    latency_s: float
    details: Dict[str, float] = field(default_factory=dict)


# ----------------------------------------------------------------------
# System builders (memoized)
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def get_bestpeer_network(num_peers: int) -> BestPeerNetwork:
    """The §6.1 BestPeer++ setup: every peer loads all eight tables."""
    network = BestPeerNetwork(
        TPCH_SCHEMAS,
        SECONDARY_INDICES,
        mr_config=bench_mr_config(),
        cost_params=bench_cost_params(),
        compute_model=bench_compute_model(),
        network_config=bench_network_config(),
    )
    generator = TpchGenerator(seed=SEED, scale=DATA_SCALE)
    for index in range(num_peers):
        peer_id = f"corp-{index}"
        network.add_peer(peer_id)
        network.load_peer(peer_id, generator.generate_peer(index))
    role = network.create_full_access_role()
    network.create_user("bench", "corp-0", role)
    # Histograms the adaptive planner uses for selectivity (§5.1/§5.5).
    network.build_histogram("lineitem", ["l_shipdate"])
    network.build_histogram("orders", ["o_orderdate"])
    network.build_histogram("part", ["p_size"])
    return network


@lru_cache(maxsize=None)
def get_hadoopdb_cluster(num_workers: int) -> HadoopDbCluster:
    """The §6.1.3 HadoopDB setup (no co-partitioning)."""
    from repro.sim.network import SimNetwork

    cluster = HadoopDbCluster(
        num_workers,
        network=SimNetwork(bench_network_config()),
        mr_config=bench_mr_config(),
        compute_model=bench_compute_model(),
    )
    cluster.create_tables(TPCH_SCHEMAS.values(), SECONDARY_INDICES)
    generator = TpchGenerator(seed=SEED, scale=DATA_SCALE)
    for index in range(num_workers):
        cluster.load_worker(index, generator.generate_peer(index))
    return cluster


# ----------------------------------------------------------------------
# Experiment drivers
# ----------------------------------------------------------------------
def run_performance_comparison(
    query_name: str,
    sql: str,
    cluster_sizes: Sequence[int] = CLUSTER_SIZES,
) -> List[PerfPoint]:
    """One Fig. 6-10 experiment: both systems across cluster sizes."""
    points: List[PerfPoint] = []
    for nodes in cluster_sizes:
        network = get_bestpeer_network(nodes)
        execution = network.execute(sql, engine="basic", user="bench")
        points.append(
            PerfPoint(
                system="BestPeer++",
                query=query_name,
                nodes=nodes,
                latency_s=execution.latency_s,
                details=dict(execution.engine_details),
            )
        )
        cluster = get_hadoopdb_cluster(nodes)
        result = cluster.execute(sql)
        points.append(
            PerfPoint(
                system="HadoopDB",
                query=query_name,
                nodes=nodes,
                latency_s=result.duration_s,
                details={"jobs": float(result.num_jobs)},
            )
        )
    return points


def run_adaptive_comparison(
    sql: str, cluster_sizes: Sequence[int] = CLUSTER_SIZES
) -> List[PerfPoint]:
    """The Fig. 11 experiment: P2P vs MapReduce vs adaptive engines."""
    points: List[PerfPoint] = []
    for nodes in cluster_sizes:
        network = get_bestpeer_network(nodes)
        for engine, label in [
            ("basic", "P2P engine"),
            ("mapreduce", "MapReduce engine"),
            ("adaptive", "Adaptive engine"),
        ]:
            execution = network.execute(sql, engine=engine, user="bench")
            details = dict(execution.engine_details)
            details["strategy"] = execution.strategy  # type: ignore[assignment]
            points.append(
                PerfPoint(
                    system=label,
                    query="Q5",
                    nodes=nodes,
                    latency_s=execution.latency_s,
                    details=details,
                )
            )
    return points


def latency_of(points: Sequence[PerfPoint], system: str, nodes: int) -> float:
    """Pull one measurement out of a result list."""
    for point in points:
        if point.system == system and point.nodes == nodes:
            return point.latency_s
    raise KeyError(f"no point for {system!r} at {nodes} nodes")
