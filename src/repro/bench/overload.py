"""Overload sweep: the serving front door under 1x..10x offered load.

Drives a small BestPeer++ network through :class:`ServingFrontDoor` with
seeded open-loop arrival streams per tenant and lane, then checks the
overload SLOs the serving layer exists to uphold:

* exact accounting — per (tenant, lane),
  ``offered == admitted + shed + deadline_missed`` and
  ``admitted == completed + failed``,
* graceful degradation — at 10x offered load the *interactive* lane's
  admitted p99 end-to-end latency stays within 2x of its 1x value
  (bounded queues and deadline-aware shedding trade completions for
  latency, never the reverse),
* priority — the bulk lane is shed before the interactive lane.

Shed clients retry with :class:`~repro.core.resilience.RetryPolicy`
honoring the server's retry-after hint, so the sweep also exercises the
client half of the backpressure loop.  Everything runs on the simulated
clock from one seed: two runs of the same sweep produce byte-identical
reports.

Usage::

    python -m repro.bench.overload --out overload.json
    python -m repro.bench.overload --multipliers 1,3,10 --duration 120
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import SEED, bench_compute_model, bench_network_config
from repro.core import (
    LANE_BULK,
    LANE_INTERACTIVE,
    BestPeerNetwork,
    RetryPolicy,
    ServingConfig,
)
from repro.serving import ServingFrontDoor, ServingRequest
from repro.sim import EventQueue
from repro.sqlengine import Column, ColumnType, TableSchema

#: Tenants and their fair-share weights.
TENANTS: Tuple[Tuple[str, float], ...] = (("acme", 2.0), ("globex", 1.0))
#: Target worker utilization at 1x offered load; 10x is then deep overload.
BASE_UTILIZATION = 0.5
#: Fraction of each tenant's load that is bulk/analytics.
BULK_FRACTION = 0.25
#: Client-side retry budget for shed requests.
CLIENT_RETRY = RetryPolicy(
    max_attempts=3, base_backoff_s=0.5, max_backoff_s=30.0
)

#: A narrow range scan (~`INTERACTIVE_SPAN` rows) vs a full-table
#: aggregate: the lanes differ in service time by a small integer factor,
#: like a dashboard lookup vs an analytics rollup.
INTERACTIVE_SQL = (
    "SELECT COUNT(*) FROM item WHERE id BETWEEN {key} AND {upper}"
)
BULK_SQL = "SELECT COUNT(*), SUM(price) FROM item"
INTERACTIVE_SPAN = 300

NUM_PEERS = 3
ROWS_PER_PEER = 400


def build_network() -> BestPeerNetwork:
    """A small supply network with one shared ``item`` table."""
    schemas = {
        "item": TableSchema(
            "item",
            [
                Column("id", ColumnType.INTEGER),
                Column("label", ColumnType.TEXT),
                Column("price", ColumnType.FLOAT),
            ],
            primary_key="id",
        )
    }
    net = BestPeerNetwork(
        schemas,
        compute_model=bench_compute_model(),
        network_config=bench_network_config(),
    )
    for index in range(NUM_PEERS):
        peer_id = f"corp-{index}"
        net.add_peer(peer_id)
        rows = [
            (
                index * ROWS_PER_PEER + offset,
                f"part-{index}-{offset}",
                float(offset % 97),
            )
            for offset in range(ROWS_PER_PEER)
        ]
        net.load_peer(peer_id, {"item": rows})
    return net


def interactive_sql(rng: random.Random) -> str:
    """One interactive-lane query over a random key range."""
    key = rng.randrange(NUM_PEERS * ROWS_PER_PEER - INTERACTIVE_SPAN)
    return INTERACTIVE_SQL.format(key=key, upper=key + INTERACTIVE_SPAN - 1)


def probe_service_times(net: BestPeerNetwork) -> Tuple[float, float]:
    """Measured simulated service time of one interactive / bulk query."""
    interactive = net.execute(
        INTERACTIVE_SQL.format(key=0, upper=INTERACTIVE_SPAN - 1)
    ).latency_s
    bulk = net.execute(BULK_SQL).latency_s
    net.metrics.reset()
    return interactive, bulk


def overload_config(
    interactive_service_s: float, bulk_service_s: float, workers: int = 4
) -> ServingConfig:
    """Serving tunables calibrated to the measured service times.

    The interactive deadline is what bounds the lane's latency under
    overload: queued requests that cannot start inside it are shed (or
    dropped at dispatch), so the admitted tail can never stretch past
    ``deadline + service`` no matter how much load is offered.  The bulk
    backpressure threshold sits far below the interactive shed point — one
    interactive service time of estimated delay — so as saturation grows
    the analytics lane stops admitting long before the interactive lane
    starts shedding.
    """
    return ServingConfig(
        workers=workers,
        queue_depth=8,
        interactive_deadline_s=1.5 * interactive_service_s,
        bulk_deadline_s=20.0 * bulk_service_s,
        bulk_backpressure_s=interactive_service_s,
        initial_service_estimate_s=interactive_service_s,
        retry_after_min_s=interactive_service_s,
    )


@dataclass
class ClientCounters:
    """Client-side view of one (tenant, lane) stream."""

    unique_requests: int = 0
    retries: int = 0
    gave_up: int = 0


@dataclass
class OverloadReport:
    """One sweep point: the front door's counters plus the client's."""

    multiplier: float
    duration_s: float
    drained_at_s: float
    interactive_rate_qps: float
    bulk_rate_qps: float
    lanes: Dict[str, dict] = field(default_factory=dict)
    clients: Dict[str, dict] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "multiplier": self.multiplier,
            "duration_s": self.duration_s,
            "drained_at_s": self.drained_at_s,
            "interactive_rate_qps": self.interactive_rate_qps,
            "bulk_rate_qps": self.bulk_rate_qps,
            "lanes": self.lanes,
            "clients": self.clients,
        }


@dataclass
class _Arrival:
    tenant: str
    lane: str
    sql: str
    attempt: int = 1


def run_overload(
    multiplier: float,
    duration_s: float = 60.0,
    seed: int = SEED,
    workers: int = 4,
) -> OverloadReport:
    """Run one sweep point at ``multiplier`` times the base offered load."""
    net = build_network()
    interactive_s, bulk_s = probe_service_times(net)
    config = overload_config(interactive_s, bulk_s, workers=workers)
    door = net.attach_serving(config)
    for tenant, weight in TENANTS:
        door.register_tenant(tenant, weight)

    # Base rates put the pool at BASE_UTILIZATION when multiplier == 1:
    # sum over streams of rate * service == BASE_UTILIZATION * workers.
    budget = BASE_UTILIZATION * workers / len(TENANTS)
    interactive_rate = (1.0 - BULK_FRACTION) * budget / interactive_s
    bulk_rate = BULK_FRACTION * budget / bulk_s

    rng = random.Random(seed)
    arrivals = EventQueue()
    for tenant, _ in TENANTS:
        for lane, rate in (
            (LANE_INTERACTIVE, interactive_rate),
            (LANE_BULK, bulk_rate),
        ):
            at = 0.0
            while True:
                at += rng.expovariate(rate * multiplier)
                if at >= duration_s:
                    break
                sql = (
                    interactive_sql(rng)
                    if lane == LANE_INTERACTIVE
                    else BULK_SQL
                )
                arrivals.push(at, _Arrival(tenant, lane, sql))

    clients: Dict[Tuple[str, str], ClientCounters] = {
        (tenant, lane): ClientCounters()
        for tenant, _ in TENANTS
        for lane in (LANE_INTERACTIVE, LANE_BULK)
    }
    base_time = door.now
    while arrivals:
        at, arrival = arrivals.pop()
        counters = clients[(arrival.tenant, arrival.lane)]
        if arrival.attempt == 1:
            counters.unique_requests += 1
        ticket = door.submit(
            ServingRequest(
                tenant=arrival.tenant, sql=arrival.sql, lane=arrival.lane
            ),
            now=max(door.now, base_time + at),
        )
        if ticket.admitted:
            continue
        if arrival.attempt >= CLIENT_RETRY.max_attempts:
            counters.gave_up += 1
            continue
        counters.retries += 1
        backoff = CLIENT_RETRY.backoff_s(
            arrival.attempt, rng, retry_after_s=ticket.retry_after_s
        )
        arrivals.push(
            at + backoff,
            _Arrival(
                arrival.tenant,
                arrival.lane,
                arrival.sql,
                attempt=arrival.attempt + 1,
            ),
        )
    drained_at = door.drain() - base_time

    report = OverloadReport(
        multiplier=multiplier,
        duration_s=duration_s,
        drained_at_s=drained_at,
        interactive_rate_qps=interactive_rate,
        bulk_rate_qps=bulk_rate,
    )
    for (tenant, lane), stats in sorted(net.metrics.serving.items()):
        report.lanes[f"{tenant}/{lane}"] = stats.as_dict()
    for (tenant, lane), counters in sorted(clients.items()):
        report.clients[f"{tenant}/{lane}"] = {
            "unique_requests": counters.unique_requests,
            "retries": counters.retries,
            "gave_up": counters.gave_up,
        }
    return report


def run_sweep(
    multipliers: List[float],
    duration_s: float = 60.0,
    seed: int = SEED,
) -> Dict[float, OverloadReport]:
    """Run every sweep point from one seed, keyed by multiplier."""
    return {
        multiplier: run_overload(multiplier, duration_s=duration_s, seed=seed)
        for multiplier in multipliers
    }


def check_slo_invariants(
    reports: Dict[float, OverloadReport]
) -> List[str]:
    """The overload acceptance gates; returns human-readable violations."""
    violations: List[str] = []
    for multiplier, report in sorted(reports.items()):
        for name, lane in report.lanes.items():
            shed = lane["shed_queue_full"] + lane["shed_backpressure"]
            if lane["offered"] != (
                lane["admitted"] + shed + lane["deadline_missed"]
            ):
                violations.append(
                    f"{multiplier}x {name}: offered={lane['offered']} != "
                    f"admitted+shed+deadline_missed"
                )
            if lane["admitted"] != lane["completed"] + lane["failed"]:
                violations.append(
                    f"{multiplier}x {name}: admitted != completed+failed"
                )
    baseline = reports.get(1.0)
    overload = reports.get(10.0)
    if baseline is None or overload is None:
        return violations

    def lane_total(report: OverloadReport, lane: str, fld: str) -> int:
        return sum(
            stats[fld]
            for name, stats in report.lanes.items()
            if name.endswith("/" + lane)
        )

    for tenant, _ in TENANTS:
        key = f"{tenant}/{LANE_INTERACTIVE}"
        p99_1x = baseline.lanes.get(key, {}).get("latency_p99_s", 0.0)
        p99_10x = overload.lanes.get(key, {}).get("latency_p99_s", 0.0)
        if p99_1x <= 0.0 or p99_10x <= 0.0:
            violations.append(f"{key}: missing latency samples in the sweep")
        elif p99_10x > 2.0 * p99_1x:
            violations.append(
                f"{key}: admitted p99 {p99_10x:.3f}s at 10x exceeds 2x the "
                f"1x value {p99_1x:.3f}s"
            )
    shed_10x = lane_total(overload, LANE_INTERACTIVE, "shed_queue_full") + (
        lane_total(overload, LANE_INTERACTIVE, "shed_backpressure")
    ) + lane_total(overload, LANE_BULK, "shed_queue_full") + lane_total(
        overload, LANE_BULK, "shed_backpressure"
    )
    if shed_10x == 0:
        violations.append("10x load shed nothing — overload never happened")

    def shed_fraction(lane: str) -> float:
        offered = lane_total(overload, lane, "offered")
        if offered == 0:
            return 0.0
        dropped = (
            lane_total(overload, lane, "shed_queue_full")
            + lane_total(overload, lane, "shed_backpressure")
            + lane_total(overload, lane, "deadline_missed")
        )
        return dropped / offered

    if shed_fraction(LANE_BULK) <= shed_fraction(LANE_INTERACTIVE):
        violations.append(
            f"bulk shed fraction {shed_fraction(LANE_BULK):.3f} not above "
            f"interactive {shed_fraction(LANE_INTERACTIVE):.3f} at 10x — "
            f"priority inversion"
        )
    return violations


def render(reports: Dict[float, OverloadReport]) -> str:
    """A terminal summary of the sweep, one block per point."""
    lines = []
    for multiplier, report in sorted(reports.items()):
        lines.append(
            f"{multiplier:g}x offered load "
            f"(drained {report.drained_at_s:.1f}s):"
        )
        for name, lane in report.lanes.items():
            shed = lane["shed_queue_full"] + lane["shed_backpressure"]
            lines.append(
                f"  {name}: offered={lane['offered']} "
                f"admitted={lane['admitted']} completed={lane['completed']} "
                f"shed={shed} missed={lane['deadline_missed']} "
                f"e2e p99={lane['latency_p99_s']:.3f}s"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns 1 when any SLO gate is violated."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.overload",
        description="overload sweep with SLO gates",
    )
    parser.add_argument(
        "--multipliers",
        default="1,10",
        help="comma-separated offered-load multipliers (default: 1,10)",
    )
    parser.add_argument(
        "--duration", type=float, default=60.0,
        help="offered-load window in simulated seconds",
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--out", default=None, help="write the JSON report here"
    )
    args = parser.parse_args(argv)
    multipliers = [float(value) for value in args.multipliers.split(",")]

    reports = run_sweep(
        multipliers, duration_s=args.duration, seed=args.seed
    )
    print(render(reports))
    violations = check_slo_invariants(reports)
    if args.out:
        payload = {
            "seed": args.seed,
            "reports": {
                str(multiplier): report.as_dict()
                for multiplier, report in sorted(reports.items())
            },
            "violations": violations,
        }
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"report written to {args.out}")
    if violations:
        print("SLO violations:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print("all overload SLOs hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
