"""Perf-regression microbenchmarks for the local SQL engine.

Each kernel times the *same* query in all three execution modes of
:class:`~repro.sqlengine.database.Database` — interpreted ``Expr.evaluate``
tree-walks, the compiled closures of :mod:`repro.sqlengine.compile`, and
the batch kernels of :mod:`repro.sqlengine.vectorize` running over
column-major storage — and asserts the modes produce identical rows *and*
identical :class:`~repro.sqlengine.executor.ExecStats` before any timing
counts.  Because simulated latencies are derived purely from those
counters, neither compilation nor vectorization can change a single figure
in the paper reproduction; they only change how fast the figures are
produced.

The emitted ``BENCH_perf.json`` records a median-of-k wall-clock per mode
plus speedup ratios (compiled/interpreted, vectorized/interpreted, and
vectorized/compiled).  The CI gate compares *ratios* (measured within one
run, on one machine) against the checked-in baseline, so the check is
machine-independent: a kernel fails only if a mode lost a significant
fraction of its relative advantage.

Usage::

    python -m repro.bench.microbench --out BENCH_perf.json
    python -m repro.bench.microbench --check benchmarks/perf_baseline.json

Wall-clock use below is deliberate and driver-side only: the benchmark
measures the *reproduction's own* execution speed, never simulated time.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.sqlengine.database import Database

#: Relative regression tolerance for the CI gate: a kernel fails when its
#: measured speedup drops below ``baseline * (1 - TOLERANCE)``.
TOLERANCE = 0.25

DEFAULT_REPEAT = 5
DEFAULT_SCALE = 1.0
SEED = 1729

#: Timed execution modes, slowest first (ratios are relative to the first).
MODES = ("interpreted", "compiled", "vectorized")

_SHIP_DATES = ("1995-01-10", "1995-03-15", "1995-06-01", "1995-09-20")
_ORDER_DATES = ("1995-02-01", "1995-03-01", "1995-04-01", "1995-08-01")


@dataclass
class KernelResult:
    """One kernel's measurement: all modes, their ratios, the work done."""

    name: str
    sql: str
    rows_out: int
    interpreted_s: float
    compiled_s: float
    vectorized_s: float
    #: compiled over interpreted (the historical ratio name).
    speedup: float
    #: vectorized over interpreted.
    vectorized_speedup: float
    #: vectorized over compiled — the batch path must not lose to the
    #: row-at-a-time compiled path on any kernel.
    vectorized_vs_compiled: float
    stats: Dict[str, int]


def build_database(scale: float = DEFAULT_SCALE, seed: int = SEED) -> Database:
    """A deterministic two-table dataset shaped like LineItem ⋈ Orders."""
    rng = random.Random(seed)
    db = Database("microbench")
    db.execute(
        "CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, "
        "o_custkey INTEGER, o_clerk INTEGER, o_orderdate TEXT, "
        "o_shippriority INTEGER)"
    )
    db.execute(
        "CREATE TABLE lineitem (l_orderkey INTEGER, l_suppkey INTEGER, "
        "l_quantity INTEGER, l_extendedprice FLOAT, l_discount FLOAT, "
        "l_shipdate TEXT)"
    )
    num_orders = max(1, int(1000 * scale))
    orders = [
        (
            orderkey,
            rng.randrange(1, 200),
            rng.randrange(0, 200),
            rng.choice(_ORDER_DATES),
            rng.randrange(0, 10),
        )
        for orderkey in range(num_orders)
    ]
    lineitems = [
        (
            rng.randrange(num_orders),
            rng.randrange(0, 200),
            rng.randrange(1, 50),
            round(rng.uniform(900.0, 105000.0), 2),
            round(rng.uniform(0.0, 0.1), 2),
            rng.choice(_SHIP_DATES),
        )
        for _ in range(max(1, int(4000 * scale)))
    ]
    db.table("orders").insert_many(orders)
    db.table("lineitem").insert_many(lineitems)
    return db


# ----------------------------------------------------------------------
# Kernels: (name, sql).  Single-table predicates compile into the scans;
# the join kernel carries multi-table residual conjuncts so the per-pair
# condition (not just the key probe) is exercised.
# ----------------------------------------------------------------------
KERNELS: Tuple[Tuple[str, str], ...] = (
    (
        "scan",
        "SELECT l_orderkey, l_quantity, l_extendedprice FROM lineitem",
    ),
    (
        "filter",
        "SELECT l_orderkey, l_extendedprice FROM lineitem "
        "WHERE l_quantity > 25 AND l_discount < 0.05 "
        "AND l_shipdate > '1995-02-01' AND l_extendedprice * 0.9 > 1000.0",
    ),
    (
        "join",
        "SELECT o_orderkey, l_quantity FROM orders, lineitem "
        "WHERE o_clerk = l_suppkey "
        "AND (l_extendedprice * (1 - l_discount) + o_shippriority * 10.0) "
        "* (1 + o_orderkey * 0.0001) "
        "> l_quantity * o_shippriority * 0.5 - 500.0 "
        "AND l_quantity + o_shippriority < 40",
    ),
    (
        "group_by",
        "SELECT l_shipdate, COUNT(*), SUM(l_extendedprice), AVG(l_discount) "
        "FROM lineitem GROUP BY l_shipdate ORDER BY l_shipdate",
    ),
    (
        "q3_end_to_end",
        "SELECT l_orderkey, o_orderdate, "
        "SUM(l_extendedprice * (1 - l_discount)) AS revenue "
        "FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey AND l_shipdate > '1995-03-01' "
        "AND o_orderdate < '1995-08-01' "
        "GROUP BY l_orderkey, o_orderdate "
        "ORDER BY revenue DESC LIMIT 10",
    ),
)


def _median(samples: List[float]) -> float:
    ordered = sorted(samples)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _time_once(db: Database, sql: str, mode: str) -> float:
    db.execution_mode = mode
    started = time.perf_counter()  # repro: allow[SIM002] driver wall-time, not simulated time
    db.execute(sql)
    return time.perf_counter() - started  # repro: allow[SIM002] driver wall-time, not simulated time


def _time_modes(db: Database, sql: str, repeat: int) -> Dict[str, float]:
    """Median wall-clock of ``repeat`` runs per mode, sampled interleaved.

    Alternating all three modes within each round keeps slow host drift
    (thermal throttling, background load) out of the speedup ratios.
    Untimed warm-up runs populate the per-mode plan cache first, so every
    timed run measures execution — the exact per-row and per-batch work the
    fast paths target — with parse+plan amortized identically in all modes.
    """
    for mode in MODES:
        _time_once(db, sql, mode)
    samples: Dict[str, List[float]] = {mode: [] for mode in MODES}
    for _ in range(repeat):
        for mode in MODES:
            samples[mode].append(_time_once(db, sql, mode))
    return {mode: _median(samples[mode]) for mode in MODES}


def _assert_equivalent(db: Database, sql: str) -> Tuple[int, Dict[str, int]]:
    """All modes must yield identical rows and identical ExecStats."""
    db.clear_plan_cache()
    db.execution_mode = "interpreted"
    reference = db.execute(sql)
    for mode in MODES[1:]:
        db.clear_plan_cache()
        db.execution_mode = mode
        result = db.execute(sql)
        if reference.rows != result.rows:
            raise AssertionError(f"row mismatch ({mode} mode) for: {sql}")
        if asdict(reference.stats) != asdict(result.stats):
            raise AssertionError(
                f"ExecStats mismatch ({mode} mode) for: {sql}"
            )
    return len(reference.rows), asdict(reference.stats)


def run_kernel(db: Database, name: str, sql: str, repeat: int) -> KernelResult:
    """Verify mode equivalence for one kernel, then time every mode."""
    rows_out, stats = _assert_equivalent(db, sql)
    medians = _time_modes(db, sql, repeat)
    interpreted_s = medians["interpreted"]
    compiled_s = medians["compiled"]
    vectorized_s = medians["vectorized"]

    def ratio(slow: float, fast: float) -> float:
        return slow / fast if fast > 0 else float("inf")

    return KernelResult(
        name=name,
        sql=sql,
        rows_out=rows_out,
        interpreted_s=interpreted_s,
        compiled_s=compiled_s,
        vectorized_s=vectorized_s,
        speedup=ratio(interpreted_s, compiled_s),
        vectorized_speedup=ratio(interpreted_s, vectorized_s),
        vectorized_vs_compiled=ratio(compiled_s, vectorized_s),
        stats=stats,
    )


def run_plan_cache_workload(db: Database, rounds: int = 20) -> Dict[str, int]:
    """A repeated-query workload: every round after the first should hit.

    Runs in vectorized mode (the default), so the check also proves the
    batch path reuses cached plans under its ``(mode, sql)`` cache key.
    """
    db.clear_plan_cache()
    db.plan_cache_hits = 0
    db.plan_cache_misses = 0
    db.execution_mode = "vectorized"
    sql = KERNELS[1][1]
    for _ in range(rounds):
        db.execute(sql)
    return {"hits": db.plan_cache_hits, "misses": db.plan_cache_misses}


def run_microbench(
    scale: float = DEFAULT_SCALE,
    repeat: int = DEFAULT_REPEAT,
    seed: int = SEED,
) -> Dict[str, object]:
    """Run every kernel; returns the ``BENCH_perf.json`` payload."""
    db = build_database(scale=scale, seed=seed)
    kernels: Dict[str, Dict[str, object]] = {}
    for name, sql in KERNELS:
        result = run_kernel(db, name, sql, repeat)
        kernels[name] = asdict(result)
    return {
        "scale": scale,
        "repeat": repeat,
        "seed": seed,
        "tolerance": TOLERANCE,
        "kernels": kernels,
        "plan_cache": run_plan_cache_workload(db),
    }


def check_against_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = TOLERANCE,
) -> List[str]:
    """Failures (empty = pass) comparing speedup ratios with a tolerance.

    Ratios are measured within one run on one machine, so absolute host
    speed cancels out; only a genuine loss of a mode's advantage fails.
    Every ratio field present in a baseline kernel entry is checked, so a
    baseline can gate compiled/interpreted, vectorized/interpreted, and
    vectorized/compiled independently.
    """
    failures: List[str] = []
    ratio_fields = ("speedup", "vectorized_speedup", "vectorized_vs_compiled")
    current_kernels = current["kernels"]
    for name, entry in baseline["kernels"].items():
        measured = current_kernels.get(name)
        if measured is None:
            failures.append(f"{name}: kernel missing from current run")
            continue
        for field in ratio_fields:
            if field not in entry:
                continue
            floor = entry[field] * (1.0 - tolerance)
            if measured[field] < floor:
                failures.append(
                    f"{name}: {field} {measured[field]:.2f}x fell below "
                    f"{floor:.2f}x (baseline {entry[field]:.2f}x "
                    f"- {tolerance:.0%} tolerance)"
                )
    hits = current.get("plan_cache", {}).get("hits", 0)
    if not hits:
        failures.append("plan_cache: repeated-query workload recorded no hits")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code (1 on regression)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.microbench",
        description=(
            "SQL-engine microbenchmarks: interpreted vs compiled vs "
            "vectorized."
        ),
    )
    parser.add_argument("--out", help="write BENCH_perf.json here")
    parser.add_argument(
        "--check", help="compare speedups against this baseline JSON"
    )
    parser.add_argument("--repeat", type=int, default=DEFAULT_REPEAT)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    args = parser.parse_args(argv)

    payload = run_microbench(scale=args.scale, repeat=args.repeat)
    for name, entry in payload["kernels"].items():
        print(
            f"{name:>14}: interpreted {entry['interpreted_s'] * 1e3:8.2f} ms  "
            f"compiled {entry['compiled_s'] * 1e3:8.2f} ms  "
            f"vectorized {entry['vectorized_s'] * 1e3:8.2f} ms  "
            f"({entry['speedup']:.2f}x / {entry['vectorized_speedup']:.2f}x "
            f"/ vs-compiled {entry['vectorized_vs_compiled']:.2f}x, "
            f"{entry['rows_out']} rows)"
        )
    cache = payload["plan_cache"]
    print(f"    plan cache: hits={cache['hits']} misses={cache['misses']}")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.out}")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_against_baseline(payload, baseline)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"baseline check passed ({args.check})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
