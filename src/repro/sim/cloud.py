"""Simulated cloud provider: the EC2/RDS/EBS/CloudWatch stand-in.

The paper's Amazon Cloud Adapter (Section 2.1) exposes exactly four
capabilities to the BestPeer++ core:

1. launch/terminate dedicated database servers (EC2/RDS),
2. back up each server's database to reliable storage (EBS, asynchronous,
   four-minute snapshot window),
3. report per-instance health/performance metrics (CloudWatch), and
4. resize an instance for auto-scaling (e.g., m1.small -> m1.large).

:class:`CloudProvider` implements all four against the simulation substrate.
The instance-type catalogue mirrors the types named in the paper, including
their relative compute power, which the cost model uses to speed up local
processing after an auto-scaling event.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CloudError, InstanceNotFound, InstanceStateError
from repro.sim.clock import SimClock
from repro.sim.network import SimNetwork


@dataclass(frozen=True)
class InstanceType:
    """An EC2 instance type as used in the paper's experiments."""

    name: str
    virtual_cores: int
    memory_gb: float
    # Relative compute power; m1.small (1 ECU) is the unit.
    compute_units: float
    hourly_cost_usd: float


INSTANCE_TYPES: Dict[str, InstanceType] = {
    "m1.small": InstanceType("m1.small", 1, 1.7, 1.0, 0.08),
    "m1.medium": InstanceType("m1.medium", 1, 3.75, 2.0, 0.16),
    "m1.large": InstanceType("m1.large", 4, 7.5, 4.0, 0.32),
    "m1.xlarge": InstanceType("m1.xlarge", 8, 15.0, 8.0, 0.64),
}

# Scale-up path used by the auto-scaling daemon: each type upgrades to the
# next one in this list.
_SCALE_UP_ORDER = ["m1.small", "m1.medium", "m1.large", "m1.xlarge"]

# The paper backs up "the whole MySQL database ... in a four-minute window".
EBS_BACKUP_WINDOW_S = 240.0
# Launching a fresh EC2 instance takes on the order of a minute.
INSTANCE_LAUNCH_TIME_S = 60.0
# Restoring a database from an EBS snapshot; proportional part added per byte.
SNAPSHOT_RESTORE_BASE_S = 30.0
SNAPSHOT_RESTORE_BYTES_PER_S = 200e6


class InstanceState(enum.Enum):
    """Lifecycle of a simulated instance."""

    PENDING = "pending"
    RUNNING = "running"
    CRASHED = "crashed"
    TERMINATED = "terminated"


@dataclass
class EbsSnapshot:
    """An asynchronous backup of one instance's database."""

    snapshot_id: str
    instance_id: str
    taken_at: float
    payload_bytes: int
    # Opaque application payload (the BestPeer++ loader stores a database
    # image here); the simulator never inspects it.
    payload: object = None


@dataclass
class Instance:
    """A launched virtual server."""

    instance_id: str
    instance_type: InstanceType
    storage_gb: float
    state: InstanceState
    launched_at: float
    security_group: str
    # CloudWatch-style gauges, updated by the component running on the
    # instance (a normal peer reports its own utilization).
    cpu_utilization: float = 0.0
    storage_used_gb: float = 0.0
    accumulated_cost_usd: float = 0.0

    @property
    def free_storage_gb(self) -> float:
        return max(0.0, self.storage_gb - self.storage_used_gb)


class CloudWatch:
    """Read-only metric view over a :class:`CloudProvider`.

    The bootstrap peer's daemon polls this — never the instances directly —
    mirroring how the paper's bootstrap "monitors the health of all other
    BestPeer++ instances by querying the Amazon CloudWatch service".
    """

    def __init__(self, provider: "CloudProvider") -> None:
        self._provider = provider

    def is_responsive(self, instance_id: str) -> bool:
        """True if the instance is running and reachable on the network.

        A transient outage window (fault injection) reads as a missed
        heartbeat too — the failure detector's suspicion threshold decides
        whether that warrants a fail-over.
        """
        instance = self._provider.describe_instance(instance_id)
        if instance.state is not InstanceState.RUNNING:
            return False
        network = self._provider.network
        if network.is_partitioned(instance_id):
            return False
        return not network.is_unreachable(instance_id)

    def metrics(self, instance_id: str) -> Dict[str, float]:
        instance = self._provider.describe_instance(instance_id)
        return {
            "cpu_utilization": instance.cpu_utilization,
            "storage_used_gb": instance.storage_used_gb,
            "free_storage_gb": instance.free_storage_gb,
        }


class CloudProvider:
    """The simulated Amazon: launches instances, takes snapshots, bills time.

    All durations are simulated seconds; the provider never sleeps.
    """

    def __init__(self, network: SimNetwork, clock: Optional[SimClock] = None) -> None:
        self.network = network
        self.clock = clock or SimClock()
        self.cloudwatch = CloudWatch(self)
        self._instances: Dict[str, Instance] = {}
        self._snapshots: Dict[str, EbsSnapshot] = {}
        self._latest_snapshot: Dict[str, str] = {}
        self._instance_counter = itertools.count(1)
        self._snapshot_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # EC2: launch / terminate / resize
    # ------------------------------------------------------------------
    def launch_instance(
        self,
        instance_type: str = "m1.small",
        storage_gb: float = 5.0,
        security_group: str = "default",
        instance_id: Optional[str] = None,
    ) -> Instance:
        """Launch a new virtual server and register it on the network.

        Returns the running :class:`Instance`.  The launch consumes
        :data:`INSTANCE_LAUNCH_TIME_S` of simulated time (callers that model
        latency, like fail-over, read that constant; the global clock is not
        advanced here because launches overlap other work).
        """
        if instance_type not in INSTANCE_TYPES:
            raise CloudError(f"unknown instance type: {instance_type!r}")
        if storage_gb <= 0:
            raise CloudError(f"storage must be positive: {storage_gb}")
        if instance_id is None:
            instance_id = f"i-{next(self._instance_counter):06d}"
        if instance_id in self._instances:
            raise CloudError(f"instance id already in use: {instance_id!r}")

        instance = Instance(
            instance_id=instance_id,
            instance_type=INSTANCE_TYPES[instance_type],
            storage_gb=storage_gb,
            state=InstanceState.RUNNING,
            launched_at=self.clock.now,
            security_group=security_group,
        )
        self._instances[instance_id] = instance
        self.network.add_host(instance_id)
        return instance

    def terminate_instance(self, instance_id: str) -> None:
        instance = self.describe_instance(instance_id)
        if instance.state is InstanceState.TERMINATED:
            raise InstanceStateError(f"instance already terminated: {instance_id!r}")
        instance.state = InstanceState.TERMINATED
        if self.network.has_host(instance_id):
            self.network.remove_host(instance_id)

    def resize_instance(self, instance_id: str, new_type: str) -> Instance:
        """Auto-scaling: move the instance to a different type in place."""
        if new_type not in INSTANCE_TYPES:
            raise CloudError(f"unknown instance type: {new_type!r}")
        instance = self.describe_instance(instance_id)
        self._require_running(instance)
        instance.instance_type = INSTANCE_TYPES[new_type]
        return instance

    def scale_up_type(self, current: str) -> Optional[str]:
        """Next-larger instance type, or ``None`` if already at the top."""
        if current not in _SCALE_UP_ORDER:
            raise CloudError(f"unknown instance type: {current!r}")
        index = _SCALE_UP_ORDER.index(current)
        if index + 1 >= len(_SCALE_UP_ORDER):
            return None
        return _SCALE_UP_ORDER[index + 1]

    def add_storage(self, instance_id: str, extra_gb: float) -> Instance:
        if extra_gb <= 0:
            raise CloudError(f"extra storage must be positive: {extra_gb}")
        instance = self.describe_instance(instance_id)
        self._require_running(instance)
        instance.storage_gb += extra_gb
        return instance

    # ------------------------------------------------------------------
    # Failures (used by FailureInjector)
    # ------------------------------------------------------------------
    def crash_instance(self, instance_id: str) -> None:
        """Simulate an instance crash: it stops responding but is not freed."""
        instance = self.describe_instance(instance_id)
        self._require_running(instance)
        instance.state = InstanceState.CRASHED
        self.network.partition(instance_id)

    # ------------------------------------------------------------------
    # EBS: snapshots and restore
    # ------------------------------------------------------------------
    def create_snapshot(
        self, instance_id: str, payload_bytes: int, payload: object = None
    ) -> EbsSnapshot:
        """Asynchronously back up the instance's database to EBS.

        Backups are asynchronous in the paper ("no service interrupt during
        the back-up process"), so this costs the *instance* nothing; the
        snapshot simply becomes the newest restore point.
        """
        instance = self.describe_instance(instance_id)
        self._require_running(instance)
        if payload_bytes < 0:
            raise CloudError(f"snapshot size cannot be negative: {payload_bytes}")
        snapshot = EbsSnapshot(
            snapshot_id=f"snap-{next(self._snapshot_counter):06d}",
            instance_id=instance_id,
            taken_at=self.clock.now,
            payload_bytes=payload_bytes,
            payload=payload,
        )
        self._snapshots[snapshot.snapshot_id] = snapshot
        self._latest_snapshot[instance_id] = snapshot.snapshot_id
        return snapshot

    def latest_snapshot(self, instance_id: str) -> Optional[EbsSnapshot]:
        snapshot_id = self._latest_snapshot.get(instance_id)
        if snapshot_id is None:
            return None
        return self._snapshots[snapshot_id]

    def restore_duration_s(self, snapshot: EbsSnapshot) -> float:
        """Simulated time to restore a database from ``snapshot``."""
        return (
            SNAPSHOT_RESTORE_BASE_S
            + snapshot.payload_bytes / SNAPSHOT_RESTORE_BYTES_PER_S
        )

    # ------------------------------------------------------------------
    # Introspection & billing
    # ------------------------------------------------------------------
    def describe_instance(self, instance_id: str) -> Instance:
        instance = self._instances.get(instance_id)
        if instance is None:
            raise InstanceNotFound(f"no such instance: {instance_id!r}")
        return instance

    def list_instances(self, state: Optional[InstanceState] = None) -> List[Instance]:
        instances = list(self._instances.values())
        if state is not None:
            instances = [i for i in instances if i.state is state]
        return instances

    def bill(self, instance_id: str, hours: float) -> float:
        """Accrue pay-as-you-go cost for ``hours`` of usage; returns the charge."""
        if hours < 0:
            raise CloudError(f"cannot bill negative hours: {hours}")
        instance = self.describe_instance(instance_id)
        charge = instance.instance_type.hourly_cost_usd * hours
        instance.accumulated_cost_usd += charge
        return charge

    def _require_running(self, instance: Instance) -> None:
        if instance.state is not InstanceState.RUNNING:
            raise InstanceStateError(
                f"instance {instance.instance_id!r} is {instance.state.value}, "
                "expected running"
            )
