"""Simulation substrate: simulated time, network fabric and cloud provider.

The paper evaluates BestPeer++ on Amazon EC2.  This package provides the
laptop-scale equivalent: a deterministic, single-process simulation in which

* :class:`~repro.sim.clock.SimClock` plays the role of wall-clock time,
* :class:`~repro.sim.network.SimNetwork` plays the role of the data-center
  network (per-message latency plus bandwidth-limited transfer), and
* :class:`~repro.sim.cloud.CloudProvider` plays the role of the EC2/RDS/EBS/
  CloudWatch services used by the paper's Amazon Cloud Adapter.

All components are seeded and deterministic so benchmark output is
reproducible bit-for-bit.
"""

from repro.sim.clock import SimClock, parallel_duration, serial_duration
from repro.sim.events import EventQueue
from repro.sim.network import (
    FaultStats,
    NetworkConfig,
    SimNetwork,
    TransferStats,
)
from repro.sim.cloud import (
    CloudProvider,
    CloudWatch,
    EbsSnapshot,
    Instance,
    InstanceState,
    InstanceType,
    INSTANCE_TYPES,
)
from repro.sim.failure import (
    FailureInjector,
    FaultPlan,
    LinkFault,
    Outage,
    Partition,
)
from repro.sim.chaos import (
    ChaosHarness,
    ChaosRun,
    QueryOutcome,
    verify_bootstrap_invariants,
)
from repro.sim.compute import ComputeModel, DEFAULT_COMPUTE_MODEL

__all__ = [
    "SimClock",
    "serial_duration",
    "parallel_duration",
    "EventQueue",
    "NetworkConfig",
    "SimNetwork",
    "TransferStats",
    "FaultStats",
    "CloudProvider",
    "CloudWatch",
    "EbsSnapshot",
    "Instance",
    "InstanceState",
    "InstanceType",
    "INSTANCE_TYPES",
    "FailureInjector",
    "FaultPlan",
    "LinkFault",
    "Outage",
    "Partition",
    "ChaosHarness",
    "ChaosRun",
    "QueryOutcome",
    "verify_bootstrap_invariants",
    "ComputeModel",
    "DEFAULT_COMPUTE_MODEL",
]
