"""Simulated data-center network.

The paper measured ~100 MB/s end-to-end bandwidth between EC2 small instances
(`iperf`, Section 6.1.1).  We model each point-to-point transfer as

    duration = latency + message_count * per_message_overhead + bytes / bandwidth

and keep per-host and per-link counters so benchmarks can report bytes
shipped (the quantity the bloom-join optimization reduces).

Hosts are plain string identifiers.  The network supports partitions
(cutting a host off entirely) which the fail-over tests use to simulate
crashed instances that stop responding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from repro.errors import NetworkError, RpcTimeoutError, TransientNetworkError


@dataclass(frozen=True)
class NetworkConfig:
    """Tunable parameters of the simulated network.

    Defaults approximate the environment in Section 6.1.1 of the paper:
    100 MB/s end-to-end bandwidth and sub-millisecond in-region latency.
    """

    latency_s: float = 0.0005
    bandwidth_bytes_per_s: float = 100e6
    per_message_overhead_s: float = 0.0001
    loopback_bandwidth_bytes_per_s: float = 2e9

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise NetworkError("latency must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise NetworkError("bandwidth must be positive")
        if self.per_message_overhead_s < 0:
            raise NetworkError("per-message overhead must be non-negative")
        if self.loopback_bandwidth_bytes_per_s <= 0:
            raise NetworkError("loopback bandwidth must be positive")


@dataclass
class TransferStats:
    """Aggregated transfer counters, exposed for benchmark reporting."""

    messages: int = 0
    bytes: int = 0
    total_duration_s: float = 0.0

    def record(self, nbytes: int, duration_s: float, messages: int) -> None:
        self.messages += messages
        self.bytes += nbytes
        self.total_duration_s += duration_s


@dataclass
class FaultStats:
    """Counters of injected message-level faults (chaos observability)."""

    dropped_messages: int = 0
    timeouts: int = 0
    transient_rejections: int = 0
    injected_crashes: int = 0
    partition_rejections: int = 0

    @property
    def total(self) -> int:
        return (
            self.dropped_messages
            + self.timeouts
            + self.transient_rejections
            + self.injected_crashes
            + self.partition_rejections
        )


class SimNetwork:
    """A fully connected network of named hosts with cost accounting.

    The network does not queue or deliver payloads itself — the in-process
    components call each other directly — it *prices* each transfer and
    tracks statistics.  This keeps the simulation simple while still making
    network cost a first-class, measurable quantity.
    """

    def __init__(self, config: NetworkConfig | None = None) -> None:
        self.config = config or NetworkConfig()
        self._hosts: Set[str] = set()
        self._partitioned: Set[str] = set()
        self._link_stats: Dict[Tuple[str, str], TransferStats] = {}
        self._host_stats: Dict[str, TransferStats] = {}
        self.total = TransferStats()
        # Message-level fault injection (installed by the chaos layer).
        self.fault_plan = None
        self.fault_stats = FaultStats()
        self._on_crash: Optional[Callable[[str], None]] = None
        self._transfer_ordinal = 0
        self._completed_transfers = 0

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def install_fault_plan(
        self, plan, on_crash: Optional[Callable[[str], None]] = None
    ) -> None:
        """Install a :class:`~repro.sim.failure.FaultPlan` (or ``None``).

        ``on_crash`` is invoked with a host id when the plan schedules a
        crash after the Nth successful transfer; the owner of the network
        (e.g. the BestPeer++ facade) maps the host to an instance crash.
        """
        self.fault_plan = plan
        self._on_crash = on_crash
        self._transfer_ordinal = 0
        self._completed_transfers = 0
        if plan is not None:
            plan.reset()

    def is_unreachable(self, host: str) -> bool:
        """Whether ``host`` is inside a transient outage window right now.

        Distinct from :meth:`is_partitioned`: an outage clears on its own,
        so failure detectors should *suspect*, not immediately fail over.
        """
        return self.fault_plan is not None and self.fault_plan.is_unreachable(
            host, self._transfer_ordinal
        )

    # ------------------------------------------------------------------
    # Host management
    # ------------------------------------------------------------------
    def add_host(self, host: str) -> None:
        """Register a host; registering twice is an error (likely a bug)."""
        if host in self._hosts:
            raise NetworkError(f"host already registered: {host!r}")
        self._hosts.add(host)
        self._host_stats[host] = TransferStats()

    def remove_host(self, host: str) -> None:
        self._require_host(host)
        self._hosts.discard(host)
        self._partitioned.discard(host)

    def has_host(self, host: str) -> bool:
        return host in self._hosts

    @property
    def hosts(self) -> Set[str]:
        return set(self._hosts)

    # ------------------------------------------------------------------
    # Partitions (used by failure injection)
    # ------------------------------------------------------------------
    def partition(self, host: str) -> None:
        """Cut ``host`` off: all transfers to/from it fail until healed."""
        self._require_host(host)
        self._partitioned.add(host)

    def heal(self, host: str) -> None:
        self._require_host(host)
        self._partitioned.discard(host)

    def is_partitioned(self, host: str) -> bool:
        return host in self._partitioned

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def transfer(self, src: str, dst: str, nbytes: int, messages: int = 1) -> float:
        """Price a transfer of ``nbytes`` from ``src`` to ``dst``.

        Returns the simulated duration in seconds and records statistics.
        A transfer where ``src == dst`` is a loopback: no latency, and the
        much higher local-bus bandwidth applies.
        """
        self._require_host(src)
        self._require_host(dst)
        if nbytes < 0:
            raise NetworkError(f"cannot transfer a negative byte count: {nbytes}")
        if messages < 1:
            raise NetworkError(f"a transfer needs at least one message: {messages}")
        if src in self._partitioned or dst in self._partitioned:
            unreachable = src if src in self._partitioned else dst
            raise NetworkError(f"host is partitioned: {unreachable!r}")

        if src == dst:
            # Loopback never leaves the machine: immune to injected faults.
            duration = nbytes / self.config.loopback_bandwidth_bytes_per_s
            self._record(src, dst, nbytes, duration, messages)
            return duration

        duration = (
            self.config.latency_s
            + messages * self.config.per_message_overhead_s
            + nbytes / self.config.bandwidth_bytes_per_s
        )
        plan = self.fault_plan
        if plan is not None:
            self._transfer_ordinal += 1
            if plan.severed(src, dst, self._transfer_ordinal):
                # The delivery straddles an active bipartition: refused in
                # both directions, nothing was put on the wire.
                self.fault_stats.partition_rejections += 1
                raise TransientNetworkError(
                    f"link {src!r} -> {dst!r} crosses a network partition"
                )
            unavailable = plan.unavailable_host(src, dst, self._transfer_ordinal)
            if unavailable is not None:
                # Connection refused: nothing was put on the wire.
                self.fault_stats.transient_rejections += 1
                raise TransientNetworkError(
                    f"host {unavailable!r} is transiently unavailable"
                )
            duration = plan.degrade(src, dst, duration)
            if plan.should_drop(src, dst):
                # The payload was transmitted and lost: the traffic counts.
                self.fault_stats.dropped_messages += 1
                self._record(src, dst, nbytes, duration, messages)
                raise TransientNetworkError(
                    f"message dropped on link {src!r} -> {dst!r}"
                )
            if plan.timeout_s is not None and duration > plan.timeout_s:
                self.fault_stats.timeouts += 1
                self._record(src, dst, nbytes, duration, messages)
                raise RpcTimeoutError(
                    f"delivery {src!r} -> {dst!r} took {duration:.3f}s, "
                    f"over the {plan.timeout_s:.3f}s timeout"
                )

        self._record(src, dst, nbytes, duration, messages)
        if plan is not None:
            self._completed_transfers += 1
            for host in plan.crashes_due(self._completed_transfers):
                self.fault_stats.injected_crashes += 1
                if self._on_crash is not None:
                    self._on_crash(host)
        return duration

    def broadcast(self, src: str, dsts: list, nbytes: int) -> float:
        """Price sending the same payload from ``src`` to every host in ``dsts``.

        The sends happen concurrently, so the duration is the max of the
        individual transfers (they are identical here, but partitioned
        receivers still raise).
        """
        longest = 0.0
        for dst in dsts:
            longest = max(longest, self.transfer(src, dst, nbytes))
        return longest

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def link_stats(self, src: str, dst: str) -> TransferStats:
        return self._link_stats.setdefault((src, dst), TransferStats())

    def host_stats(self, host: str) -> TransferStats:
        self._require_host(host)
        return self._host_stats[host]

    def reset_stats(self) -> None:
        self._link_stats.clear()
        for host in self._host_stats:
            self._host_stats[host] = TransferStats()
        self.total = TransferStats()
        self.fault_stats = FaultStats()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_host(self, host: str) -> None:
        if host not in self._hosts:
            raise NetworkError(f"unknown host: {host!r}")

    def _record(
        self, src: str, dst: str, nbytes: int, duration: float, messages: int
    ) -> None:
        self.link_stats(src, dst).record(nbytes, duration, messages)
        self._host_stats[src].record(nbytes, duration, messages)
        if dst != src:
            self._host_stats[dst].record(nbytes, duration, messages)
        self.total.record(nbytes, duration, messages)
