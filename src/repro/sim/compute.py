"""Per-node compute cost model.

Converts the relational engine's work counters (rows scanned, rows produced,
join probes) into simulated seconds on a given instance type.  Both systems
under benchmark — BestPeer++ normal peers and HadoopDB workers — use the same
model, so measured differences come from the distributed architecture, not
from different per-node constants.

The constants are calibrated to an m1.small EC2 instance (1 ECU): a full
table scan streams on the order of a hundred thousand tuples per second
through the query executor, emitting a result tuple (including MemTable
staging) costs about the same again, and an index probe is a handful of
microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:
    # Typing-only: the compute model consumes the executor's work counters
    # but the sim layer must not depend on the SQL engine at runtime.
    from repro.sqlengine.executor import ExecStats


@dataclass(frozen=True)
class ComputeModel:
    """Simulated per-row processing costs, scaled by instance compute units."""

    scan_s_per_row: float = 1e-5
    emit_s_per_row: float = 2e-5
    join_s_per_row: float = 5e-6
    index_probe_s: float = 5e-6

    def __post_init__(self) -> None:
        for name in ("scan_s_per_row", "emit_s_per_row", "join_s_per_row",
                     "index_probe_s"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be non-negative")

    def seconds(self, stats: ExecStats, compute_units: float = 1.0) -> float:
        """Simulated local-execution time for a statement's work counters."""
        if compute_units <= 0:
            raise SimulationError(
                f"compute units must be positive: {compute_units}"
            )
        raw = (
            stats.rows_scanned * self.scan_s_per_row
            + stats.rows_output * self.emit_s_per_row
            + (stats.join_build_rows + stats.join_probe_rows) * self.join_s_per_row
            + stats.index_probes * self.index_probe_s
        )
        return raw / compute_units

    def rows_seconds(self, rows: int, compute_units: float = 1.0) -> float:
        """Cost of streaming ``rows`` tuples through a node (e.g. a merge)."""
        if compute_units <= 0:
            raise SimulationError(
                f"compute units must be positive: {compute_units}"
            )
        return rows * self.emit_s_per_row / compute_units


DEFAULT_COMPUTE_MODEL = ComputeModel()
