"""Failure injection for fail-over experiments.

"Machine failures in cloud environment are not uncommon" (Section 4.3); the
bootstrap peer's daemon (Algorithm 1) must detect crashed instances and
trigger automatic fail-over.  :class:`FailureInjector` deterministically
schedules crashes so tests and benchmarks can exercise that path.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.sim.cloud import CloudProvider, InstanceState


class FailureInjector:
    """Deterministic, seeded crash scheduler over a :class:`CloudProvider`."""

    def __init__(self, provider: CloudProvider, seed: int = 0) -> None:
        self._provider = provider
        self._rng = random.Random(seed)
        self.crashed: List[str] = []

    def crash(self, instance_id: str) -> None:
        """Crash one specific instance."""
        self._provider.crash_instance(instance_id)
        self.crashed.append(instance_id)

    def crash_random(self, candidates: Optional[List[str]] = None) -> Optional[str]:
        """Crash one running instance chosen uniformly from ``candidates``.

        If ``candidates`` is ``None``, any running instance may be chosen.
        Returns the crashed instance id, or ``None`` if nothing was running.
        """
        running = [
            instance.instance_id
            for instance in self._provider.list_instances(InstanceState.RUNNING)
        ]
        if candidates is not None:
            allowed = set(candidates)
            running = [instance_id for instance_id in running if instance_id in allowed]
        if not running:
            return None
        victim = self._rng.choice(sorted(running))
        self.crash(victim)
        return victim
