"""Failure injection for fail-over and chaos experiments.

"Machine failures in cloud environment are not uncommon" (Section 4.3); the
bootstrap peer's daemon (Algorithm 1) must detect crashed instances and
trigger automatic fail-over.  :class:`FailureInjector` deterministically
schedules crashes so tests and benchmarks can exercise that path.

:class:`FaultPlan` extends the blunt whole-instance crash with
*message-level* faults, all seeded and deterministic:

* per-link (or network-wide) message drop probability,
* transient peer unavailability windows, scheduled on the global transfer
  ordinal — the Nth delivery attempt network-wide — so a fixed seed and
  workload replay the exact same fault schedule,
* slow-link degradation (extra latency, reduced bandwidth),
* delivery timeouts, and
* crashes scheduled mid-workload (after the Nth successful transfer).

:class:`~repro.sim.network.SimNetwork` consults an installed plan on every
transfer and raises
:class:`~repro.errors.TransientNetworkError`/:class:`~repro.errors.RpcTimeoutError`
for injected faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.cloud import CloudProvider, InstanceState


@dataclass(frozen=True)
class LinkFault:
    """Degradation of one link (or, with wildcards, many links).

    ``src``/``dst`` of ``None`` match any host.  ``drop_probability`` is
    combined with the plan-wide probability by taking the maximum;
    ``extra_latency_s`` is added to and ``bandwidth_factor`` (in (0, 1])
    divides the priced transfer duration.
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    drop_probability: float = 0.0
    extra_latency_s: float = 0.0
    bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise SimulationError(
                f"drop probability must be in [0, 1]: {self.drop_probability}"
            )
        if self.extra_latency_s < 0:
            raise SimulationError("extra latency must be non-negative")
        if not 0 < self.bandwidth_factor <= 1.0:
            raise SimulationError("bandwidth factor must be in (0, 1]")

    def matches(self, src: str, dst: str) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass(frozen=True)
class Outage:
    """A transient unavailability window for one host.

    The host refuses every delivery (as sender or receiver) while the
    network's global transfer ordinal lies in ``[start, end)``.  Counting in
    transfer attempts instead of seconds keeps the schedule deterministic
    regardless of how callers account simulated time.
    """

    host: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise SimulationError(
                f"outage window must satisfy 0 <= start < end: {self}"
            )

    def covers(self, host: str, ordinal: int) -> bool:
        return host == self.host and self.start <= ordinal < self.end


@dataclass(frozen=True)
class Partition:
    """A symmetric network bipartition over a transfer-ordinal window.

    While the global transfer ordinal lies in ``[start, end)``, hosts in
    ``group`` can only talk among themselves and everyone else only among
    themselves: a delivery whose endpoints straddle the cut is refused in
    *both* directions.  This is the split-brain primitive — an isolated
    bootstrap primary keeps running but can reach neither the lock
    service nor its standby — where an :class:`Outage` would only model a
    host that is down outright.
    """

    group: Tuple[str, ...]
    start: int
    end: int

    def __post_init__(self) -> None:
        if not self.group:
            raise SimulationError("a partition needs at least one host")
        if self.start < 0 or self.end <= self.start:
            raise SimulationError(
                f"partition window must satisfy 0 <= start < end: {self}"
            )

    def active(self, ordinal: int) -> bool:
        return self.start <= ordinal < self.end

    def severs(self, src: str, dst: str, ordinal: int) -> bool:
        """Whether this partition cuts the ``src -> dst`` delivery."""
        if not self.active(ordinal):
            return False
        return (src in self.group) != (dst in self.group)

    def isolates(self, host: str, ordinal: int) -> bool:
        """Whether ``host`` sits on the cut-off side during the window.

        The named ``group`` is the minority side: monitors (CloudWatch,
        the facade's leader discovery) observe its members as
        unreachable, exactly as the majority side of a real partition
        would.
        """
        return self.active(ordinal) and host in self.group


class FaultPlan:
    """A seeded, deterministic message-level fault schedule.

    ``drop_probability`` applies to every non-loopback link; ``link_faults``
    add per-link drops and degradation; ``outages`` make hosts transiently
    unreachable; ``partitions`` split the network symmetrically in two;
    ``timeout_s`` bounds any single delivery's priced duration;
    ``crash_after`` maps a transfer ordinal to a host that crashes after
    that many successful transfers (the network invokes the crash callback
    installed alongside the plan).
    """

    def __init__(
        self,
        seed: int = 0,
        drop_probability: float = 0.0,
        link_faults: Sequence[LinkFault] = (),
        outages: Sequence[Outage] = (),
        timeout_s: Optional[float] = None,
        crash_after: Optional[Dict[int, str]] = None,
        partitions: Sequence[Partition] = (),
    ) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise SimulationError(
                f"drop probability must be in [0, 1]: {drop_probability}"
            )
        if timeout_s is not None and timeout_s <= 0:
            raise SimulationError(f"timeout must be positive: {timeout_s}")
        self.seed = seed
        self.drop_probability = drop_probability
        self.link_faults = tuple(link_faults)
        self.outages = tuple(outages)
        self.timeout_s = timeout_s
        self.crash_after = dict(crash_after or {})
        self.partitions = tuple(partitions)
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Queries (called by SimNetwork per delivery attempt)
    # ------------------------------------------------------------------
    def unavailable_host(self, src: str, dst: str, ordinal: int) -> Optional[str]:
        """The endpoint covered by an outage at ``ordinal``, if any."""
        for outage in self.outages:
            if outage.covers(src, ordinal):
                return src
            if outage.covers(dst, ordinal):
                return dst
        return None

    def is_unreachable(self, host: str, ordinal: int) -> bool:
        """Whether ``host`` is unreachable at ``ordinal``.

        True inside an outage window, and for hosts isolated on the named
        side of an active :class:`Partition` — monitors must see both the
        same way: down from where they stand.
        """
        return any(
            outage.covers(host, ordinal) for outage in self.outages
        ) or any(
            partition.isolates(host, ordinal)
            for partition in self.partitions
        )

    def severed(self, src: str, dst: str, ordinal: int) -> bool:
        """Whether an active partition cuts the ``src -> dst`` delivery."""
        return any(
            partition.severs(src, dst, ordinal)
            for partition in self.partitions
        )

    def should_drop(self, src: str, dst: str) -> bool:
        """Roll the (seeded) dice for one delivery on ``src -> dst``.

        Consumes one RNG draw per call, so for a fixed seed and transfer
        sequence the drop pattern is reproducible bit-for-bit.
        """
        probability = self.drop_probability
        for fault in self.link_faults:
            if fault.matches(src, dst):
                probability = max(probability, fault.drop_probability)
        if probability <= 0.0:
            return False
        return self._rng.random() < probability

    def degrade(self, src: str, dst: str, duration_s: float) -> float:
        """Apply slow-link degradation to a priced transfer duration."""
        for fault in self.link_faults:
            if fault.matches(src, dst):
                duration_s = (
                    duration_s / fault.bandwidth_factor + fault.extra_latency_s
                )
        return duration_s

    def crashes_due(self, completed_transfers: int) -> List[str]:
        """Hosts scheduled to crash once ``completed_transfers`` is reached."""
        return [
            host
            for ordinal, host in sorted(self.crash_after.items())
            if ordinal == completed_transfers
        ]

    def reset(self) -> None:
        """Rewind the seeded RNG (for replaying the same schedule)."""
        self._rng = random.Random(self.seed)


class FailureInjector:
    """Deterministic, seeded crash scheduler over a :class:`CloudProvider`."""

    def __init__(self, provider: CloudProvider, seed: int = 0) -> None:
        self._provider = provider
        self._rng = random.Random(seed)
        self.crashed: List[str] = []

    def crash(self, instance_id: str) -> None:
        """Crash one specific instance."""
        self._provider.crash_instance(instance_id)
        self.crashed.append(instance_id)

    def crash_random(self, candidates: Optional[List[str]] = None) -> Optional[str]:
        """Crash one running instance chosen uniformly from ``candidates``.

        If ``candidates`` is ``None``, any running instance may be chosen.
        Returns the crashed instance id, or ``None`` if nothing was running.
        """
        running = [
            instance.instance_id
            for instance in self._provider.list_instances(InstanceState.RUNNING)
        ]
        if candidates is not None:
            allowed = set(candidates)
            running = [instance_id for instance_id in running if instance_id in allowed]
        if not running:
            return None
        victim = self._rng.choice(sorted(running))
        self.crash(victim)
        return victim
