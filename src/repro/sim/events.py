"""A deterministic timestamped event queue for clock-driven components.

The serving front door (and any future discrete-event machinery) needs to
interleave "something becomes ready at time T" events with externally
driven arrivals.  :class:`EventQueue` is the minimal substrate for that:
a priority queue of ``(time, payload)`` pairs popped in nondecreasing time
order, with insertion order breaking ties so two runs of the same workload
replay the exact same event sequence — no hash-order or id() leaks.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from repro.errors import SimulationError


class EventQueue:
    """Timestamped events, popped in (time, insertion-order) order."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, when: float, payload: Any) -> None:
        """Schedule ``payload`` at time ``when`` (simulated seconds)."""
        if when < 0:
            raise SimulationError(f"event time cannot be negative: {when}")
        heapq.heappush(self._heap, (when, self._sequence, payload))
        self._sequence += 1

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)`` pair."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        when, _, payload = heapq.heappop(self._heap)
        return when, payload

    def pop_until(self, cutoff: float) -> List[Tuple[float, Any]]:
        """Drain every event with ``time <= cutoff``, in order."""
        drained: List[Tuple[float, Any]] = []
        while self._heap and self._heap[0][0] <= cutoff:
            drained.append(self.pop())
        return drained

    def run(self, until: Optional[float] = None) -> int:
        """Dispatch events in order until the queue empties.

        A callable payload is invoked as ``payload(when)`` and may push
        further events (the discrete-event loop); any other payload is
        dropped — draining data events without a consumer is a no-op, not
        an error, so mixed queues can still be wound down.  With
        ``until``, events strictly after it stay queued.  Returns the
        number of events dispatched.

        Handlers run under the DET003 contract: reachable code must not
        touch the wall clock, real I/O, or the global RNG — simulated
        time arrives as the ``when`` argument.
        """
        dispatched = 0
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                break
            when, payload = self.pop()
            if callable(payload):
                payload(when)
            dispatched += 1
        return dispatched
