"""Chaos-equivalence harness: prove faults change cost, never answers.

The robustness claim worth testing is not "queries succeed under faults"
but "queries return *exactly the same rows* under faults".  This module
runs the same workload twice — once fault-free, once under a seeded
:class:`~repro.sim.failure.FaultPlan` — on freshly built, identically
seeded deployments and compares row sets query by query.  Latency is
allowed (expected!) to differ; results are not.

The harness is deliberately decoupled from the core facade: it drives any
object with the ``BestPeerNetwork`` surface (``execute``,
``install_fault_plan``, ``metrics``, ``network``), supplied by a factory so
every run starts from the same deterministic initial state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ChaosEquivalenceError, MigrationCensusError
from repro.sim.failure import FaultPlan


def _sort_key(row: tuple) -> tuple:
    """Total order over heterogeneous rows (None-safe)."""
    return tuple((value is None, str(type(value)), value if value is not None else 0)
                 for value in row)


@dataclass
class QueryOutcome:
    """One query's answer under one run, rows canonically sorted."""

    sql: str
    columns: List[str]
    rows: List[tuple]
    latency_s: float
    strategy: str


@dataclass
class ChaosRun:
    """One workload pass plus the fault tolerance it consumed."""

    plan_seed: Optional[int]
    outcomes: List[QueryOutcome] = field(default_factory=list)
    retries: int = 0
    failovers: int = 0
    circuit_opens: int = 0
    dropped_messages: int = 0
    timeouts: int = 0
    transient_rejections: int = 0
    injected_crashes: int = 0
    partition_rejections: int = 0
    total_blocked_s: float = 0.0
    bytes_transferred: int = 0
    # Bootstrap HA observability (defaults when the driven network has no
    # ``bootstrap_cluster`` — the harness stays duck-typed).
    leader_id: Optional[str] = None
    leader_epoch: int = 0
    promotions: int = 0
    log_fingerprint: Tuple = ()
    admitted_peers: Tuple[str, ...] = ()
    leader_transitions: Tuple = ()

    @property
    def faults_seen(self) -> int:
        return (
            self.dropped_messages
            + self.timeouts
            + self.transient_rejections
            + self.injected_crashes
            + self.partition_rejections
        )

    def row_sets(self) -> List[List[tuple]]:
        return [outcome.rows for outcome in self.outcomes]

    def fingerprint(self) -> Tuple:
        """A hashable digest of answers *and* fault accounting.

        Two runs of the same plan on the same workload must produce equal
        fingerprints — this is the determinism contract a seeded FaultPlan
        offers.  Bootstrap leadership history (who led which epoch, what
        the authoritative log holds) is part of the digest: promotion and
        fencing must be as reproducible as the answers themselves.
        """
        return (
            tuple(
                (outcome.sql, tuple(outcome.columns), tuple(outcome.rows))
                for outcome in self.outcomes
            ),
            self.retries,
            self.failovers,
            self.dropped_messages,
            self.timeouts,
            self.transient_rejections,
            self.injected_crashes,
            self.partition_rejections,
            self.leader_id,
            self.leader_epoch,
            self.promotions,
            self.log_fingerprint,
            self.admitted_peers,
            self.leader_transitions,
        )


def _authoritative_entries(cluster) -> list:
    """The current leader's log — the only history that counts.

    A fenced ex-leader may hold an orphan entry it committed but never got
    acknowledged (its crash refused the ack); that entry legitimately
    exists in a log that will never be authoritative again, so membership
    invariants are checked against the leader's log only.  Serial
    uniqueness, by contrast, must hold across *every* node's log — a
    duplicate serial anywhere means fencing failed.
    """
    return list(cluster.leader.log.entries)


def verify_bootstrap_invariants(network) -> None:
    """Check the HA safety contract after a (possibly chaotic) run.

    Raises :class:`ChaosEquivalenceError` on the first violation:

    * the authoritative log is contiguous (1..n) with non-decreasing
      epochs,
    * exactly one leader per epoch (lease transitions carry strictly
      increasing, unique epochs),
    * no certificate serial is issued twice — in the authoritative log
      *and* across the union of every node's log,
    * no peer is admitted under two epochs in the authoritative log, and
    * the admitted-peer set never silently shrinks: the membership the
      authoritative log *implies* (admissions, fail-over rebinds,
      departures — recomputed here independently of the reducer) matches
      the leader's live state exactly.

    Record kinds are recognized by their stable ``describe()`` prefixes,
    so this layer needs no import of ``repro.core`` (the sim substrate
    stays below the core in the layering).  No-op for networks without a
    ``bootstrap_cluster``.
    """
    cluster = getattr(network, "bootstrap_cluster", None)
    if cluster is None:
        return
    entries = _authoritative_entries(cluster)
    previous_epoch = 0
    for position, entry in enumerate(entries, start=1):
        if entry.index != position:
            raise ChaosEquivalenceError(
                f"authoritative log has a gap: entry {position} carries "
                f"index {entry.index}"
            )
        if entry.epoch < previous_epoch:
            raise ChaosEquivalenceError(
                f"authoritative log epoch regressed at index {entry.index}: "
                f"{previous_epoch} -> {entry.epoch}"
            )
        previous_epoch = entry.epoch

    # Exactly one leader per epoch: each lease transition mints a fresh,
    # strictly larger epoch for exactly one holder.
    transitions = list(cluster.service.transitions)
    seen_epochs = set()
    last_epoch = 0
    for epoch, holder, _acquired_at in transitions:
        if epoch in seen_epochs:
            raise ChaosEquivalenceError(
                f"epoch {epoch} was acquired twice (second holder "
                f"{holder!r}): split-brain"
            )
        if epoch <= last_epoch:
            raise ChaosEquivalenceError(
                f"lease epochs must be strictly increasing: "
                f"{last_epoch} then {epoch}"
            )
        seen_epochs.add(epoch)
        last_epoch = epoch

    # Serial and single-admission invariants on the authoritative log,
    # plus the membership the log implies (recomputed independently of
    # the reducer — this is a cross-check, not a second replay).
    admissions: Dict[str, int] = {}
    serial_owner: Dict[int, str] = {}
    expected_members: Dict[str, str] = {}  # peer -> current instance
    departed = set()
    for entry in entries:
        record = entry.record
        kind = record.describe().split(":", 1)[0]
        if kind == "admit":
            if record.peer_id in admissions:
                raise ChaosEquivalenceError(
                    f"peer {record.peer_id!r} admitted under epochs "
                    f"{admissions[record.peer_id]} and {entry.epoch}"
                )
            admissions[record.peer_id] = entry.epoch
            serial = record.certificate.serial
            if serial in serial_owner:
                raise ChaosEquivalenceError(
                    f"serial {serial} issued to both "
                    f"{serial_owner[serial]!r} and {record.peer_id!r}"
                )
            serial_owner[serial] = record.peer_id
            expected_members[record.peer_id] = record.instance_id
        elif kind == "failover-done":
            expected_members[record.peer_id] = record.new_instance_id
        elif kind == "depart":
            departed.add(record.peer_id)
            expected_members.pop(record.peer_id, None)

    # Serial uniqueness across the union of every node's log: replicated
    # copies of the same admission agree byte-for-byte; two *different*
    # admissions sharing a serial mean epoch striding (fencing) failed.
    union_serials: Dict[int, str] = {}
    for node_id in sorted(cluster.nodes):
        for entry in cluster.nodes[node_id].log.entries:
            record = entry.record
            if not record.describe().startswith("admit:"):
                continue
            serial = record.certificate.serial
            seen = union_serials.get(serial)
            if seen is not None and seen != record.describe():
                raise ChaosEquivalenceError(
                    f"serial {serial} names two different admissions "
                    f"across node logs: {seen!r} vs {record.describe()!r}"
                )
            union_serials[serial] = record.describe()

    # The admitted set never silently shrinks: the log-implied membership
    # matches the leader's live state, and every admission is still a
    # member unless an explicit departure record exists.
    live_peers = cluster.leader.state.peers
    if sorted(expected_members) != sorted(live_peers):
        raise ChaosEquivalenceError(
            f"the authoritative log implies members "
            f"{sorted(expected_members)} but the leader holds "
            f"{sorted(live_peers)}"
        )
    for peer_id in sorted(expected_members):
        if expected_members[peer_id] != live_peers[peer_id].instance_id:
            raise ChaosEquivalenceError(
                f"peer {peer_id!r} diverged from the log: instance "
                f"{expected_members[peer_id]!r} implied vs "
                f"{live_peers[peer_id].instance_id!r} live"
            )
    for peer_id in sorted(admissions):
        if peer_id not in live_peers and peer_id not in departed:
            raise ChaosEquivalenceError(
                f"peer {peer_id!r} was admitted but vanished without a "
                f"departure record"
            )


@dataclass
class OverlayChaosReport:
    """What one scripted overlay scenario did, and what it proved.

    ``search_hops``, ``search_served`` and ``search_queue_depths`` hold,
    for every search in script order, its routing-hop count, the node
    that served it, and how many earlier searches that node had served
    since the last rebalance — a queue-depth proxy for the latency a
    request sees behind a hot node's backlog (the bench layer turns
    ``hops + depth`` into p50/p99).  ``ratio_samples`` holds the max/mean
    load ratio observed after each rebalance.
    """

    operations: int = 0
    inserts: int = 0
    deletes: int = 0
    searches: int = 0
    joins: int = 0
    leaves: int = 0
    crashes: int = 0
    restores: int = 0
    rebalances: int = 0
    migrations: int = 0
    entries_moved: int = 0
    census_checks: int = 0
    fanout_reads: int = 0
    failover_reads: int = 0
    search_hops: List[int] = field(default_factory=list)
    search_served: List[str] = field(default_factory=list)
    search_queue_depths: List[int] = field(default_factory=list)
    ratio_samples: List[float] = field(default_factory=list)

    def search_latencies(self) -> List[float]:
        """Per-search latency proxy: routing hops + serving-node backlog."""
        return [
            float(hops + depth)
            for hops, depth in zip(self.search_hops, self.search_queue_depths)
        ]

    @property
    def peak_ratio(self) -> float:
        return max(self.ratio_samples) if self.ratio_samples else 1.0

    @property
    def final_ratio(self) -> float:
        return self.ratio_samples[-1] if self.ratio_samples else 1.0


class OverlayChaosHarness:
    """Drives skew / flash-crowd / churn scripts against an overlay.

    Like :class:`ChaosHarness`, this is duck-typed so the sim layer never
    imports ``repro.baton``: ``overlay_factory`` builds any object with
    the replicated-overlay surface (``insert``/``delete``/``search``/
    ``join``/``leave``/``mark_offline``/``mark_online``/``census``/
    ``check_invariants``), and the optional ``balancer_factory`` wraps it
    with a ``rebalance()`` driver (``repro.baton.loadbalance.LoadBalancer``
    in practice).

    The harness maintains its *own* expected key-space census — counts
    updated only by the inserts and deletes it issues — and after every
    ``check_every`` operations asserts the overlay's census matches it
    exactly.  Join, leave, crash and migration therefore cannot lose or
    duplicate an index entry without the scenario failing, which is the
    invariant every chaos scenario is gated on.
    """

    #: Script opcodes the interpreter understands.
    OPS = (
        "insert", "delete", "search", "join", "leave",
        "crash", "restore", "rebalance",
    )

    def __init__(
        self,
        overlay_factory: Callable[[], object],
        balancer_factory: Optional[Callable[[object], object]] = None,
        check_every: int = 1,
    ) -> None:
        if check_every < 1:
            raise ChaosEquivalenceError(
                f"check_every must be positive: {check_every}"
            )
        self.overlay_factory = overlay_factory
        self.balancer_factory = balancer_factory
        self.check_every = check_every

    def run(self, script: Sequence[tuple]) -> OverlayChaosReport:
        """Interpret one script on a fresh overlay; census-gate throughout.

        Script steps are tuples: ``("insert", key, value)``,
        ``("delete", key, value)``, ``("search", key[, start_id])``,
        ``("join", node_id)``, ``("leave", node_id)``,
        ``("crash", node_id)``, ``("restore", node_id)`` and
        ``("rebalance",)``.  Raises
        :class:`~repro.errors.MigrationCensusError` when the overlay's
        stored entries diverge from the harness's independent census.
        """
        if not script:
            raise ChaosEquivalenceError("an overlay scenario needs steps")
        overlay = self.overlay_factory()
        balancer = (
            self.balancer_factory(overlay)
            if self.balancer_factory is not None
            else None
        )
        report = OverlayChaosReport()
        expected: Dict[float, int] = {}
        serve_counts: Dict[str, int] = {}
        for step in script:
            op = step[0]
            if op == "insert":
                _, key, value = step
                overlay.insert(key, value)
                expected[key] = expected.get(key, 0) + 1
                report.inserts += 1
            elif op == "delete":
                _, key, value = step
                overlay.delete(key, value)
                remaining = expected.get(key, 0) - 1
                if remaining > 0:
                    expected[key] = remaining
                else:
                    expected.pop(key, None)
                report.deletes += 1
            elif op == "search":
                result = (
                    overlay.search(step[1], start_id=step[2])
                    if len(step) > 2
                    else overlay.search(step[1])
                )
                report.searches += 1
                report.search_hops.append(result.hops)
                served = result.node_ids[0] if result.node_ids else ""
                depth = serve_counts.get(served, 0)
                report.search_served.append(served)
                report.search_queue_depths.append(depth)
                serve_counts[served] = depth + 1
            elif op == "join":
                overlay.join(step[1])
                report.joins += 1
            elif op == "leave":
                overlay.leave(step[1])
                report.leaves += 1
            elif op == "crash":
                overlay.mark_offline(step[1])
                report.crashes += 1
            elif op == "restore":
                overlay.mark_online(step[1])
                report.restores += 1
            elif op == "rebalance":
                if balancer is None:
                    raise ChaosEquivalenceError(
                        "script rebalances but no balancer_factory was given"
                    )
                round_report = balancer.rebalance()
                report.rebalances += 1
                report.migrations += round_report.migrations
                report.entries_moved += round_report.entries_moved
                report.ratio_samples.append(round_report.ratio_after)
                # The balancer decayed every node's load window; the
                # serving backlog drains with it.
                serve_counts.clear()
            else:
                raise ChaosEquivalenceError(f"unknown overlay op: {op!r}")
            report.operations += 1
            if report.operations % self.check_every == 0:
                self._verify_census(overlay, expected)
                report.census_checks += 1
        self._verify_census(overlay, expected)
        report.census_checks += 1
        report.fanout_reads = getattr(overlay, "fanout_reads", 0)
        report.failover_reads = getattr(overlay, "failover_reads", 0)
        return report

    @staticmethod
    def _verify_census(overlay, expected: Dict[float, int]) -> None:
        """The overlay must hold exactly what the script put into it."""
        actual = overlay.census()
        if actual != expected:
            lost = sorted(
                key for key in expected
                if actual.get(key, 0) < expected[key]
            )
            gained = sorted(
                key for key in actual
                if actual[key] > expected.get(key, 0)
            )
            raise MigrationCensusError(
                f"overlay census diverged from the script's: "
                f"{len(lost)} key(s) lost entries {lost[:5]}, "
                f"{len(gained)} key(s) gained entries {gained[:5]}"
            )
        overlay.check_invariants(expected_census=expected)


class ChaosHarness:
    """Runs a fixed workload under different fault plans and compares."""

    def __init__(
        self,
        network_factory: Callable[[], object],
        queries: Sequence[str],
        engine: str = "basic",
        peer_id: Optional[str] = None,
        user: Optional[str] = None,
    ) -> None:
        if not queries:
            raise ChaosEquivalenceError("a chaos workload needs queries")
        self.network_factory = network_factory
        self.queries = list(queries)
        self.engine = engine
        self.peer_id = peer_id
        self.user = user

    def run(self, plan: Optional[FaultPlan] = None) -> ChaosRun:
        """One pass of the workload on a fresh deployment."""
        network = self.network_factory()
        if plan is not None:
            network.install_fault_plan(plan)
        run = ChaosRun(plan_seed=None if plan is None else plan.seed)
        for sql in self.queries:
            execution = network.execute(
                sql, peer_id=self.peer_id, engine=self.engine, user=self.user
            )
            run.outcomes.append(
                QueryOutcome(
                    sql=sql,
                    columns=list(execution.columns),
                    rows=sorted(execution.records, key=_sort_key),
                    latency_s=execution.latency_s,
                    strategy=execution.strategy,
                )
            )
            run.bytes_transferred += execution.bytes_transferred
        faults = network.metrics.faults
        stats = network.network.fault_stats
        run.retries = faults.retries
        run.failovers = faults.failovers
        run.circuit_opens = faults.circuit_opens
        run.dropped_messages = stats.dropped_messages
        run.timeouts = stats.timeouts
        run.transient_rejections = stats.transient_rejections
        run.injected_crashes = stats.injected_crashes
        run.partition_rejections = stats.partition_rejections
        run.total_blocked_s = network.total_blocked_s
        cluster = getattr(network, "bootstrap_cluster", None)
        if cluster is not None:
            run.leader_id = cluster.leader_id
            run.leader_epoch = cluster.epoch
            run.promotions = cluster.promotions
            run.log_fingerprint = cluster.leader.log.fingerprint()
            run.admitted_peers = tuple(cluster.leader.peer_list())
            run.leader_transitions = tuple(cluster.service.transitions)
            verify_bootstrap_invariants(network)
        return run

    def verify_equivalence(
        self, plans: Dict[str, FaultPlan]
    ) -> Dict[str, ChaosRun]:
        """Run fault-free once, then every plan; answers must match.

        Returns ``{"baseline": ..., <plan name>: ...}`` for inspection.
        Raises :class:`ChaosEquivalenceError` on the first divergent row
        set, naming the plan and query.
        """
        baseline = self.run(None)
        runs: Dict[str, ChaosRun] = {"baseline": baseline}
        for name, plan in plans.items():
            chaotic = self.run(plan)
            runs[name] = chaotic
            for base, chaos in zip(baseline.outcomes, chaotic.outcomes):
                if base.columns != chaos.columns or base.rows != chaos.rows:
                    raise ChaosEquivalenceError(
                        f"plan {name!r} changed the answer of {base.sql!r}: "
                        f"{len(base.rows)} baseline rows vs "
                        f"{len(chaos.rows)} under chaos"
                    )
        return runs
