"""Chaos-equivalence harness: prove faults change cost, never answers.

The robustness claim worth testing is not "queries succeed under faults"
but "queries return *exactly the same rows* under faults".  This module
runs the same workload twice — once fault-free, once under a seeded
:class:`~repro.sim.failure.FaultPlan` — on freshly built, identically
seeded deployments and compares row sets query by query.  Latency is
allowed (expected!) to differ; results are not.

The harness is deliberately decoupled from the core facade: it drives any
object with the ``BestPeerNetwork`` surface (``execute``,
``install_fault_plan``, ``metrics``, ``network``), supplied by a factory so
every run starts from the same deterministic initial state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ChaosEquivalenceError
from repro.sim.failure import FaultPlan


def _sort_key(row: tuple) -> tuple:
    """Total order over heterogeneous rows (None-safe)."""
    return tuple((value is None, str(type(value)), value if value is not None else 0)
                 for value in row)


@dataclass
class QueryOutcome:
    """One query's answer under one run, rows canonically sorted."""

    sql: str
    columns: List[str]
    rows: List[tuple]
    latency_s: float
    strategy: str


@dataclass
class ChaosRun:
    """One workload pass plus the fault tolerance it consumed."""

    plan_seed: Optional[int]
    outcomes: List[QueryOutcome] = field(default_factory=list)
    retries: int = 0
    failovers: int = 0
    circuit_opens: int = 0
    dropped_messages: int = 0
    timeouts: int = 0
    transient_rejections: int = 0
    injected_crashes: int = 0
    total_blocked_s: float = 0.0
    bytes_transferred: int = 0

    @property
    def faults_seen(self) -> int:
        return (
            self.dropped_messages
            + self.timeouts
            + self.transient_rejections
            + self.injected_crashes
        )

    def row_sets(self) -> List[List[tuple]]:
        return [outcome.rows for outcome in self.outcomes]

    def fingerprint(self) -> Tuple:
        """A hashable digest of answers *and* fault accounting.

        Two runs of the same plan on the same workload must produce equal
        fingerprints — this is the determinism contract a seeded FaultPlan
        offers.
        """
        return (
            tuple(
                (outcome.sql, tuple(outcome.columns), tuple(outcome.rows))
                for outcome in self.outcomes
            ),
            self.retries,
            self.failovers,
            self.dropped_messages,
            self.timeouts,
            self.transient_rejections,
            self.injected_crashes,
        )


class ChaosHarness:
    """Runs a fixed workload under different fault plans and compares."""

    def __init__(
        self,
        network_factory: Callable[[], object],
        queries: Sequence[str],
        engine: str = "basic",
        peer_id: Optional[str] = None,
        user: Optional[str] = None,
    ) -> None:
        if not queries:
            raise ChaosEquivalenceError("a chaos workload needs queries")
        self.network_factory = network_factory
        self.queries = list(queries)
        self.engine = engine
        self.peer_id = peer_id
        self.user = user

    def run(self, plan: Optional[FaultPlan] = None) -> ChaosRun:
        """One pass of the workload on a fresh deployment."""
        network = self.network_factory()
        if plan is not None:
            network.install_fault_plan(plan)
        run = ChaosRun(plan_seed=None if plan is None else plan.seed)
        for sql in self.queries:
            execution = network.execute(
                sql, peer_id=self.peer_id, engine=self.engine, user=self.user
            )
            run.outcomes.append(
                QueryOutcome(
                    sql=sql,
                    columns=list(execution.columns),
                    rows=sorted(execution.records, key=_sort_key),
                    latency_s=execution.latency_s,
                    strategy=execution.strategy,
                )
            )
            run.bytes_transferred += execution.bytes_transferred
        faults = network.metrics.faults
        stats = network.network.fault_stats
        run.retries = faults.retries
        run.failovers = faults.failovers
        run.circuit_opens = faults.circuit_opens
        run.dropped_messages = stats.dropped_messages
        run.timeouts = stats.timeouts
        run.transient_rejections = stats.transient_rejections
        run.injected_crashes = stats.injected_crashes
        run.total_blocked_s = network.total_blocked_s
        return run

    def verify_equivalence(
        self, plans: Dict[str, FaultPlan]
    ) -> Dict[str, ChaosRun]:
        """Run fault-free once, then every plan; answers must match.

        Returns ``{"baseline": ..., <plan name>: ...}`` for inspection.
        Raises :class:`ChaosEquivalenceError` on the first divergent row
        set, naming the plan and query.
        """
        baseline = self.run(None)
        runs: Dict[str, ChaosRun] = {"baseline": baseline}
        for name, plan in plans.items():
            chaotic = self.run(plan)
            runs[name] = chaotic
            for base, chaos in zip(baseline.outcomes, chaotic.outcomes):
                if base.columns != chaos.columns or base.rows != chaos.rows:
                    raise ChaosEquivalenceError(
                        f"plan {name!r} changed the answer of {base.sql!r}: "
                        f"{len(base.rows)} baseline rows vs "
                        f"{len(chaos.rows)} under chaos"
                    )
        return runs
