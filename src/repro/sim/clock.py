"""Simulated time.

The whole platform runs in one Python process, so "how long did this query
take" cannot be measured with a wall clock.  Instead every operation reports
its *duration* in simulated seconds and the engines compose durations:

* steps that happen one after another on the same node add up
  (:func:`serial_duration`),
* steps that happen concurrently on different nodes cost the maximum
  (:func:`parallel_duration`).

A :class:`SimClock` accumulates global simulated time for throughput
experiments (Figs. 12-14 of the paper) where many queries share the cluster.
"""

from __future__ import annotations

from repro.errors import SimulationError


def serial_duration(*durations: float) -> float:
    """Total duration of steps executed back-to-back on one node."""
    total = 0.0
    for duration in durations:
        if duration < 0:
            raise SimulationError(f"negative duration: {duration}")
        total += duration
    return total


def parallel_duration(*durations: float) -> float:
    """Total duration of steps executed concurrently on different nodes.

    The slowest participant determines when the step completes.  An empty
    argument list is allowed and costs nothing (a fan-out to zero peers).
    """
    longest = 0.0
    for duration in durations:
        if duration < 0:
            raise SimulationError(f"negative duration: {duration}")
        if duration > longest:
            longest = duration
    return longest


class SimClock:
    """A monotonically advancing simulated clock.

    The clock is deliberately tiny: the only invariant it protects is that
    simulated time never moves backwards.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start before zero: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise SimulationError(f"cannot advance clock by {seconds}s")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``.

        Advancing to a time in the past is an error; advancing to the present
        is a no-op (this makes event-loop code simpler).
        """
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
