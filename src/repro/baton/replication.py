"""Two-tier partial replication over the BATON overlay.

"BestPeer++ employs replication of index data in the BATON structure to
ensure the correct retrieval of index data in the presence of failures.
Specifically, we use the two-tier partial replication strategy" (Section
4.3, citing [24]).

The wrapper keeps, for every item stored at its responsible (primary) node,
copies on the ``replica_factor`` nearest in-order neighbours (the secondary
tier).  When the primary is offline the lookup is served from a replica;
when a node permanently departs, re-replication restores the redundancy
level.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import BatonError, ReplicaUnavailableError
from repro.baton.node import BatonNode
from repro.baton.tree import BatonOverlay, SearchResult


class ReplicatedOverlay:
    """A BATON overlay with neighbour replication and fail-over reads."""

    def __init__(self, overlay: BatonOverlay, replica_factor: int = 2) -> None:
        if replica_factor < 1:
            raise BatonError(f"replica factor must be >= 1: {replica_factor}")
        self.overlay = overlay
        self.replica_factor = replica_factor
        # replica copies: holder node id -> {key -> list of values}
        self._replicas: Dict[str, Dict[float, List[object]]] = {}

    # ------------------------------------------------------------------
    # Membership passthrough
    # ------------------------------------------------------------------
    def join(self, node_id: str) -> BatonNode:
        node = self.overlay.join(node_id)
        self._replicas.setdefault(node_id, {})
        self.rebuild_replicas()
        return node

    def leave(self, node_id: str) -> None:
        self.overlay.leave(node_id)
        self._replicas.pop(node_id, None)
        self.rebuild_replicas()

    def __len__(self) -> int:
        return len(self.overlay)

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------
    def mark_offline(self, node_id: str) -> None:
        self.overlay.node(node_id).online = False

    def mark_online(self, node_id: str) -> None:
        self.overlay.node(node_id).online = True

    # ------------------------------------------------------------------
    # Item operations with replication
    # ------------------------------------------------------------------
    def insert(self, key: float, value: object) -> int:
        node, hops = self.overlay.find_responsible(key)
        node.add_item(key, value)
        for holder in self._replica_holders(node):
            self._replicas.setdefault(holder.node_id, {}).setdefault(
                key, []
            ).append(value)
            hops += 1  # one message per replica copy
        return hops

    def delete(self, key: float, value: object) -> Tuple[bool, int]:
        node, hops = self.overlay.find_responsible(key)
        removed = node.remove_item(key, value)
        for holder in self._replica_holders(node):
            copies = self._replicas.get(holder.node_id, {}).get(key)
            if copies and value in copies:
                copies.remove(value)
                if not copies:
                    del self._replicas[holder.node_id][key]
            hops += 1
        return removed, hops

    def search(self, key: float) -> SearchResult:
        """Exact lookup, served from a replica when the primary is offline."""
        node, hops = self.overlay.find_responsible(key)
        if node.online:
            return SearchResult(
                values=list(node.items.get(key, [])),
                hops=hops,
                node_ids=[node.node_id],
            )
        for holder in self._replica_holders(node):
            if holder.online:
                values = list(self._replicas.get(holder.node_id, {}).get(key, []))
                return SearchResult(
                    values=values, hops=hops + 1, node_ids=[holder.node_id]
                )
        raise ReplicaUnavailableError(
            f"no online replica for key {key} (primary {node.node_id!r} down)"
        )

    # ------------------------------------------------------------------
    # Re-replication
    # ------------------------------------------------------------------
    def rebuild_replicas(self) -> None:
        """Recompute every replica set (run after membership changes)."""
        self._replicas = {node_id: {} for node_id in self._node_ids()}
        for node in self.overlay.nodes():
            for holder in self._replica_holders(node):
                store = self._replicas.setdefault(holder.node_id, {})
                for key, values in node.items.items():
                    store.setdefault(key, []).extend(values)

    def replica_count(self, node_id: str) -> int:
        """Number of replica values held *for other nodes* at ``node_id``."""
        return sum(
            len(values) for values in self._replicas.get(node_id, {}).values()
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _node_ids(self) -> List[str]:
        return [node.node_id for node in self.overlay.nodes()]

    def _replica_holders(self, node: BatonNode) -> List[BatonNode]:
        """The in-order neighbours that hold copies of ``node``'s items."""
        nodes = self.overlay.nodes()
        if len(nodes) <= 1:
            return []
        index = next(
            position
            for position, candidate in enumerate(nodes)
            if candidate is node
        )
        holders: List[BatonNode] = []
        offset = 1
        while len(holders) < self.replica_factor and offset < len(nodes):
            right = index + offset
            left = index - offset
            if right < len(nodes):
                holders.append(nodes[right])
            if len(holders) < self.replica_factor and left >= 0:
                holders.append(nodes[left])
            offset += 1
        return holders[: self.replica_factor]
