"""Two-tier partial replication over the BATON overlay.

"BestPeer++ employs replication of index data in the BATON structure to
ensure the correct retrieval of index data in the presence of failures.
Specifically, we use the two-tier partial replication strategy" (Section
4.3, citing [24]).

The wrapper keeps, for every item stored at its responsible (primary) node,
copies on the ``replica_factor`` nearest in-order neighbours (the secondary
tier).  When the primary is offline the lookup is served from a replica;
when a node permanently departs, re-replication restores the redundancy
level.

Replicas also carry read traffic when the primary is *hot*, not just when
it is dead: pass a read policy (``read_policy=`` or per call) and exact
and range lookups fan out across the primary plus its online replica
holders, chosen by the policy (random / least-loaded / power-of-k, see
:mod:`repro.baton.loadbalance`).  This is the mitigation for a flash crowd
on a single key, which no amount of sub-domain migration can split.

Replica maintenance on membership changes is *incremental*: a join or leave
only touches the in-order neighbourhood whose holder assignment (or item
range) actually changed, not the whole network.  :meth:`rebuild_replicas`
remains as the full-refresh fallback.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import BatonError, ReplicaUnavailableError
from repro.baton.node import BatonNode
from repro.baton.tree import BatonOverlay, SearchResult


class ReplicatedOverlay:
    """A BATON overlay with neighbour replication and fail-over reads.

    ``read_policy`` is any object with a ``choose(candidates)`` method
    (see :class:`repro.baton.loadbalance.ReplicaChoicePolicy`); when set,
    reads fan out across the primary and its online replica holders
    instead of always hammering the primary.
    """

    def __init__(
        self,
        overlay: BatonOverlay,
        replica_factor: int = 2,
        read_policy=None,
    ) -> None:
        if replica_factor < 1:
            raise BatonError(f"replica factor must be >= 1: {replica_factor}")
        self.overlay = overlay
        self.replica_factor = replica_factor
        self.read_policy = read_policy
        # Reads served by a replica holder while the primary was online
        # (fan-out working), vs served because the primary was offline.
        self.fanout_reads = 0
        self.failover_reads = 0
        # replica copies: holder id -> {primary id -> {key -> values}}.
        # Keying by primary is what makes incremental repair possible: one
        # primary's contribution can be dropped without touching the copies
        # the holder keeps for anyone else.
        self._store: Dict[str, Dict[str, Dict[float, List[object]]]] = {}
        # The holder assignment the store currently reflects.
        self._assignment: Dict[str, List[str]] = {}
        # Each primary's responsibility range at the last repair.  Items
        # only move between nodes when ranges move (splits on join, merges
        # and substitutions on leave), so a range diff finds exactly the
        # primaries whose replicas are stale.
        self._ranges: Dict[str, object] = {}
        # Primaries re-copied by the last membership change (observability:
        # incremental repair should keep this far below the network size).
        self.last_repair_count = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, node_id: str) -> BatonNode:
        node = self.overlay.join(node_id)
        self._store.setdefault(node_id, {})
        self._repair_membership()
        return node

    def leave(self, node_id: str) -> None:
        self.overlay.leave(node_id)
        # Whatever the departed node held for others is gone with it; its
        # primaries lost a holder, which the assignment diff repairs below.
        self._store.pop(node_id, None)
        self._repair_membership()

    def __len__(self) -> int:
        return len(self.overlay)

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------
    def mark_offline(self, node_id: str) -> None:
        self.overlay.node(node_id).online = False

    def mark_online(self, node_id: str) -> None:
        self.overlay.node(node_id).online = True

    # ------------------------------------------------------------------
    # Item operations with replication
    # ------------------------------------------------------------------
    def insert(self, key: float, value: object) -> int:
        node, hops = self.overlay.find_responsible(key)
        node.add_item(key, value)
        node.load.record_write()
        node.touch_key(key)
        for holder_id in self._assignment.get(node.node_id, []):
            self._store.setdefault(holder_id, {}).setdefault(
                node.node_id, {}
            ).setdefault(key, []).append(value)
            self.overlay.node(holder_id).load.record_write()
            hops += 1  # one message per replica copy
        return hops

    def delete(self, key: float, value: object) -> Tuple[bool, int]:
        node, hops = self.overlay.find_responsible(key)
        removed = node.remove_item(key, value)
        node.load.record_write()
        for holder_id in self._assignment.get(node.node_id, []):
            copies = (
                self._store.get(holder_id, {})
                .get(node.node_id, {})
                .get(key)
            )
            if copies and value in copies:
                copies.remove(value)
                if not copies:
                    del self._store[holder_id][node.node_id][key]
            hops += 1
        return removed, hops

    def search(
        self,
        key: float,
        policy=None,
        start_id: Optional[str] = None,
    ) -> SearchResult:
        """Exact lookup, fanned out across replicas when a policy says so.

        Without a policy (constructor or per-call) the primary serves
        every read it is online for, and a replica only steps in on
        fail-over — the original behaviour.  With a policy, the serving
        node is chosen among the online primary + replica holders, so a
        flash crowd on one key spreads over ``replica_factor + 1`` nodes.
        """
        policy = policy if policy is not None else self.read_policy
        node, hops = self.overlay.find_responsible(key, start_id)
        # Heat accrues at the primary regardless of who serves: migration
        # decisions are about key popularity, not about which copy
        # happened to answer.
        node.touch_key(key)
        chosen = self._choose_server(node, policy)
        if chosen is node:
            node.load.record_read()
            return SearchResult(
                values=list(node.items.get(key, [])),
                hops=hops,
                node_ids=[node.node_id],
            )
        values = list(
            self._store.get(chosen.node_id, {})
            .get(node.node_id, {})
            .get(key, [])
        )
        chosen.load.record_read()
        if node.online:
            self.fanout_reads += 1
        else:
            self.failover_reads += 1
        return SearchResult(
            values=values, hops=hops + 1, node_ids=[chosen.node_id]
        )

    def range_search(
        self,
        low: float,
        high: float,
        policy=None,
        start_id: Optional[str] = None,
    ) -> SearchResult:
        """Range scan with per-segment replica fan-out.

        Routes to the owner of ``low`` and walks right-adjacent links
        (BATON's range strategy), but each segment is *served* by the
        node the policy picks among the segment's primary and its online
        replica holders — so a hot range's read load spreads across the
        whole replica neighbourhood instead of serializing on the
        primaries.
        """
        policy = policy if policy is not None else self.read_policy
        if low >= high:
            return SearchResult(values=[], hops=0)
        domain = self.overlay.domain
        low = max(low, domain.low)
        if low >= domain.high:
            return SearchResult(values=[], hops=0)
        node, hops = self.overlay.find_responsible(low, start_id)
        values: List[Tuple[float, object]] = []
        node_ids: List[str] = []
        while node is not None and node.r0.low < high:
            chosen = self._choose_server(node, policy)
            if chosen is node:
                matched = node.items_in_range(low, high)
            else:
                copies = self._store.get(chosen.node_id, {}).get(
                    node.node_id, {}
                )
                matched = [
                    (key, value)
                    for key in sorted(copies)
                    if low <= key < high
                    for value in copies[key]
                ]
                hops += 1  # redirect from the primary to the holder
                if node.online:
                    self.fanout_reads += 1
                else:
                    self.failover_reads += 1
            chosen.load.record_read()
            for key in sorted({key for key, _ in matched}):
                node.touch_key(key)
            values.extend(matched)
            node_ids.append(chosen.node_id)
            node = node.adjacent_right
            if node is not None:
                hops += 1
        return SearchResult(values=values, hops=hops, node_ids=node_ids)

    def _choose_server(self, primary: BatonNode, policy) -> BatonNode:
        """The node that serves a read against ``primary``'s range."""
        candidates: List[BatonNode] = [primary] if primary.online else []
        for holder_id in self._assignment.get(primary.node_id, []):
            holder = self.overlay.node(holder_id)
            if holder.online:
                candidates.append(holder)
        if not candidates:
            raise ReplicaUnavailableError(
                f"no online copy of {primary.node_id!r}'s range "
                "(primary and every replica holder down)"
            )
        if policy is None or len(candidates) == 1:
            # No policy: primary when online, first online holder else —
            # the original fail-over-only behaviour.
            return candidates[0]
        return policy.choose(candidates)

    # ------------------------------------------------------------------
    # Re-replication
    # ------------------------------------------------------------------
    def rebuild_replicas(self) -> None:
        """Recompute every replica set from scratch (full refresh)."""
        assignment = self._current_assignment()
        self._store = {node_id: {} for node_id in assignment}
        for primary_id, holder_ids in assignment.items():
            self._copy_primary(primary_id, holder_ids)
        self._assignment = assignment
        self._ranges = self._current_ranges()
        self.last_repair_count = len(assignment)

    def repair(self) -> int:
        """Re-copy replicas after primaries' ranges moved (migration).

        Load-balancing migrations shift sub-domain boundaries exactly
        like joins and leaves do, so the same incremental range-diff
        repair applies.  Returns the number of primaries re-copied.
        """
        self._repair_membership()
        return self.last_repair_count

    # ------------------------------------------------------------------
    # Invariants (delegated to the underlying overlay)
    # ------------------------------------------------------------------
    def census(self) -> Dict[float, int]:
        """Key-space census over the *primary* copies."""
        return self.overlay.census()

    def check_invariants(
        self, expected_census: Optional[Dict[float, int]] = None
    ) -> None:
        self.overlay.check_invariants(expected_census=expected_census)

    def replica_count(self, node_id: str) -> int:
        """Number of replica values held *for other nodes* at ``node_id``."""
        return sum(
            len(values)
            for primary_store in self._store.get(node_id, {}).values()
            for values in primary_store.values()
        )

    # ------------------------------------------------------------------
    # Incremental repair
    # ------------------------------------------------------------------
    def _repair_membership(self) -> None:
        """Repair replicas after one join/leave.

        Two classes of primaries need re-copying: those whose *holder
        assignment* changed (a new or vanished in-order neighbour), and
        those whose *items* moved — a join splits the parent's range, a
        leave merges a leaf's range into a neighbour or substitutes a
        relocated leaf into the vacant position.  Items only ever move
        because responsibility ranges move, so diffing each node's range
        against the last repair finds exactly the stale primaries.  Both
        diffs are O(n) id/range comparisons; item copying happens only for
        the dirty neighbourhood.
        """
        assignment = self._current_assignment()
        ranges = self._current_ranges()
        dirty: Set[str] = {
            primary_id
            for primary_id, holder_ids in assignment.items()
            if self._assignment.get(primary_id) != holder_ids
            or self._ranges.get(primary_id) != ranges[primary_id]
        }
        # Departed primaries: purge their copies from surviving holders.
        dirty.update(
            primary_id
            for primary_id in self._assignment
            if primary_id not in assignment
        )

        for primary_id in sorted(dirty):
            for holder_id in self._assignment.get(primary_id, []):
                holder_store = self._store.get(holder_id)
                if holder_store is not None:
                    holder_store.pop(primary_id, None)
            holder_ids = assignment.get(primary_id)
            if holder_ids is None:
                self._assignment.pop(primary_id, None)
                self._ranges.pop(primary_id, None)
                continue
            self._copy_primary(primary_id, holder_ids)
            self._assignment[primary_id] = list(holder_ids)
            self._ranges[primary_id] = ranges[primary_id]
        self.last_repair_count = len(dirty)

    def _copy_primary(self, primary_id: str, holder_ids: List[str]) -> None:
        node = self.overlay.node(primary_id)
        for holder_id in holder_ids:
            self._store.setdefault(holder_id, {})[primary_id] = {
                key: list(values) for key, values in node.items.items()
            }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _node_ids(self) -> List[str]:
        return [node.node_id for node in self.overlay.nodes()]

    def _current_ranges(self) -> Dict[str, object]:
        return {node.node_id: node.r0 for node in self.overlay.nodes()}

    def _current_assignment(self) -> Dict[str, List[str]]:
        nodes = self.overlay.nodes()
        return {
            node.node_id: [
                holder.node_id for holder in self._holders_at(nodes, index)
            ]
            for index, node in enumerate(nodes)
        }

    def _replica_holders(self, node: BatonNode) -> List[BatonNode]:
        """The in-order neighbours that hold copies of ``node``'s items."""
        nodes = self.overlay.nodes()
        index = next(
            position
            for position, candidate in enumerate(nodes)
            if candidate is node
        )
        return self._holders_at(nodes, index)

    def _holders_at(
        self, nodes: List[BatonNode], index: int
    ) -> List[BatonNode]:
        if len(nodes) <= 1:
            return []
        holders: List[BatonNode] = []
        offset = 1
        while len(holders) < self.replica_factor and offset < len(nodes):
            right = index + offset
            left = index - offset
            if right < len(nodes):
                holders.append(nodes[right])
            if len(holders) < self.replica_factor and left >= 0:
                holders.append(nodes[left])
            offset += 1
        return holders[: self.replica_factor]
