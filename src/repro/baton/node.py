"""BATON tree nodes.

Each node owns two ranges (Fig. 3 of the BestPeer++ paper):

* ``R0`` — the sub-domain the node itself is responsible for, and
* ``R1`` — the domain of the whole subtree rooted at the node.

Nodes also carry the BATON link structure: parent, left/right child,
left/right adjacent node (in-order predecessor/successor) and left/right
routing tables holding the same-level neighbours at distances 1, 2, 4, ...
(``log2 N`` entries per side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import BatonRangeError


@dataclass(frozen=True)
class Range:
    """A half-open interval ``[low, high)``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise BatonRangeError(f"inverted range: [{self.low}, {self.high})")

    def contains(self, key: float) -> bool:
        return self.low <= key < self.high

    def overlaps(self, other: "Range") -> bool:
        return self.low < other.high and other.low < self.high

    def covers(self, other: "Range") -> bool:
        return self.low <= other.low and other.high <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        return (self.low + self.high) / 2.0

    def __str__(self) -> str:
        return f"[{self.low:.6g}, {self.high:.6g})"


@dataclass
class NodeLoad:
    """Per-node load accounting: what the node actually *did*.

    Cumulative counters track lifetime totals; the ``*_window`` fields
    accumulate since the last :meth:`decay` call, which folds them into
    decayed EWMAs.  The balancer reads :meth:`score` — a single hotness
    figure — so "load" means measured traffic, not stored-entry counts.
    """

    routing_hits: int = 0  # times this node forwarded or received a route
    reads: int = 0  # index entries served (exact + range lookups)
    writes: int = 0  # index entry inserts/deletes applied here
    routing_window: int = 0
    read_window: int = 0
    write_window: int = 0
    routing_ewma: float = 0.0
    read_ewma: float = 0.0
    write_ewma: float = 0.0

    def record_routing(self, count: int = 1) -> None:
        self.routing_hits += count
        self.routing_window += count

    def record_read(self, count: int = 1) -> None:
        self.reads += count
        self.read_window += count

    def record_write(self, count: int = 1) -> None:
        self.writes += count
        self.write_window += count

    def decay(self, alpha: float = 0.5) -> None:
        """Fold the current window into the EWMAs and reset the window."""
        self.routing_ewma = (1 - alpha) * self.routing_ewma + alpha * self.routing_window
        self.read_ewma = (1 - alpha) * self.read_ewma + alpha * self.read_window
        self.write_ewma = (1 - alpha) * self.write_ewma + alpha * self.write_window
        self.routing_window = 0
        self.read_window = 0
        self.write_window = 0

    def score(
        self,
        routing_weight: float = 0.5,
        read_weight: float = 1.0,
        write_weight: float = 1.0,
    ) -> float:
        """One hotness number; includes the not-yet-decayed window so a
        flash crowd registers before the first decay tick."""
        return (
            routing_weight * (self.routing_ewma + self.routing_window)
            + read_weight * (self.read_ewma + self.read_window)
            + write_weight * (self.write_ewma + self.write_window)
        )

    @property
    def total_ops(self) -> int:
        return self.routing_hits + self.reads + self.writes


class BatonNode:
    """One overlay participant.

    ``node_id`` is the peer identifier (an opaque string).  ``level`` and
    ``position`` locate the node in the balanced tree: the root is (0, 0)
    and a node at (level, j) has children at (level+1, 2j) and
    (level+1, 2j+1).
    """

    def __init__(self, node_id: str, r0: Range) -> None:
        self.node_id = node_id
        self.r0 = r0
        self.level = 0
        self.position = 0
        self.parent: Optional[BatonNode] = None
        self.left_child: Optional[BatonNode] = None
        self.right_child: Optional[BatonNode] = None
        self.adjacent_left: Optional[BatonNode] = None
        self.adjacent_right: Optional[BatonNode] = None
        # Routing tables: distance exponent i -> neighbour at position ± 2^i.
        self.left_table: List[BatonNode] = []
        self.right_table: List[BatonNode] = []
        # Index entries this node is responsible for: key -> list of values.
        self.items: Dict[float, list] = {}
        self.online = True
        # Measured load (routing hits, entry reads/writes + EWMAs).
        self.load = NodeLoad()
        # Per-key access heat: how often each stored key was touched.
        # Migration moves a key's heat along with its values, so the
        # balancer can split a hot *range* at the right boundary.
        self.key_heat: Dict[float, float] = {}

    # ------------------------------------------------------------------
    # Ranges
    # ------------------------------------------------------------------
    @property
    def r1(self) -> Range:
        """The subtree range: union of R0 over the subtree.

        In-order traversal visits contiguous sub-domains, so the subtree
        range is simply [leftmost descendant's low, rightmost descendant's
        high).
        """
        return Range(self._subtree_low(), self._subtree_high())

    def _subtree_low(self) -> float:
        node = self
        while node.left_child is not None:
            node = node.left_child
        return node.r0.low

    def _subtree_high(self) -> float:
        node = self
        while node.right_child is not None:
            node = node.right_child
        return node.r0.high

    # ------------------------------------------------------------------
    # Items
    # ------------------------------------------------------------------
    @property
    def item_count(self) -> int:
        return sum(len(values) for values in self.items.values())

    def add_item(self, key: float, value: object) -> None:
        if not self.r0.contains(key):
            raise BatonRangeError(
                f"node {self.node_id!r} (R0={self.r0}) is not responsible "
                f"for key {key}"
            )
        self.items.setdefault(key, []).append(value)

    def remove_item(self, key: float, value: object) -> bool:
        """Remove one matching value; returns True if something was removed."""
        values = self.items.get(key)
        if not values:
            return False
        try:
            values.remove(value)
        except ValueError:
            return False
        if not values:
            del self.items[key]
        return True

    def touch_key(self, key: float, heat: float = 1.0) -> None:
        """Record one access against ``key``'s heat (hot-range detection)."""
        self.key_heat[key] = self.key_heat.get(key, 0.0) + heat

    def decay_heat(self, alpha: float = 0.5) -> None:
        """Cool every key's heat; forget keys that have gone cold."""
        cooled = {
            key: value * (1 - alpha)
            for key, value in self.key_heat.items()
            if value * (1 - alpha) > 1e-9
        }
        self.key_heat = cooled

    def items_in_range(self, low: float, high: float) -> List[tuple]:
        """(key, value) pairs with ``low <= key < high``."""
        matches = []
        for key in sorted(self.items):
            if low <= key < high:
                for value in self.items[key]:
                    matches.append((key, value))
        return matches

    # ------------------------------------------------------------------
    # Tree structure helpers
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return self.left_child is None and self.right_child is None

    def __repr__(self) -> str:
        return (
            f"BatonNode({self.node_id!r}, level={self.level}, "
            f"pos={self.position}, R0={self.r0})"
        )
