"""Measured-load balancing for the BATON overlay.

The paper's load-balancing schemes (§4.3) move index entries when a node
holds too many of them — but a Zipf-skewed workload or a flash crowd on
one supplier concentrates *traffic*, not entries: a node with a handful of
hot keys melts while its neighbours idle.  This module drives the tree's
existing primitives (``balance_with_adjacent`` / ``global_rebalance``)
from *measured* load instead of entry counts:

* every node accounts routing hits, entry reads and writes with decayed
  EWMAs (:class:`~repro.baton.node.NodeLoad`) plus per-key access heat,
* :class:`LoadBalancer` declares a node *hot* when its load score exceeds
  a configurable multiple of the overlay mean and migrates entries away
  from it, splitting the node's sub-domain at the measured heat boundary,
* every migration is gated by a key-space census: the multiset of stored
  entries before and after must match exactly, or
  :class:`~repro.errors.MigrationCensusError` is raised — migration must
  never lose or duplicate an index entry,
* pluggable :class:`ReplicaChoicePolicy` implementations (random /
  least-loaded / power-of-k choices, the classic dispatcher menu) pick
  which replica holder serves a read when
  :class:`~repro.baton.replication.ReplicatedOverlay` fans hot-range
  lookups out across copies.

Single hot *keys* cannot be migrated (a sub-domain cannot be split below
one key); replica read fan-out is the mitigation for that shape of skew,
which is why the two mechanisms ship together.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from repro.errors import BatonError
from repro.baton.node import BatonNode
from repro.baton.replication import ReplicatedOverlay
from repro.baton.tree import BatonOverlay

#: Weight of stored-entry count inside the heat-driven migration weight:
#: keeps cold entries spreading (the paper's original behaviour) while
#: measured heat dominates wherever traffic is concentrated.
HEAT_ENTRY_WEIGHT = 0.01


# ----------------------------------------------------------------------
# Replica-choice policies (random / least-loaded / power-of-k)
# ----------------------------------------------------------------------
class ReplicaChoicePolicy:
    """Chooses which of several candidate nodes serves a read."""

    name = "base"

    def choose(self, candidates: Sequence[BatonNode]) -> BatonNode:
        raise NotImplementedError

    @staticmethod
    def _require(candidates: Sequence[BatonNode]) -> None:
        if not candidates:
            raise BatonError("no candidate nodes to choose from")


class RandomChoice(ReplicaChoicePolicy):
    """Uniformly random candidate (seeded; ignores load entirely)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose(self, candidates: Sequence[BatonNode]) -> BatonNode:
        self._require(candidates)
        return candidates[self._rng.randrange(len(candidates))]


class LeastLoadedChoice(ReplicaChoicePolicy):
    """The candidate with the lowest load score (node id breaks ties).

    Perfect information, maximal cost: every choice inspects every
    candidate.  The baseline the sampling policies are measured against.
    """

    name = "least-loaded"

    def choose(self, candidates: Sequence[BatonNode]) -> BatonNode:
        self._require(candidates)
        return min(candidates, key=lambda n: (n.load.score(), n.node_id))


class PowerOfKChoice(ReplicaChoicePolicy):
    """Best of ``k`` random samples — the power-of-d-choices classic.

    Sampling two candidates and taking the less loaded one gets
    exponentially close to least-loaded at a fraction of the probing
    cost, which is why dispatchers default to it.
    """

    name = "power-of-k"

    def __init__(self, k: int = 2, seed: int = 0) -> None:
        if k < 1:
            raise BatonError(f"power-of-k needs k >= 1: {k}")
        self.k = k
        self._rng = random.Random(seed)

    def choose(self, candidates: Sequence[BatonNode]) -> BatonNode:
        self._require(candidates)
        pool = list(candidates)
        if len(pool) > self.k:
            pool = self._rng.sample(pool, self.k)
        return min(pool, key=lambda n: (n.load.score(), n.node_id))


#: Policy registry for CLIs and scenario knobs.
POLICY_NAMES = ("random", "least-loaded", "power-of-k")


def make_policy(
    name: str, seed: int = 0, k: int = 2
) -> ReplicaChoicePolicy:
    """Build a policy by name (``random``/``least-loaded``/``power-of-k``)."""
    if name == "random":
        return RandomChoice(seed)
    if name == "least-loaded":
        return LeastLoadedChoice()
    if name == "power-of-k":
        return PowerOfKChoice(k=k, seed=seed)
    raise BatonError(
        f"unknown balancing policy {name!r} (valid: {', '.join(POLICY_NAMES)})"
    )


# ----------------------------------------------------------------------
# The balancer
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LoadBalancerConfig:
    """Knobs for hot-node detection and migration."""

    #: A node is hot when its score exceeds this multiple of the mean.
    hot_multiple: float = 2.0
    #: EWMA/heat decay folded in after every rebalance round.
    decay_alpha: float = 0.5
    #: Overlays colder than this (mean score) never migrate: a quiet
    #: network with one request is "skewed" but not worth touching.
    min_mean_score: float = 1.0
    #: Fall back to a network-wide diffusion pass when adjacent balancing
    #: alone leaves the overlay above ``hot_multiple``.
    allow_global: bool = True

    def __post_init__(self) -> None:
        if self.hot_multiple <= 1.0:
            raise BatonError(
                f"hot_multiple must exceed 1.0: {self.hot_multiple}"
            )
        if not 0.0 < self.decay_alpha <= 1.0:
            raise BatonError(
                f"decay_alpha must be in (0, 1]: {self.decay_alpha}"
            )


@dataclass
class RebalanceReport:
    """What one :meth:`LoadBalancer.rebalance` round did."""

    hot_nodes: List[str] = field(default_factory=list)
    adjacent_migrations: int = 0
    global_migrations: int = 0
    entries_moved: int = 0
    ratio_before: float = 0.0
    ratio_after: float = 0.0

    @property
    def migrations(self) -> int:
        return self.adjacent_migrations + self.global_migrations


class LoadBalancer:
    """Hot-range migration driven by measured load, census-gated.

    Wraps a :class:`BatonOverlay` (or a :class:`ReplicatedOverlay`, whose
    replicas are repaired after entries move).  Call :meth:`rebalance`
    periodically — e.g. once per simulated maintenance epoch; each call
    is one round: detect hot nodes, migrate, verify the census, decay.
    """

    def __init__(
        self,
        overlay: Union[BatonOverlay, ReplicatedOverlay],
        config: Optional[LoadBalancerConfig] = None,
    ) -> None:
        if isinstance(overlay, ReplicatedOverlay):
            self.replicated: Optional[ReplicatedOverlay] = overlay
            self.tree = overlay.overlay
        else:
            self.replicated = None
            self.tree = overlay
        self.config = config or LoadBalancerConfig()
        # Cumulative counters (observability; mirrored into core metrics).
        self.rounds = 0
        self.total_migrations = 0
        self.total_entries_moved = 0
        self.census_checks = 0

    # ------------------------------------------------------------------
    # Load inspection
    # ------------------------------------------------------------------
    def scores(self) -> List[float]:
        return [node.load.score() for node in self.tree.nodes()]

    def mean_score(self) -> float:
        scores = self.scores()
        return sum(scores) / len(scores) if scores else 0.0

    def max_mean_ratio(self) -> float:
        """Max/mean load score: 1.0 is perfectly even, higher is skewed."""
        scores = self.scores()
        if not scores:
            return 1.0
        mean = sum(scores) / len(scores)
        return max(scores) / mean if mean > 0 else 1.0

    def hot_nodes(self) -> List[BatonNode]:
        """Nodes above ``hot_multiple`` times the mean, hottest first."""
        mean = self.mean_score()
        if mean < self.config.min_mean_score:
            return []
        threshold = self.config.hot_multiple * mean
        hot = [
            node
            for node in self.tree.nodes()
            if node.load.score() > threshold
        ]
        return sorted(
            hot, key=lambda n: (-n.load.score(), n.node_id)
        )

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    @staticmethod
    def _heat_weight(node: BatonNode, key: float) -> float:
        """Per-key migration weight: measured heat plus a whiff of size."""
        return node.key_heat.get(key, 0.0) + HEAT_ENTRY_WEIGHT * len(
            node.items[key]
        )

    def _owner_snapshot(self) -> dict:
        return {
            key: (node.node_id, len(values))
            for node in self.tree.nodes()
            for key, values in node.items.items()
        }

    def rebalance(self) -> RebalanceReport:
        """One balancing round; returns what happened.

        Every migration is wrapped in a key-space census — the full
        multiset of stored entries before must equal the one after, or
        :class:`~repro.errors.MigrationCensusError` propagates and the
        round is aborted (the census check runs *before* replica repair,
        so a corrupted migration never gets copied anywhere).
        """
        report = RebalanceReport(ratio_before=self.max_mean_ratio())
        hot = self.hot_nodes()
        report.hot_nodes = [node.node_id for node in hot]
        moved_anything = False
        if hot:
            census = self.tree.census()
            owners_before = self._owner_snapshot()
            for node in hot:
                if self.tree.balance_with_adjacent(
                    node.node_id, weight=self._heat_weight
                ):
                    report.adjacent_migrations += 1
                    moved_anything = True
            # Adjacent moves only reach in-order neighbours; when the
            # overlay is still skewed past the threshold, diffuse
            # network-wide (the paper's global adjustment).
            if (
                self.config.allow_global
                and self.max_mean_ratio() > self.config.hot_multiple
                and self.tree.global_rebalance(weight=self._heat_weight)
            ):
                report.global_migrations += 1
                moved_anything = True
            self.tree.check_invariants(expected_census=census)
            self.census_checks += 1
            owners_after = self._owner_snapshot()
            report.entries_moved = sum(
                count
                for key, (owner, count) in owners_after.items()
                if owners_before.get(key, (owner, count))[0] != owner
            )
        if moved_anything and self.replicated is not None:
            # Entries moved between primaries, so replica copies must
            # follow — the range diff re-copies exactly the dirty nodes.
            self.replicated.repair()
        for node in self.tree.nodes():
            node.load.decay(self.config.decay_alpha)
            node.decay_heat(self.config.decay_alpha)
        report.ratio_after = self.max_mean_ratio()
        self.rounds += 1
        self.total_migrations += report.migrations
        self.total_entries_moved += report.entries_moved
        return report
