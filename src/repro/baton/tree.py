"""The BATON overlay: membership, routing, item storage, load balancing.

The overlay keeps the tree balanced by admitting joins level-by-level (the
effect of BATON's load-aware join protocol on a uniformly loaded network) and
handles departures with the paper's two moves:

* a *leaf* departure merges its sub-domain into an in-order neighbour,
* an *internal* departure triggers the global adjustment: the last leaf in
  level order is relocated to the vacant position ("moving a non-adjacent
  leaf node from its original position", Section 4.3).

Searches follow BATON routing — descend while the key is inside the subtree,
otherwise jump along the same-level routing tables (distances 1, 2, 4, ...),
falling back to parent links — and report the number of routing hops, which
the BestPeer++ layer converts into network cost.  Hop counts are O(log N).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import BatonError, BatonRangeError, MigrationCensusError
from repro.baton.node import BatonNode, Range


def string_to_key(text: str, domain: Range = Range(0.0, 1.0)) -> float:
    """Hash a string to a stable key inside ``domain``.

    Uses the first 8 bytes of SHA-1, so the mapping is deterministic across
    runs and processes (unlike Python's salted ``hash``).
    """
    digest = hashlib.sha1(text.encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return domain.low + fraction * domain.width


@dataclass
class SearchResult:
    """Outcome of an overlay lookup."""

    values: List[object]
    hops: int
    node_ids: List[str] = field(default_factory=list)


class BatonOverlay:
    """A BATON tree of named peers over a float key domain."""

    def __init__(self, domain: Range = Range(0.0, 1.0)) -> None:
        if domain.width <= 0:
            raise BatonRangeError(f"empty key domain: {domain}")
        self.domain = domain
        self.root: Optional[BatonNode] = None
        self._nodes: Dict[str, BatonNode] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def node(self, node_id: str) -> BatonNode:
        node = self._nodes.get(node_id)
        if node is None:
            raise BatonError(f"unknown overlay node: {node_id!r}")
        return node

    def nodes(self) -> List[BatonNode]:
        """All nodes in in-order (ascending sub-domain) order."""
        return list(self._in_order())

    def height(self) -> int:
        """Number of levels in the tree (0 for an empty overlay)."""
        if self.root is None:
            return 0
        return 1 + max(node.level for node in self._nodes.values())

    def _in_order(self) -> Iterator[BatonNode]:
        def walk(node: Optional[BatonNode]) -> Iterator[BatonNode]:
            if node is None:
                return
            yield from walk(node.left_child)
            yield node
            yield from walk(node.right_child)

        yield from walk(self.root)

    def census(self) -> Dict[float, int]:
        """Key-space census: key -> number of stored values, network-wide.

        Migration moves entries between nodes but must never lose or
        duplicate one, so the census taken before a migration must equal
        the census after it — that equality is the safety invariant
        :meth:`check_invariants` verifies when given ``expected_census``.
        """
        counts: Dict[float, int] = {}
        for node in self.nodes():
            for key, values in node.items.items():
                counts[key] = counts.get(key, 0) + len(values)
        return counts

    def check_invariants(
        self, expected_census: Optional[Dict[float, int]] = None
    ) -> None:
        """Raise if structural invariants are violated (used by tests).

        With ``expected_census`` (a prior :meth:`census` snapshot), also
        verify that no index entry was lost or duplicated since: every key
        still carries exactly as many values as before.
        """
        if expected_census is not None:
            current = self.census()
            if current != expected_census:
                missing = {
                    key: count - current.get(key, 0)
                    for key, count in expected_census.items()
                    if current.get(key, 0) != count
                }
                extra = {
                    key: count - expected_census.get(key, 0)
                    for key, count in current.items()
                    if expected_census.get(key, 0) != count
                }
                raise MigrationCensusError(
                    f"key-space census changed: lost={missing} gained={extra}"
                )
        nodes = self.nodes()
        if not nodes:
            return
        # In-order sub-domains tile the key domain contiguously.
        if nodes[0].r0.low != self.domain.low:
            raise BatonError("leftmost node does not start at domain low")
        if nodes[-1].r0.high != self.domain.high:
            raise BatonError("rightmost node does not end at domain high")
        for before, after in zip(nodes, nodes[1:]):
            if before.r0.high != after.r0.low:
                raise BatonError(
                    f"gap between {before.node_id} {before.r0} and "
                    f"{after.node_id} {after.r0}"
                )
        # Balance: leaves only on the last two levels.
        height = self.height()
        for node in nodes:
            if node.is_leaf and node.level < height - 2:
                raise BatonError(
                    f"unbalanced: leaf {node.node_id} at level {node.level} "
                    f"in a tree of height {height}"
                )
        # Items stored at the responsible node.
        for node in nodes:
            for key in node.items:
                if not node.r0.contains(key):
                    raise BatonError(
                        f"item {key} stored at wrong node {node.node_id}"
                    )

    # ------------------------------------------------------------------
    # Membership: join
    # ------------------------------------------------------------------
    def join(self, node_id: str) -> BatonNode:
        """Add a peer to the overlay; returns its node."""
        if node_id in self._nodes:
            raise BatonError(f"node already in overlay: {node_id!r}")
        if self.root is None:
            node = BatonNode(node_id, self.domain)
            self.root = node
            self._nodes[node_id] = node
            return node

        parent = self._next_open_parent()
        node = BatonNode(node_id, parent.r0)  # placeholder range, split below
        node.parent = parent
        node.level = parent.level + 1
        if parent.left_child is None:
            parent.left_child = node
            node.position = parent.position * 2
            self._split_range(parent, node, left_side=True)
        else:
            parent.right_child = node
            node.position = parent.position * 2 + 1
            self._split_range(parent, node, left_side=False)
        self._nodes[node_id] = node
        self._rebuild_links()
        return node

    def _next_open_parent(self) -> BatonNode:
        """The first node in level order missing a child (keeps balance)."""
        queue = [self.root]
        while queue:
            node = queue.pop(0)
            if node.left_child is None or node.right_child is None:
                return node
            queue.append(node.left_child)
            queue.append(node.right_child)
        raise BatonError("unreachable: full binary tree has an open slot")

    def _split_range(
        self, parent: BatonNode, child: BatonNode, left_side: bool
    ) -> None:
        """Split the parent's R0 between itself and the new child.

        A left child takes the lower half (it precedes the parent in-order),
        a right child takes the upper half.  Items in the transferred
        sub-range move to the child.
        """
        middle = parent.r0.midpoint
        if left_side:
            child.r0 = Range(parent.r0.low, middle)
            parent.r0 = Range(middle, parent.r0.high)
        else:
            child.r0 = Range(middle, parent.r0.high)
            parent.r0 = Range(parent.r0.low, middle)
        moved = [key for key in parent.items if child.r0.contains(key)]
        for key in moved:
            for value in parent.items.pop(key):
                child.items.setdefault(key, []).append(value)
            heat = parent.key_heat.pop(key, 0.0)
            if heat:
                child.key_heat[key] = child.key_heat.get(key, 0.0) + heat

    # ------------------------------------------------------------------
    # Membership: leave
    # ------------------------------------------------------------------
    def leave(self, node_id: str) -> None:
        """Remove a peer, handing its sub-domain and items to neighbours."""
        node = self.node(node_id)
        if len(self._nodes) == 1:
            self.root = None
            del self._nodes[node_id]
            return
        if not node.is_leaf:
            # Global adjustment: relocate the last level-order leaf into the
            # vacant position, then remove the (now leaf-shaped) original.
            replacement = self._last_leaf()
            if replacement is node:
                raise BatonError("internal node cannot be the last leaf")
            self._detach_leaf(replacement)
            self._substitute(node, replacement)
        else:
            self._detach_leaf(node)
        del self._nodes[node_id]
        self._rebuild_links()

    def _last_leaf(self) -> BatonNode:
        last = None
        queue = [self.root]
        while queue:
            node = queue.pop(0)
            last = node
            if node.left_child is not None:
                queue.append(node.left_child)
            if node.right_child is not None:
                queue.append(node.right_child)
        if last is None or not last.is_leaf:
            raise BatonError("tree has no leaves")  # pragma: no cover
        return last

    def _detach_leaf(self, leaf: BatonNode) -> None:
        """Unlink a leaf, merging its sub-domain into an in-order neighbour."""
        if not leaf.is_leaf:
            raise BatonError(f"{leaf.node_id!r} is not a leaf")
        nodes = self.nodes()
        index = nodes.index(leaf)
        # Prefer the in-order predecessor (extend its R0 upward); the
        # leftmost node merges into its successor instead.
        if index > 0:
            heir = nodes[index - 1]
            heir.r0 = Range(heir.r0.low, leaf.r0.high)
        else:
            heir = nodes[index + 1]
            heir.r0 = Range(leaf.r0.low, heir.r0.high)
        for key, values in leaf.items.items():
            for value in values:
                heir.items.setdefault(key, []).append(value)
        for key in sorted(leaf.key_heat):
            heir.key_heat[key] = heir.key_heat.get(key, 0.0) + leaf.key_heat[key]
        leaf.items.clear()
        leaf.key_heat.clear()
        parent = leaf.parent
        if parent is None:
            raise BatonError("cannot detach the root as a leaf")
        if parent.left_child is leaf:
            parent.left_child = None
        else:
            parent.right_child = None
        leaf.parent = None

    def _substitute(self, old: BatonNode, replacement: BatonNode) -> None:
        """Install ``replacement`` at ``old``'s position, range and items."""
        replacement.r0 = old.r0
        replacement.items = dict(old.items)
        replacement.key_heat = dict(old.key_heat)
        replacement.level = old.level
        replacement.position = old.position
        replacement.parent = old.parent
        replacement.left_child = old.left_child
        replacement.right_child = old.right_child
        if old.parent is not None:
            if old.parent.left_child is old:
                old.parent.left_child = replacement
            else:
                old.parent.right_child = replacement
        if old.left_child is not None:
            old.left_child.parent = replacement
        if old.right_child is not None:
            old.right_child.parent = replacement
        if self.root is old:
            self.root = replacement
        old.parent = old.left_child = old.right_child = None
        old.items = {}
        old.key_heat = {}

    # ------------------------------------------------------------------
    # Links: adjacency and routing tables
    # ------------------------------------------------------------------
    def _rebuild_links(self) -> None:
        nodes = self.nodes()
        by_position: Dict[Tuple[int, int], BatonNode] = {}
        for node in self._nodes.values():
            by_position[(node.level, node.position)] = node
        for index, node in enumerate(nodes):
            node.adjacent_left = nodes[index - 1] if index > 0 else None
            node.adjacent_right = (
                nodes[index + 1] if index + 1 < len(nodes) else None
            )
        for node in self._nodes.values():
            node.left_table = []
            node.right_table = []
            distance = 1
            while distance <= node.position or distance + node.position < (
                1 << node.level
            ):
                left = by_position.get((node.level, node.position - distance))
                if left is not None:
                    node.left_table.append(left)
                right = by_position.get((node.level, node.position + distance))
                if right is not None:
                    node.right_table.append(right)
                distance *= 2

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def find_responsible(
        self, key: float, start_id: Optional[str] = None
    ) -> Tuple[BatonNode, int]:
        """Route from ``start_id`` (default: root) to the node owning ``key``.

        Returns ``(node, hops)`` where hops counts inter-node messages.
        """
        if self.root is None:
            raise BatonError("overlay is empty")
        if not self.domain.contains(key):
            raise BatonRangeError(f"key {key} outside domain {self.domain}")
        current = self.node(start_id) if start_id is not None else self.root
        current.load.record_routing()
        hops = 0
        safety = 4 * (len(self._nodes) + 2)
        while not current.r0.contains(key):
            nxt = self._next_hop(current, key)
            current = nxt
            current.load.record_routing()
            hops += 1
            safety -= 1
            if safety <= 0:  # pragma: no cover - defensive
                raise BatonError(f"routing did not converge for key {key}")
        return current, hops

    def _next_hop(self, current: BatonNode, key: float) -> BatonNode:
        r1 = current.r1
        if r1.contains(key):
            # Descend into the child whose subtree holds the key.
            if key < current.r0.low:
                child = current.left_child
            else:
                child = current.right_child
            if child is None:  # pragma: no cover - defensive
                raise BatonError("R1 contains key but no child to descend")
            return child
        # Same-level jump via routing tables, farthest first, never
        # overshooting the key.
        if key < r1.low:
            for neighbor in reversed(current.left_table):
                if neighbor.r1.high > key:
                    return neighbor
            if current.adjacent_left is not None and current.parent is None:
                return current.adjacent_left
        else:
            for neighbor in reversed(current.right_table):
                if neighbor.r1.low <= key:
                    return neighbor
            if current.adjacent_right is not None and current.parent is None:
                return current.adjacent_right
        if current.parent is not None:
            return current.parent
        raise BatonError(  # pragma: no cover - defensive
            f"no route toward key {key} from {current.node_id!r}"
        )

    # ------------------------------------------------------------------
    # Item operations
    # ------------------------------------------------------------------
    def insert(
        self, key: float, value: object, start_id: Optional[str] = None
    ) -> int:
        """Store ``value`` under ``key``; returns routing hops."""
        node, hops = self.find_responsible(key, start_id)
        node.add_item(key, value)
        node.load.record_write()
        node.touch_key(key)
        return hops

    def delete(
        self, key: float, value: object, start_id: Optional[str] = None
    ) -> Tuple[bool, int]:
        """Remove one matching item; returns (removed, hops)."""
        node, hops = self.find_responsible(key, start_id)
        node.load.record_write()
        return node.remove_item(key, value), hops

    def search(self, key: float, start_id: Optional[str] = None) -> SearchResult:
        """Exact lookup of all values stored under ``key``."""
        node, hops = self.find_responsible(key, start_id)
        node.load.record_read()
        node.touch_key(key)
        return SearchResult(
            values=list(node.items.get(key, [])),
            hops=hops,
            node_ids=[node.node_id],
        )

    def range_search(
        self, low: float, high: float, start_id: Optional[str] = None
    ) -> SearchResult:
        """All (key, value) items with ``low <= key < high``.

        Routes to the node owning ``low`` then walks right-adjacent links,
        which is exactly BATON's range query strategy.
        """
        if low >= high:
            return SearchResult(values=[], hops=0)
        low = max(low, self.domain.low)
        if low >= self.domain.high:
            return SearchResult(values=[], hops=0)
        node, hops = self.find_responsible(low, start_id)
        values: List[Tuple[float, object]] = []
        node_ids: List[str] = []
        while node is not None and node.r0.low < high:
            matched = node.items_in_range(low, high)
            node.load.record_read()
            for matched_key in sorted({key for key, _ in matched}):
                node.touch_key(matched_key)
            if matched:
                values.extend(matched)
            node_ids.append(node.node_id)
            node = node.adjacent_right
            if node is not None:
                hops += 1
        return SearchResult(values=values, hops=hops, node_ids=node_ids)

    # ------------------------------------------------------------------
    # Load balancing
    # ------------------------------------------------------------------
    def balance_with_adjacent(
        self,
        node_id: str,
        weight: Optional[Callable[[BatonNode, float], float]] = None,
    ) -> bool:
        """Even out load between a node and its lighter adjacent node.

        Implements the paper's first load-balancing scheme ("a node can
        balance its load with adjacent nodes"): the boundary between the
        two sub-domains moves so each side holds about half the load.
        Returns True if a transfer happened.

        ``weight`` maps ``(node, key)`` to that key's share of the load;
        the default weighs every stored value equally (the original
        entry-count balancing).  The load balancer passes measured per-key
        heat instead, so a hot *range* splits at the access boundary
        rather than the entry-count midpoint.  The node always keeps at
        least one key: a lone hot key cannot be migrated away (replica
        read fan-out is the mitigation for that shape of skew).
        """
        node = self.node(node_id)
        if weight is None:
            weight = lambda n, key: float(len(n.items[key]))
        candidates = [
            neighbor
            for neighbor in (node.adjacent_left, node.adjacent_right)
            if neighbor is not None
        ]
        if not candidates:
            return False

        def total(n: BatonNode) -> float:
            return sum(weight(n, key) for key in n.items)

        lightest = min(candidates, key=total)
        node_total = total(node)
        light_total = total(lightest)
        # Mirror the original guard: the gap must exceed one unit of
        # weight, so tiny imbalances don't cause migration ping-pong.
        if not node.items or node_total <= light_total + 1.0:
            return False

        keys = sorted(node.items)
        target = (node_total + light_total) / 2.0
        ordered = keys if lightest is node.adjacent_left else list(reversed(keys))
        moved: List[float] = []
        remaining = node_total
        for key in ordered:
            if remaining <= target or len(moved) + 1 == len(keys):
                break
            moved.append(key)
            remaining -= weight(node, key)
        if not moved:
            return False

        if lightest is node.adjacent_left:
            # Shift low keys to the left neighbour: move the boundary up.
            boundary = self._boundary_after(node, moved)
            lightest.r0 = Range(lightest.r0.low, boundary)
            node.r0 = Range(boundary, node.r0.high)
        else:
            boundary = min(moved)
            lightest.r0 = Range(boundary, lightest.r0.high)
            node.r0 = Range(node.r0.low, boundary)
        for key in moved:
            for value in node.items.pop(key):
                lightest.items.setdefault(key, []).append(value)
            heat = node.key_heat.pop(key, 0.0)
            if heat:
                lightest.key_heat[key] = lightest.key_heat.get(key, 0.0) + heat
        return True

    def _boundary_after(self, node: BatonNode, moved_keys: List[float]) -> float:
        """A boundary strictly above the moved keys but below the kept ones."""
        kept = [key for key in node.items if key not in set(moved_keys)]
        top_moved = max(moved_keys)
        floor = min(kept) if kept else node.r0.high
        return (top_moved + floor) / 2.0 if kept else floor

    def global_rebalance(
        self,
        weight: Optional[Callable[[BatonNode, float], float]] = None,
    ) -> bool:
        """The paper's second load-balancing scheme (§4.3), network-wide.

        When adjacent balancing alone cannot fix a hot spot ("there is no
        adjacent node available for load balancing"), BATON performs a
        global adjustment.  The paper relocates a non-adjacent leaf; this
        implementation achieves the same end state — load spread over the
        whole network — by *diffusion*: repeated passes of pairwise
        boundary shifts along the in-order chain until no pair can improve.
        Boundary shifts preserve every structural invariant (no tree
        restructuring is needed), at the price of more messages per
        adjustment than the amortized O(log N) the paper cites.

        Returns True if any item moved.
        """
        changed = False
        # Each pass moves load one hop along the chain; spreading a hot spot
        # across the whole network takes up to O(N) passes, with slack for
        # uneven item sizes.
        for _ in range(8 * max(1, len(self._nodes))):
            moved_this_pass = False
            for node in self.nodes():
                if self.balance_with_adjacent(node.node_id, weight=weight):
                    moved_this_pass = True
                    changed = True
            if not moved_this_pass:
                break
        return changed
