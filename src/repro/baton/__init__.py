"""BATON: a BAlanced Tree Overlay Network (Jagadish, Ooi, Vu — VLDB'05).

BestPeer++ organizes its normal peers in a BATON overlay and stores three
kinds of distributed index in it (Section 4.3 of the paper).  This package
implements the overlay itself:

* :class:`~repro.baton.node.BatonNode` — one peer's view: its two ranges
  (R0, the sub-domain it owns; R1, its subtree's domain), parent/child and
  adjacent links, and per-level routing tables,
* :class:`~repro.baton.tree.BatonOverlay` — join/leave, exact and range
  search with O(log N) routing-hop counts, item storage and load balancing,
* :class:`~repro.baton.replication.ReplicatedOverlay` — the two-tier partial
  replication wrapper ([24] in the paper) that keeps index data available
  when nodes fail.

Keys are floats in a configurable domain; callers hash strings into the
domain with :func:`~repro.baton.tree.string_to_key`.
"""

from repro.baton.node import BatonNode, NodeLoad, Range
from repro.baton.tree import BatonOverlay, SearchResult, string_to_key
from repro.baton.replication import ReplicatedOverlay
from repro.baton.loadbalance import (
    LeastLoadedChoice,
    LoadBalancer,
    LoadBalancerConfig,
    POLICY_NAMES,
    PowerOfKChoice,
    RandomChoice,
    RebalanceReport,
    ReplicaChoicePolicy,
    make_policy,
)

__all__ = [
    "BatonNode",
    "NodeLoad",
    "Range",
    "BatonOverlay",
    "SearchResult",
    "string_to_key",
    "ReplicatedOverlay",
    "LoadBalancer",
    "LoadBalancerConfig",
    "RebalanceReport",
    "ReplicaChoicePolicy",
    "RandomChoice",
    "LeastLoadedChoice",
    "PowerOfKChoice",
    "make_policy",
    "POLICY_NAMES",
]
