"""Effect-contract rules: PURE001, DET003, ATOM001.

These ride on the tier-4 inference in :mod:`repro.analysis.effects`.
Each rule names a contract *boundary* (compiled kernels, event handlers,
the bootstrap's WAL) and checks every function inside it against the
inferred effect signature; every finding carries the call-chain witness
from the boundary to the offending intrinsic, plus the full signature in
``Finding.properties`` for the JSON/SARIF reports.

A chain ``kernel → helper → time.monotonic()`` is reported once, at the
deepest in-violation function — fixing the helper fixes every caller, and
one finding per root per helper would bury the cause in repetition.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.effects import (
    Atom,
    EffectInference,
    WitnessHop,
    owner_class,
    owner_module,
    receiver_name_tokens,
    render_atom,
    short_qual,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.projectgraph import ProjectGraph
from repro.analysis.registry import ProjectRule, register_rule

#: Module basename of the WAL reducer (``repro.core.metalog`` in the
#: tree, ``proj.core.metalog`` in fixtures).  Must agree with RES002's
#: ``WAL_MODULE`` on what the sanctioned mutation path is.
WAL_BASENAME = "metalog"


def _is_wal_module(module: str) -> bool:
    return module.split(".")[-1] == WAL_BASENAME


class _EffectContractRule(ProjectRule):
    """Shared driver: pick roots, test a predicate, witness, dedup."""

    #: Atom predicate — what this contract forbids.
    def offending(self, atom: Atom) -> bool:
        raise NotImplementedError

    def roots(
        self, graph: ProjectGraph, inference: EffectInference
    ) -> List[str]:
        raise NotImplementedError

    def message(self, qual: str, effects: List[str], cause: str) -> str:
        raise NotImplementedError

    def witness_for(
        self, inference: EffectInference, qual: str
    ) -> Optional[List[WitnessHop]]:
        return inference.witness(qual, self.offending)

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        inference = EffectInference.for_graph(graph)
        flagged = {
            qual
            for qual in self.roots(graph, inference)
            if inference.has_effect(qual, self.offending)
        }
        for qual in sorted(flagged):
            # Report the deepest in-violation function of each chain.
            if any(
                edge.callee in flagged and edge.callee != qual
                for edge in inference.calls.get(qual, ())
            ):
                continue
            hops = self.witness_for(inference, qual)
            if hops is None:
                continue
            finding = self._emit(graph, inference, qual, hops)
            if finding is not None:
                yield finding

    def _emit(
        self,
        graph: ProjectGraph,
        inference: EffectInference,
        qual: str,
        hops: List[WitnessHop],
    ) -> Optional[Finding]:
        module = graph.module_of_function(qual)
        if module is None:
            return None
        signature = inference.signature(qual)
        effects = sorted(
            {
                render_atom(atom)
                for atom in inference.atoms.get(qual, ())
                if self.offending(atom)
            }
        )
        cause = hops[-1][2]
        finding = self.project_finding(
            module,
            hops[0][1],
            0,
            self.message(qual, effects, cause),
        )
        finding.trace = self._trace(graph, hops)
        finding.properties = {
            "effectSignature": signature.to_dict(),
            "offendingEffects": effects,
        }
        return finding

    def _trace(
        self, graph: ProjectGraph, hops: List[WitnessHop]
    ) -> Tuple[Tuple[str, int, str], ...]:
        rendered = []
        for i, (qual, lineno, note) in enumerate(hops):
            module = graph.module_of_function(qual)
            path = module.path if module is not None else "<unknown>"
            if i + 1 < len(hops):
                text = f"{short_qual(qual)} {note}"
            else:
                text = f"{short_qual(qual)}: {note}"
            rendered.append((path, lineno, text))
        return tuple(rendered)


def _module_has_part(module: str, *parts: str) -> bool:
    pieces = module.split(".")
    return any(part in pieces for part in parts)


@register_rule
class Pure001(_EffectContractRule):
    """Compiled-kernel code must be pure."""

    id = "PURE001"
    severity = Severity.ERROR
    description = (
        "code reachable from compiled evaluators / executor kernels "
        "must be pure (no clock, randomness, I/O, network, or shared "
        "mutation)"
    )
    categories = ("src",)
    example_path = "proj/sqlengine/compile.py"
    rationale = (
        "The compiled query path lowers expression trees into flat\n"
        "closures precisely so the executor can run them millions of\n"
        "times without re-deciding anything.  That bargain only holds if\n"
        "a kernel is a pure function of its row: a clock read makes two\n"
        "identical queries disagree, a network send hides unpriced\n"
        "traffic from the cost model, and mutation of state owned\n"
        "outside the engine turns a scan into a side channel.  The\n"
        "vectorized executor leans on this harder still: batch kernels\n"
        "evaluate rows past the one whose error the reference path would\n"
        "raise first, and defer errors to operator boundaries — which is\n"
        "only unobservable because kernels are pure."
    )
    example_violation = (
        "import time\n"
        "\n"
        "def _lower_filter(positions):\n"
        "    def run_filter(rows):\n"
        "        started = time.perf_counter()  # wallclock inside a kernel\n"
        "        kept = [row for row in rows if row[positions[0]] is not None]\n"
        "        return kept, started\n"
        "    return run_filter\n"
    )
    example_clean = (
        "def _lower_filter(positions):\n"
        "    def run_filter(rows):\n"
        "        return [row for row in rows if row[positions[0]] is not None]\n"
        "    return run_filter\n"
    )

    def roots(
        self, graph: ProjectGraph, inference: EffectInference
    ) -> List[str]:
        selected = []
        for qual in sorted(inference.bases):
            module = inference.bases[qual].module
            if (
                module.endswith("sqlengine.compile")
                or module.endswith("sqlengine.executor")
                or module.endswith("sqlengine.vectorize")
                or module.endswith("sqlengine.vexecutor")
            ):
                selected.append(qual)
        return selected

    def offending(self, atom: Atom) -> bool:
        if atom[0] in (
            "wallclock", "global_random", "network_send", "real_io"
        ):
            return True
        if atom[0] == "mutates":
            # Mutating engine-owned state (ExecStats, plan caches) is the
            # executor's business; anything else is a side channel.
            if owner_class(atom[1]) == "<globals>":
                return True
            return "sqlengine" not in owner_module(atom[1]).split(".")
        return False

    def message(self, qual: str, effects: List[str], cause: str) -> str:
        return (
            f"compiled-kernel function {short_qual(qual)!r} has effects "
            f"{{{', '.join(effects)}}} ({cause}) — kernels must be pure "
            f"functions of their rows"
        )


#: Receiver tokens that mark a ``pop``/``pop_until`` caller as an event
#: dispatcher even outside ``repro.sim`` (the serving front door drains
#: its completion queue the same way).
_EVENT_RECEIVER_TOKENS = frozenset(
    {"queue", "event", "events", "eventqueue", "completions", "timeline"}
)
_SCHEDULE_CALLEES = ("push", "schedule")
_DRAIN_CALLEES = ("pop", "pop_until")


@register_rule
class Det003(_EffectContractRule):
    """Event-handler code must stay on the simulated clock."""

    id = "DET003"
    severity = Severity.ERROR
    description = (
        "code reachable from EventQueue handlers and repro.sim callbacks "
        "must be free of wall-clock, real-I/O, and global-random effects"
    )
    categories = ("src",)
    example_path = "proj/sim/handlers.py"
    rationale = (
        "Every experiment in this tree replays on a simulated clock:\n"
        "an event handler that sleeps, reads the real time, hits the\n"
        "filesystem, or draws from the global RNG produces runs that\n"
        "cannot be replayed bit-for-bit, which is exactly the failure\n"
        "the chaos harness exists to rule out.  SIM002/SIM005 catch\n"
        "wall-clock *values* flowing into timestamps; this rule catches\n"
        "the effects themselves, anywhere in the call closure of a\n"
        "handler — including helpers three calls away.  Simulated\n"
        "network sends are fine (that is what the sim is for); real\n"
        "waiting is not."
    )
    example_violation = (
        "import time\n"
        "\n"
        "def on_transfer_done(now):\n"
        "    time.sleep(0.01)  # real waiting inside a simulated event\n"
        "    return now + 1.0\n"
    )
    example_clean = (
        "def on_transfer_done(now, queue):\n"
        "    # reschedule on the simulated timeline instead of waiting\n"
        "    queue.push(now + 1.0, retry)\n"
        "\n"
        "def retry(now):\n"
        "    return now\n"
    )

    def roots(
        self, graph: ProjectGraph, inference: EffectInference
    ) -> List[str]:
        selected = set()
        for qual in inference.bases:
            if _module_has_part(inference.bases[qual].module, "sim"):
                selected.add(qual)
        for site in graph.call_sites:
            if site.callee_name in _SCHEDULE_CALLEES and site.func_ref_args:
                # a callback handed to push()/schedule() is a handler
                selected.update(
                    ref for ref in site.func_ref_args if ref in inference.bases
                )
            elif site.callee_name in _DRAIN_CALLEES and (
                receiver_name_tokens(site.receiver) & _EVENT_RECEIVER_TOKENS
            ):
                # whoever drains an event queue runs handler code inline
                if site.caller in inference.bases:
                    selected.add(site.caller)
        return sorted(selected)

    def offending(self, atom: Atom) -> bool:
        return atom[0] in ("wallclock", "real_io", "global_random")

    def message(self, qual: str, effects: List[str], cause: str) -> str:
        return (
            f"event-handler-reachable function {short_qual(qual)!r} has "
            f"effects {{{', '.join(effects)}}} ({cause}) — handlers run "
            f"on the simulated clock and must not touch the real world"
        )


@register_rule
class Atom001(_EffectContractRule):
    """Metadata mutation + network send must route through the WAL."""

    id = "ATOM001"
    severity = Severity.ERROR
    description = (
        "a function that both mutates bootstrap metadata and sends on "
        "the network must route the mutation through the metalog WAL "
        "reducer"
    )
    categories = ("src",)
    example_path = "proj/core/bootstrap.py"
    rationale = (
        "The bootstrap survives fail-over because every metadata change\n"
        "is a typed WAL record: append, replicate, then let the single\n"
        "metalog reducer fold it into state.  RES002 pins *where* state\n"
        "may be written; this rule pins the dangerous *combination* — a\n"
        "function that mutates metadata AND talks on the wire is doing\n"
        "replication by hand, and a crash between its two halves leaves\n"
        "the leader and standby permanently disagreeing.  A refactor\n"
        "that splits the pair across helpers still owns both effects in\n"
        "its inferred signature, which is what makes this check survive\n"
        "restructuring that line-based review would miss."
    )
    example_violation = (
        "class BootstrapState:\n"
        "    def __init__(self):\n"
        "        self.peers = {}\n"
        "\n"
        "class Bootstrap:\n"
        "    def __init__(self, network):\n"
        "        self.state = BootstrapState()\n"
        "        self.network = network\n"
        "\n"
        "    def admit(self, peer_id, info):\n"
        "        # mutates metadata in place AND replicates by hand\n"
        "        self.state.peers[peer_id] = info\n"
        "        self.network.transfer(0, 1, ('admit', peer_id, info))\n"
    )
    example_clean = (
        "class MetadataLog:\n"
        "    def __init__(self):\n"
        "        self.entries = []\n"
        "\n"
        "    def append(self, entry):\n"
        "        self.entries.append(entry)  # the WAL owns the mutation\n"
        "\n"
        "class Bootstrap:\n"
        "    def __init__(self, network):\n"
        "        self.log = MetadataLog()\n"
        "        self.network = network\n"
        "\n"
        "    def admit(self, peer_id, info):\n"
        "        entry = ('admit', peer_id, info)\n"
        "        self.log.append(entry)\n"
        "        self.network.transfer(0, 1, entry)\n"
    )

    def roots(
        self, graph: ProjectGraph, inference: EffectInference
    ) -> List[str]:
        selected = []
        for qual in sorted(inference.bases):
            if _is_wal_module(inference.bases[qual].module):
                continue  # reducer internals are the sanctioned path
            atoms = inference.atoms.get(qual, ())
            if any(a[0] == "network_send" for a in atoms) and any(
                self._metadata_mutation(a) for a in atoms
            ):
                selected.append(qual)
        return selected

    @staticmethod
    def _metadata_mutation(atom: Atom) -> bool:
        return atom[0] == "mutates" and owner_class(atom[1]) == (
            "BootstrapState"
        )

    def offending(self, atom: Atom) -> bool:
        return self._metadata_mutation(atom)

    def witness_for(
        self, inference: EffectInference, qual: str
    ) -> Optional[List[WitnessHop]]:
        # The decisive question is not "does it mutate" but "can the
        # mutation be reached *without* passing through the reducer".
        # No such chain → the function only mutates via apply() → clean.
        exclude: FrozenSet[str] = frozenset(
            q
            for q in inference.bases
            if _is_wal_module(inference.bases[q].module)
        )
        return inference.witness(qual, self.offending, exclude=exclude)

    def message(self, qual: str, effects: List[str], cause: str) -> str:
        return (
            f"{short_qual(qual)!r} both mutates bootstrap metadata "
            f"({cause}) and sends on the network, without routing the "
            f"mutation through the metalog WAL reducer — append a typed "
            f"record and let apply() fold it in"
        )
