"""ARCH001: the layering contract, checked against the real import graph.

BestPeer++'s cost model is only honest because the layers stay apart: the
simulated substrate (``sim``) must not know about the platform built on it,
the SQL engine (``sqlengine``) is a self-contained library, the BATON
overlay (``baton``) is pure data structure, and this analysis package
itself must stay stdlib-only so it can judge the rest of the tree from
outside.  ``core`` is the integration layer and may import everything.

The contract below lists, per architectural unit, which *other* units it
may import at runtime.  A unit's own modules are always allowed, and units
not listed (``core``, ``hadoopdb``, ``mapreduce``, ...) are unconstrained.
``if TYPE_CHECKING:`` imports are exempt — typing-only knowledge does not
couple layers at runtime.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.projectgraph import ProjectGraph, unit_of
from repro.analysis.registry import ProjectRule, register_rule

#: unit -> other units it may import at runtime (own unit always allowed).
LAYERING_CONTRACT: Dict[str, FrozenSet[str]] = {
    "analysis": frozenset(),
    "sim": frozenset({"errors"}),
    "sqlengine": frozenset({"errors"}),
    "baton": frozenset({"errors"}),
    "errors": frozenset(),
}


@register_rule
class LayeringRule(ProjectRule):
    id = "ARCH001"
    severity = Severity.ERROR
    description = (
        "import crosses the declared layering contract "
        "(sim/sqlengine/baton depend only on errors; analysis is stdlib-only)"
    )
    categories = ("src",)

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for edge in graph.import_edges:
            if edge.type_checking_only:
                continue
            src_unit = unit_of(edge.src)
            allowed = LAYERING_CONTRACT.get(src_unit)
            if allowed is None:
                continue  # unconstrained unit
            dst_unit = unit_of(edge.dst)
            if dst_unit == src_unit or dst_unit in allowed:
                continue
            module = graph.modules.get(edge.src)
            if module is None:
                continue
            yield self.project_finding(
                module,
                edge.lineno,
                0,
                f"layer {src_unit!r} must not import {edge.dst!r} "
                f"(allowed: {sorted(allowed | {src_unit})}); "
                f"use an `if TYPE_CHECKING:` guard for typing-only imports",
            )
