"""SEC003/SIM005: value-flow taint rules over :mod:`repro.analysis.dataflow`.

**SEC003 — tenant-controlled values reaching privileged sinks (§4.4).**
SEC001 asks whether a *path* exists from an unrewritten fetch to the wire;
this rule asks whether the fetched *value* actually travels it.  Three
source families are tracked with real dataflow evidence:

* rows read remotely without access rewriting (``execute_local``, or
  ``execute_fetch`` with no effective user) reaching a ``SimNetwork``
  ``transfer``/``broadcast``;
* serving-request payloads (``request.sql`` / ``request.payload``)
  reaching a metalog/WAL append or certificate issuance;
* foreign certificates (``<peer>.certificate``) reaching issuance or
  installation.

A flow through ``AccessController.rewrite_rows`` is *sanitized* (the
result is clean by §4.4's definition); a flow is *cleared* when an access
check or certificate verification is must-executed before the sink or
reachable from either endpoint's lexical scope chain.  Every finding
carries the source→sink hop list.

**SIM005 — wall-clock / global-random taint in the event kernel.**  The
ROADMAP's next refactor drives the cluster from :class:`EventQueue`; its
determinism story dies the moment a ``time.time()``-derived timestamp or a
global-``random`` value reaches ``push``/``schedule`` times or a
``FaultPlan``/``Random`` seed.  SIM001/SIM002 flag the *calls*; this rule
flags the *flows*, so a wall-clock reading laundered through arithmetic
and helper returns is still caught at the scheduling boundary.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.analysis.dataflow import (
    SinkSpec,
    SourceSpec,
    TaintEngine,
    TaintHit,
    TaintSpec,
)
from repro.analysis.engine import categorize
from repro.analysis.findings import Finding, Severity
from repro.analysis.projectgraph import ProjectGraph
from repro.analysis.registry import ProjectRule, register_rule

#: Access-control decisions that clear a rows/request flow (SEC001's set
#: plus the serving front door's read-restriction checks).
_ACCESS_GUARDS = (
    "rewrite_rows",
    "check_readable",
    "can_read",
    "rule_for",
    "require_unrestricted_read",
    "unrestricted_read",
)
_CERT_GUARDS = ("verify", "verify_certificate")
#: Receiver tokens naming the replicated metadata log / WAL.
_LOG_TOKENS = ("log", "metalog", "meta_log", "wal", "_log", "_wal")

SEC003_SPECS: Tuple[TaintSpec, ...] = (
    TaintSpec(
        name="rows",
        sources=(
            SourceSpec(
                kind="rows",
                describe="rows read remotely without access rewriting",
                calls=("execute_local",),
                receiver_mode="remote",
            ),
            SourceSpec(
                kind="rows",
                describe="rows fetched without an effective user",
                calls=("execute_fetch",),
                receiver_mode="remote",
                require_no_user=True,
            ),
        ),
        sinks=(
            SinkSpec(label="cross-peer transfer", calls=("transfer",)),
            SinkSpec(label="cross-peer broadcast", calls=("broadcast",)),
        ),
        sanitizers=("rewrite_rows",),
        guards=_ACCESS_GUARDS,
    ),
    TaintSpec(
        name="request",
        sources=(
            SourceSpec(
                kind="request",
                describe="tenant-controlled serving-request payload",
                attrs=(
                    ("request", "sql"),
                    ("request", "payload"),
                    ("req", "sql"),
                    ("req", "payload"),
                ),
            ),
        ),
        sinks=(
            SinkSpec(
                label="metalog append",
                calls=("append", "receive"),
                receiver_tokens=_LOG_TOKENS,
            ),
            SinkSpec(
                label="certificate issuance",
                calls=("issue", "install"),
            ),
        ),
        sanitizers=("rewrite_rows",),
        guards=_ACCESS_GUARDS + _CERT_GUARDS,
    ),
    TaintSpec(
        name="credential",
        sources=(
            SourceSpec(
                kind="credential",
                describe="unverified peer certificate",
                attrs=(("", "certificate"),),
            ),
        ),
        sinks=(
            SinkSpec(
                label="certificate issuance/installation",
                calls=("issue", "install"),
            ),
            SinkSpec(
                label="metalog append",
                calls=("append", "receive"),
                receiver_tokens=_LOG_TOKENS,
            ),
        ),
        guards=_CERT_GUARDS,
    ),
)

_CLOCK_CALLS = ("time", "monotonic", "perf_counter", "time_ns")
_RANDOM_CALLS = (
    "random", "randint", "randrange", "uniform", "gauss", "getrandbits",
    "choice", "shuffle", "sample", "randbytes",
)
_SCHEDULE_SINKS = (
    SinkSpec(
        label="event-queue timestamp",
        calls=("push", "schedule"),
        positions=(0, "kw:when"),
    ),
    SinkSpec(
        label="fault-plan seed",
        calls=("FaultPlan",),
        positions=(0, "kw:seed"),
    ),
    SinkSpec(
        label="RNG seed",
        calls=("Random", "seed"),
        positions=(0, "kw:seed"),
    ),
)

SIM005_SPECS: Tuple[TaintSpec, ...] = (
    TaintSpec(
        name="wall-clock",
        sources=(
            SourceSpec(
                kind="clock",
                describe="wall-clock reading",
                calls=_CLOCK_CALLS,
                receiver_mode="exact",
                receiver_names=("time", ""),
            ),
            SourceSpec(
                kind="clock",
                describe="wall-clock reading",
                calls=("now", "utcnow"),
                receiver_mode="exact",
                receiver_names=("datetime", "datetime.datetime", "dt"),
            ),
        ),
        sinks=_SCHEDULE_SINKS,
    ),
    TaintSpec(
        name="global-random",
        sources=(
            SourceSpec(
                kind="random",
                describe="global-random value",
                calls=_RANDOM_CALLS,
                receiver_mode="exact",
                receiver_names=("random", ""),
            ),
        ),
        sinks=_SCHEDULE_SINKS,
    ),
)


def _sink_text(hit: TaintHit) -> str:
    call = hit.sink_call
    prefix = f"{call.receiver}." if call.receiver else ""
    return f"{prefix}{call.callee_name}(...)"


class _TaintRule(ProjectRule):
    """Shared driver: run spec bundles, attach traces to findings."""

    specs: Tuple[TaintSpec, ...] = ()
    advice: str = ""

    def _origin_in_scope(self, graph: ProjectGraph, engine, hit) -> bool:
        """Only sources in the rule's own file categories taint: a test
        calling ``execute_local`` directly exercises the local executor,
        it is not a tenant-controlled product flow."""
        flow = engine.flows.get(hit.origin_qual)
        if flow is None:
            return True
        module = graph.modules.get(flow.module)
        if module is None:
            return True
        return categorize(module.path) in self.categories

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        engine = TaintEngine.for_graph(graph)
        for spec in self.specs:
            for hit in engine.run(spec):
                module = graph.modules.get(hit.sink_module)
                if module is None:
                    continue
                if not self._origin_in_scope(graph, engine, hit):
                    continue
                finding = self.project_finding(
                    module,
                    hit.sink_call.anchor_lineno,
                    hit.sink_call.anchor_col,
                    f"{hit.origin_desc} flows into {_sink_text(hit)} "
                    f"[{hit.sink.label}] — {self.advice}",
                )
                finding.trace = hit.trace
                yield finding


@register_rule
class TenantValueFlowRule(_TaintRule):
    id = "SEC003"
    severity = Severity.ERROR
    description = (
        "tenant-controlled value (unrewritten rows, request payload, "
        "unverified certificate) flows into a privileged sink with no "
        "access check or verification on the flow (§4.4 value-level)"
    )
    categories = ("src",)
    specs = SEC003_SPECS
    advice = (
        "rewrite through AccessController / verify the certificate before "
        "this value reaches the sink"
    )
    rationale = (
        "SEC001 proves only that a call *path* exists from an unrewritten "
        "fetch to the wire; it cannot tell whether the fetched rows are "
        "the value that crosses.  BestPeer++ §4.4 promises every value "
        "leaving a peer was rewritten for the requesting role, bootstrap "
        "admits nothing derived from an unverified certificate, and the "
        "metalog replays on the standby, so a tenant-controlled record "
        "appended there executes twice.  SEC003 tracks the actual values "
        "— through assignments, containers, self attributes, and calls — "
        "and fires only when one reaches a privileged sink unsanitized, "
        "attaching the source-to-sink hop list as evidence."
    )
    example_violation = (
        "class RemotePeer:\n"
        "    def execute_local(self, sql):\n"
        "        return [sql]\n"
        "\n"
        "def relay(peer, net, dst):\n"
        "    rows = peer.execute_local('select * from t')\n"
        "    net.transfer('here', dst, rows)\n"
    )
    example_clean = (
        "class RemotePeer:\n"
        "    def execute_local(self, sql):\n"
        "        return [sql]\n"
        "\n"
        "class AccessController:\n"
        "    def rewrite_rows(self, rows):\n"
        "        return []\n"
        "\n"
        "def relay(peer, controller, net, dst):\n"
        "    rows = controller.rewrite_rows(\n"
        "        peer.execute_local('select * from t'))\n"
        "    net.transfer('here', dst, rows)\n"
    )


@register_rule
class ScheduleTaintRule(_TaintRule):
    id = "SIM005"
    severity = Severity.ERROR
    description = (
        "wall-clock or global-random value flows into an EventQueue "
        "timestamp or a FaultPlan/RNG seed — replay determinism breaks"
    )
    categories = ("src",)
    specs = SIM005_SPECS
    advice = (
        "derive the value from the sim clock / a seeded Random held by "
        "the component"
    )
    rationale = (
        "Seeded chaos runs must replay the exact same event sequence; the "
        "event kernel orders everything by (timestamp, insertion).  A "
        "timestamp derived from time.time() — even laundered through "
        "arithmetic or a helper's return value — or a FaultPlan/Random "
        "seeded from the wall clock makes two runs of the same seed "
        "diverge.  SIM001/SIM002 flag the calls where they occur; SIM005 "
        "follows the value and fires where it enters the scheduling "
        "boundary, which survives refactors that move the call far from "
        "the push site."
    )
    example_violation = (
        "import time\n"
        "\n"
        "def kickoff(queue):\n"
        "    deadline = time.time() + 5.0\n"
        "    queue.push(deadline, 'boot')\n"
    )
    example_clean = (
        "def kickoff(queue, clock):\n"
        "    deadline = clock.now_s() + 5.0\n"
        "    queue.push(deadline, 'boot')\n"
    )
