"""Determinism rules: SIM001 (global RNG), SIM002 (wall clock),
SIM003 (set-iteration order), SIM004 (id()/hash-order leaks).

The chaos-equivalence harness (PR 1) asserts that seeded runs replay
row-identical answers; each rule here encodes one way that guarantee has
historically been broken in P2P simulators.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.asthelpers import (
    ImportMap,
    SetTypes,
    enclosing_class_of,
    function_scopes,
    is_name,
    scope_body_walk,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileContext, Rule, register_rule


@register_rule
class GlobalRandomRule(Rule):
    """SIM001: the module-level ``random`` functions share one hidden,
    unseeded global state; any use makes runs irreproducible.  Construct a
    ``random.Random(seed)`` instance and thread it explicitly."""

    id = "SIM001"
    severity = Severity.ERROR
    description = (
        "global/unseeded `random` use; construct random.Random(seed) instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    for alias in node.names:
                        if alias.name not in ("Random", "SystemRandom"):
                            yield self.finding(
                                ctx,
                                node,
                                f"`from random import {alias.name}` binds the "
                                "shared global RNG; import random.Random and "
                                "seed an instance",
                            )
                        elif alias.name == "SystemRandom":
                            yield self.finding(
                                ctx,
                                node,
                                "SystemRandom draws OS entropy and can never "
                                "be seeded; use random.Random(seed)",
                            )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                base = node.func.value
                if (
                    isinstance(base, ast.Name)
                    and imports.module_of(base.id) == "random"
                ):
                    if node.func.attr == "Random":
                        continue
                    if node.func.attr == "SystemRandom":
                        yield self.finding(
                            ctx,
                            node,
                            "SystemRandom draws OS entropy and can never be "
                            "seeded; use random.Random(seed)",
                        )
                        continue
                    yield self.finding(
                        ctx,
                        node,
                        f"`random.{node.func.attr}(...)` uses the shared "
                        "global RNG; use a seeded random.Random instance",
                    )


#: time-module functions that read or burn wall-clock time.
_WALL_CLOCK_TIME_FUNCS = {
    "time",
    "time_ns",
    "sleep",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "localtime",
    "gmtime",
    "process_time",
    "process_time_ns",
}

_WALL_CLOCK_DATETIME_FUNCS = {"now", "utcnow", "today"}


@register_rule
class WallClockRule(Rule):
    """SIM002: simulated latency must come from ``repro.sim.clock`` — a
    wall-clock read makes results depend on the machine running them."""

    id = "SIM002"
    severity = Severity.ERROR
    description = (
        "wall-clock read (time.time/sleep, datetime.now); use the sim clock"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                origin = imports.member_origin(func.id)
                if origin is not None:
                    module, member = origin
                    if module == "time" and member in _WALL_CLOCK_TIME_FUNCS:
                        yield self.finding(
                            ctx,
                            node,
                            f"`{func.id}(...)` (time.{member}) reads the wall "
                            "clock; use SimClock / simulated durations",
                        )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            # time.<fn>()
            if (
                isinstance(base, ast.Name)
                and imports.module_of(base.id) == "time"
                and func.attr in _WALL_CLOCK_TIME_FUNCS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"`time.{func.attr}(...)` reads the wall clock; use "
                    "SimClock / simulated durations",
                )
                continue
            if func.attr not in _WALL_CLOCK_DATETIME_FUNCS:
                continue
            # datetime.datetime.now() / datetime.date.today()
            if (
                isinstance(base, ast.Attribute)
                and base.attr in ("datetime", "date")
                and isinstance(base.value, ast.Name)
                and imports.module_of(base.value.id) == "datetime"
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"`datetime.{base.attr}.{func.attr}()` reads the wall "
                    "clock; use SimClock",
                )
                continue
            # from datetime import datetime; datetime.now()
            if isinstance(base, ast.Name):
                origin = imports.member_origin(base.id)
                if origin is not None and origin[0] == "datetime":
                    yield self.finding(
                        ctx,
                        node,
                        f"`{base.id}.{func.attr}()` reads the wall clock; "
                        "use SimClock",
                    )


#: Consumers for which iteration order genuinely doesn't matter.
_ORDER_INSENSITIVE_CALLS = {
    "sorted",
    "sum",
    "max",
    "min",
    "any",
    "all",
    "len",
    "set",
    "frozenset",
}

#: Consumers that freeze the arbitrary set order into an ordered value.
_ORDER_FREEZING_CALLS = {"list", "tuple", "iter", "enumerate"}


@register_rule
class SetIterationRule(Rule):
    """SIM003: a ``set``'s iteration order depends on PYTHONHASHSEED, so a
    set iterated into any ordered result (list, loop with ordered effects)
    varies run to run.  Iterate ``sorted(the_set)`` instead; Python dicts
    are insertion-ordered and stay deterministic, so they are exempt."""

    id = "SIM003"
    severity = Severity.ERROR
    description = (
        "nondeterministic set iteration feeding ordered results; wrap in "
        "sorted(...)"
    )
    categories = ("src", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        classes = enclosing_class_of(ctx.tree)
        for scope in function_scopes(ctx.tree):
            cls = classes.get(id(scope)) if not isinstance(scope, ast.Module) else None
            types = SetTypes(scope, enclosing_class=cls)
            for node in scope_body_walk(scope):
                yield from self._check_node(ctx, node, types)
            # Comprehensions and lambdas live inside the scope's statements
            # (scope_body_walk yields them); nested defs get their own pass.

    def _check_node(
        self, ctx: FileContext, node: ast.AST, types: SetTypes
    ) -> Iterator[Finding]:
        if isinstance(node, ast.For):
            if types.is_set(node.iter):
                yield self.finding(
                    ctx,
                    node.iter,
                    "for-loop over a set: iteration order varies run to "
                    "run; iterate sorted(...) or annotate why order cannot "
                    "matter",
                )
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            kind = "list" if isinstance(node, ast.ListComp) else "dict"
            for gen in node.generators:
                if types.is_set(gen.iter):
                    yield self.finding(
                        ctx,
                        gen.iter,
                        f"{kind} comprehension over a set freezes an "
                        "arbitrary order into the result; iterate "
                        "sorted(...)",
                    )
        elif isinstance(node, ast.GeneratorExp):
            consumer = self._consumer_name(ctx, node)
            if consumer in _ORDER_INSENSITIVE_CALLS:
                return
            for gen in node.generators:
                if types.is_set(gen.iter):
                    yield self.finding(
                        ctx,
                        gen.iter,
                        "generator over a set feeds an order-sensitive "
                        "consumer; iterate sorted(...)",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_FREEZING_CALLS
                and node.args
                and types.is_set(node.args[0])
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"`{func.id}(...)` freezes a set's arbitrary order; use "
                    "sorted(...)",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and node.args
                and types.is_set(node.args[0])
            ):
                yield self.finding(
                    ctx,
                    node,
                    "joining a set concatenates in arbitrary order; join "
                    "sorted(...)",
                )

    @staticmethod
    def _consumer_name(ctx: FileContext, node: ast.GeneratorExp) -> Optional[str]:
        parent = ctx.parent(node)
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and node in parent.args
        ):
            return parent.func.id
        return None


@register_rule
class IdentityOrderRule(Rule):
    """SIM004: ``id()`` is a memory address and ``hash()`` of str varies
    with PYTHONHASHSEED; either used as an ordering key or emitted into a
    result ties the output to one process execution.

    One use of ``id()`` *is* deterministic-safe and stays unflagged: an
    identity-map key (``cache[id(node)]``, ``cache.get(id(node))``,
    ``seen.add(id(x))``, ``id(x) in seen``) never orders anything and never
    leaves the process.
    """

    id = "SIM004"
    severity = Severity.ERROR
    description = "id()/hash() ordering leaks process-specific values"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                if is_name(node.func, "id"):
                    if not self._is_identity_map_key(ctx, node):
                        yield self.finding(
                            ctx,
                            node,
                            "id() is a memory address, different every run; "
                            "key on a stable identifier instead",
                        )
                    continue
                for keyword in node.keywords:
                    if keyword.arg != "key":
                        continue
                    if is_name(keyword.value, "hash", "id"):
                        yield self.finding(
                            ctx,
                            keyword.value,
                            f"sorting with key={keyword.value.id} orders by a "
                            "per-process value; key on the data itself",
                        )
                    elif isinstance(keyword.value, ast.Lambda) and any(
                        isinstance(inner, ast.Call)
                        and is_name(inner.func, "hash", "id")
                        for inner in ast.walk(keyword.value)
                    ):
                        yield self.finding(
                            ctx,
                            keyword.value,
                            "sort key calls hash()/id(): per-process order; "
                            "key on the data itself",
                        )

    @staticmethod
    def _is_identity_map_key(ctx: FileContext, node: ast.Call) -> bool:
        parent = ctx.parent(node)
        if isinstance(parent, ast.Subscript) and parent.slice is node:
            return True
        if isinstance(parent, ast.Dict) and node in parent.keys:
            return True
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Attribute)
            and parent.func.attr
            in ("get", "setdefault", "pop", "add", "discard", "remove")
            and parent.args
            and parent.args[0] is node
        ):
            return True
        if (
            isinstance(parent, ast.Compare)
            and parent.left is node
            and all(isinstance(op, (ast.In, ast.NotIn)) for op in parent.ops)
        ):
            return True
        return False
