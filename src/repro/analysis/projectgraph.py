"""Whole-program view: module import graph + conservative call graph.

The per-file rules in this package reason about one parse tree at a time,
but BestPeer++'s real invariants are cross-module: §4.4's access-control
rewrite must sit on every path from local storage to the wire, bootstrap
must verify certificates before admitting peers, and every cross-peer hop
must be priced and retry-guarded.  This module builds the shared artifact
those checks need — one :class:`ProjectGraph` per analysis run, constructed
from the same :class:`FileContext` objects the file rules already use, so
the whole tree is parsed exactly once.

The call graph is deliberately conservative and name-based, in the spirit
of a reviewable lint rather than a type checker:

* ``f()`` resolves through the lexical scope chain, then module-level
  classes (to ``__init__``), then ``from m import f`` aliases;
* ``self.m()`` / ``cls.m()`` resolves to the enclosing class's method when
  it has one, otherwise to *every* method named ``m`` in the project;
* ``alias.m()`` where ``alias`` came from ``from pkg import module``
  resolves inside that module;
* any other ``recv.m()`` resolves to every method named ``m`` anywhere —
  an over-approximation that can only make the security rules stricter;
* a function *referenced* (not called) as a call argument gets an edge
  from the caller, so ``call_resilient(peer, fetch_one)`` both links
  ``fetch_one`` into the graph and marks it as a resilience-covered root.

Everything is deterministic: modules are processed in sorted path order
and every export is sorted before emission.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.asthelpers import ImportMap
from repro.analysis.registry import FileContext

#: Pseudo-function name holding a module's top-level statements.
MODULE_SCOPE = "<module>"


def module_name_for_path(path: str) -> str:
    """Dotted module name for a file path, rooted at the ``repro`` package.

    Paths outside a ``repro`` tree (multi-file test fixtures) fall back to
    the path itself, dotted, so fixture imports still resolve.
    """
    parts = [part for part in path.replace("\\", "/").split("/") if part]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path


def unit_of(module_name: str) -> str:
    """The architectural unit a module belongs to.

    ``repro.core.peer`` → ``core``; a root module like ``repro.errors`` is
    its own unit (``errors``); non-repro fixtures use their first component.
    """
    parts = module_name.split(".")
    if parts[0] == "repro" and len(parts) > 1:
        return parts[1]
    return parts[0]


@dataclass
class ModuleNode:
    """One scanned file, as a node in the import graph."""

    name: str
    path: str
    category: str
    tree: ast.Module
    lines: List[str]
    is_package: bool

    @property
    def unit(self) -> str:
        return unit_of(self.name)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


@dataclass(frozen=True)
class ImportEdge:
    """``src`` imports ``dst`` at ``lineno`` (repro-internal targets only)."""

    src: str
    dst: str
    lineno: int
    type_checking_only: bool


@dataclass(frozen=True)
class FunctionNode:
    """A function, method, or a module's top-level pseudo-function.

    Qualnames look like ``repro.core.peer:NormalPeer.execute_fetch``,
    ``repro.core.engine_basic:_fetch_table.fetch_one`` (nested), or
    ``repro.errors:<module>`` (top-level code).
    """

    qualname: str
    module: str
    name: str
    cls: Optional[str]
    lineno: int


@dataclass
class CallSite:
    """One syntactic call, with whatever resolution the graph managed."""

    caller: str  # qualname of the enclosing function scope
    module: str
    callee_name: str  # bare name at the call site (``m`` in ``recv.m()``)
    receiver: Optional[str]  # rendered receiver expression, None for ``f()``
    lineno: int
    col: int
    node: ast.Call
    resolved: Tuple[str, ...] = ()
    func_ref_args: Tuple[str, ...] = ()
    #: Whether ``resolved`` came from a reliable resolution (lexical
    #: scope, imports, same-class self-call, or a project-unique method
    #: name) rather than the any-method-of-this-name fallback.
    precise: bool = False
    #: Whether ``resolved`` came from the any-method-of-this-name fallback
    #: at all — a *unique* fallback match is still ``precise`` for the
    #: reachability rules, but effect inference refuses to propagate
    #: through it unless the receiver text names the candidate's class
    #: (``pending.append(...)`` must not inherit ``MetadataLog.append``'s
    #: replication effects just because the method name is unique).
    via_fallback: bool = False


@dataclass
class AttrAssign:
    """One mutation of ``<expr>.attr`` (assignment, item write, or delete).

    Beyond plain ``x.attr = value``, this records ``x.attr[k] = v`` /
    ``x.attr[k] += v`` / ``del x.attr[k]`` (``via_subscript=True``) and
    ``x.attr += v`` / ``del x.attr`` — every syntactic way a statement can
    mutate state hanging off an attribute.  Used by the admission-order
    check (SEC002) and the WAL-confinement check (RES002).
    """

    caller: str
    module: str
    target: str  # rendered receiver expression
    attr: str
    lineno: int
    col: int
    value_is_none: bool
    via_subscript: bool = False


def _type_checking_import_ids(tree: ast.Module) -> Set[int]:
    """ids of Import/ImportFrom nodes guarded by ``if TYPE_CHECKING:``."""
    guarded: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = (
            test.attr
            if isinstance(test, ast.Attribute)
            else getattr(test, "id", None)
        )
        if name != "TYPE_CHECKING":
            continue
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, (ast.Import, ast.ImportFrom)):
                    guarded.add(id(inner))
    return guarded


class ProjectGraph:
    """Import graph + call graph over one set of parsed files."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleNode] = {}
        self.import_edges: List[ImportEdge] = []
        self.functions: Dict[str, FunctionNode] = {}
        self.call_sites: List[CallSite] = []
        self.attr_assigns: List[AttrAssign] = []
        # caller qualname -> callee qualnames (resolved + referenced).
        # ``precise_edges`` is the subset whose resolution is reliable
        # (lexical scope, imports, same-class self-calls, or a method name
        # unique in the whole project); the rest come from the any-method-
        # of-this-name fallback and exist only to over-approximate.
        self.edges: Dict[str, Set[str]] = {}
        self.reverse_edges: Dict[str, Set[str]] = {}
        self.precise_edges: Dict[str, Set[str]] = {}
        self.reverse_precise_edges: Dict[str, Set[str]] = {}
        # resolution indexes
        self._defs_in_scope: Dict[str, Dict[str, str]] = {}
        self._parent_scope: Dict[str, Optional[str]] = {}
        self._classes: Dict[str, Dict[str, Dict[str, str]]] = {}
        self._methods_by_name: Dict[str, Set[str]] = {}
        self._import_maps: Dict[str, ImportMap] = {}
        #: Optional AstCache the engine attaches so downstream analyses
        #: (the dataflow summaries) can persist per-module artifacts.
        self.ast_cache = None
        #: Per-run scratch space for analyses memoized on this graph.
        self.memo: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "ProjectGraph":
        graph = cls()
        ordered = sorted(contexts, key=lambda ctx: ctx.path)
        for ctx in ordered:
            graph._add_module(ctx)
        for ctx in ordered:
            graph._collect_defs(graph.modules[module_name_for_path(ctx.path)])
        for ctx in ordered:
            mod = graph.modules[module_name_for_path(ctx.path)]
            graph._collect_imports(mod)
            graph._collect_calls(mod)
        return graph

    def _add_module(self, ctx: FileContext) -> None:
        name = module_name_for_path(ctx.path)
        self.modules[name] = ModuleNode(
            name=name,
            path=ctx.path,
            category=ctx.category,
            tree=ctx.tree,
            lines=list(ctx.lines),
            is_package=ctx.path.endswith("__init__.py"),
        )
        self._import_maps[name] = ImportMap(ctx.tree)

    def _module_scope(self, module_name: str) -> str:
        return f"{module_name}:{MODULE_SCOPE}"

    def _add_function(self, node: FunctionNode) -> None:
        self.functions[node.qualname] = node
        self._defs_in_scope.setdefault(node.qualname, {})

    def _collect_defs(self, mod: ModuleNode) -> None:
        scope = self._module_scope(mod.name)
        self._add_function(
            FunctionNode(scope, mod.name, MODULE_SCOPE, None, 0)
        )
        self._parent_scope[scope] = None
        self._classes.setdefault(mod.name, {})

        def walk(
            node: ast.AST,
            path: List[str],
            direct_cls: Optional[str],
            res_scope: str,
        ) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{mod.name}:{'.'.join(path + [child.name])}"
                    self._add_function(
                        FunctionNode(
                            qual, mod.name, child.name, direct_cls, child.lineno
                        )
                    )
                    self._parent_scope[qual] = res_scope
                    if direct_cls is None:
                        self._defs_in_scope.setdefault(res_scope, {})[
                            child.name
                        ] = qual
                    else:
                        self._classes[mod.name].setdefault(direct_cls, {})[
                            child.name
                        ] = qual
                        self._methods_by_name.setdefault(
                            child.name, set()
                        ).add(qual)
                    walk(child, path + [child.name], None, qual)
                elif isinstance(child, ast.ClassDef):
                    walk(child, path + [child.name], child.name, res_scope)
                else:
                    walk(child, path, direct_cls, res_scope)

        walk(mod.tree, [], None, scope)

    # ------------------------------------------------------------------
    # imports

    def _lookup_module(
        self, name: str, allow_unknown_repro: bool = False
    ) -> Optional[str]:
        if name in self.modules:
            return name
        if allow_unknown_repro and name and name.split(".")[0] == "repro":
            return name
        return None

    def _import_targets(
        self, mod: ModuleNode, node: ast.AST
    ) -> Iterator[str]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = self._lookup_module(
                    alias.name, allow_unknown_repro=True
                )
                if target is not None:
                    yield target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                package = mod.name.split(".")
                if not mod.is_package:
                    package = package[:-1]
                strip = node.level - 1
                if strip:
                    package = package[: len(package) - strip]
                base = ".".join(package + ([node.module] if node.module else []))
            for alias in node.names:
                target = None
                if alias.name != "*":
                    target = self._lookup_module(f"{base}.{alias.name}")
                if target is None:
                    target = self._lookup_module(
                        base, allow_unknown_repro=True
                    )
                if target is not None:
                    yield target

    def _collect_imports(self, mod: ModuleNode) -> None:
        guarded = _type_checking_import_ids(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target in self._import_targets(mod, node):
                if target == mod.name:
                    continue
                self.import_edges.append(
                    ImportEdge(
                        src=mod.name,
                        dst=target,
                        lineno=node.lineno,
                        type_checking_only=id(node) in guarded,
                    )
                )

    # ------------------------------------------------------------------
    # calls

    def scope_chain(self, scope: str) -> Iterator[str]:
        """``scope`` followed by its lexically enclosing function scopes,
        ending at the module's ``<module>`` pseudo-function."""
        current: Optional[str] = scope
        while current is not None:
            yield current
            current = self._parent_scope.get(current)

    def _resolve_bare_name(
        self, name: str, scope: str, module: str
    ) -> Optional[str]:
        for enclosing in self.scope_chain(scope):
            found = self._defs_in_scope.get(enclosing, {}).get(name)
            if found is not None:
                return found
        local_classes = self._classes.get(module, {})
        if name in local_classes:
            return local_classes[name].get("__init__")
        origin = self._import_maps[module].member_origin(name)
        if origin is not None:
            src_module, member = origin
            target = self._lookup_module(src_module)
            if target is not None:
                found = self._defs_in_scope.get(
                    self._module_scope(target), {}
                ).get(member)
                if found is not None:
                    return found
                target_classes = self._classes.get(target, {})
                if member in target_classes:
                    return target_classes[member].get("__init__")
        return None

    def _resolve_attr_call(
        self,
        receiver: ast.expr,
        attr: str,
        enclosing_cls: Optional[str],
        module: str,
    ) -> Tuple[List[str], bool, bool]:
        """Resolve ``recv.attr(...)``; returns (callees, precise, fallback)."""
        if isinstance(receiver, ast.Name):
            if receiver.id in ("self", "cls") and enclosing_cls is not None:
                methods = self._classes.get(module, {}).get(enclosing_cls, {})
                if attr in methods:
                    return [methods[attr]], True, False
            origin = self._import_maps[module].member_origin(receiver.id)
            if origin is not None:
                candidate = f"{origin[0]}.{origin[1]}"
                target = self._lookup_module(candidate)
                if target is not None:
                    found = self._defs_in_scope.get(
                        self._module_scope(target), {}
                    ).get(attr)
                    if found is not None:
                        return [found], True, False
                    target_classes = self._classes.get(target, {})
                    if attr in target_classes:
                        init = target_classes[attr].get("__init__")
                        return ([init] if init else []), True, False
        # Conservative fallback: every method of this name, project-wide.
        # A name exactly one class defines is still a reliable resolution;
        # an ambiguous one (``execute``, ``run``) over-approximates only.
        candidates = sorted(self._methods_by_name.get(attr, ()))
        return candidates, len(candidates) == 1, True

    def _add_edge(self, caller: str, callee: str, precise: bool) -> None:
        self.edges.setdefault(caller, set()).add(callee)
        self.reverse_edges.setdefault(callee, set()).add(caller)
        if precise:
            self.precise_edges.setdefault(caller, set()).add(callee)
            self.reverse_precise_edges.setdefault(callee, set()).add(caller)

    def _function_ref(
        self,
        arg: ast.expr,
        scope: str,
        enclosing_cls: Optional[str],
        module: str,
    ) -> Optional[str]:
        """Resolve a call *argument* that names a function, if it does."""
        if isinstance(arg, ast.Name):
            return self._resolve_bare_name(arg.id, scope, module)
        if (
            isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.value.id in ("self", "cls")
            and enclosing_cls is not None
        ):
            methods = self._classes.get(module, {}).get(enclosing_cls, {})
            return methods.get(arg.attr)
        return None

    def _collect_calls(self, mod: ModuleNode) -> None:
        module_scope = self._module_scope(mod.name)

        def walk(
            node: ast.AST,
            scope: str,
            direct_cls: Optional[str],
            method_cls: Optional[str],
        ) -> None:
            # ``direct_cls``: class whose body we are lexically inside
            # (decides method-ness of defs); ``method_cls``: class of the
            # *method scope* we are executing in (decides what ``self`` is).
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = self._qualname_of(child, scope, direct_cls, mod)
                    walk(
                        child,
                        qual,
                        None,
                        direct_cls if direct_cls is not None else method_cls,
                    )
                    continue
                if isinstance(child, ast.ClassDef):
                    walk(child, scope, child.name, method_cls)
                    continue
                if isinstance(child, ast.Call):
                    self._record_call(child, scope, method_cls, mod)
                elif isinstance(child, ast.Assign):
                    self._record_attr_assigns(child, scope, mod)
                elif isinstance(child, (ast.AugAssign, ast.Delete)):
                    self._record_other_mutations(child, scope, mod)
                walk(child, scope, direct_cls, method_cls)

        walk(mod.tree, module_scope, None, None)

    def _qualname_of(
        self,
        funcdef: ast.AST,
        scope: str,
        direct_cls: Optional[str],
        mod: ModuleNode,
    ) -> str:
        name = funcdef.name  # type: ignore[attr-defined]
        if direct_cls is not None:
            return f"{mod.name}:{direct_cls}.{name}"
        if scope.endswith(f":{MODULE_SCOPE}"):
            return f"{mod.name}:{name}"
        return f"{scope}.{name}"

    def _record_call(
        self,
        node: ast.Call,
        scope: str,
        method_cls: Optional[str],
        mod: ModuleNode,
    ) -> None:
        func = node.func
        receiver_text: Optional[str] = None
        resolved: List[str] = []
        precise = True
        via_fallback = False
        if isinstance(func, ast.Name):
            callee_name = func.id
            found = self._resolve_bare_name(callee_name, scope, mod.name)
            if found is not None:
                resolved = [found]
        elif isinstance(func, ast.Attribute):
            callee_name = func.attr
            try:
                receiver_text = ast.unparse(func.value)
            except Exception:
                receiver_text = "<expr>"
            resolved, precise, via_fallback = self._resolve_attr_call(
                func.value, callee_name, method_cls, mod.name
            )
        else:
            return  # a call on a call result — nothing nameable to track
        refs: List[str] = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            ref = self._function_ref(arg, scope, method_cls, mod.name)
            if ref is not None:
                refs.append(ref)
        site = CallSite(
            caller=scope,
            module=mod.name,
            callee_name=callee_name,
            receiver=receiver_text,
            lineno=node.lineno,
            col=node.col_offset,
            node=node,
            resolved=tuple(resolved),
            func_ref_args=tuple(refs),
            precise=precise,
            via_fallback=via_fallback,
        )
        self.call_sites.append(site)
        for callee in resolved:
            self._add_edge(scope, callee, precise)
        for ref in refs:
            self._add_edge(scope, ref, True)

    def _record_attr_assigns(
        self, node: ast.Assign, scope: str, mod: ModuleNode
    ) -> None:
        value_is_none = (
            isinstance(node.value, ast.Constant) and node.value.value is None
        )
        for target in node.targets:
            self._record_mutation_target(
                target, scope, mod, node.lineno, node.col_offset,
                value_is_none,
            )

    def _record_other_mutations(
        self, node: ast.AST, scope: str, mod: ModuleNode
    ) -> None:
        """Capture ``x.attr += v`` / ``x.attr[k] += v`` / ``del x.attr[k]``."""
        if isinstance(node, ast.AugAssign):
            targets: List[ast.expr] = [node.target]
        else:
            targets = list(node.targets)  # type: ignore[attr-defined]
        for target in targets:
            self._record_mutation_target(
                target, scope, mod, node.lineno, node.col_offset, False
            )

    def _record_mutation_target(
        self,
        target: ast.expr,
        scope: str,
        mod: ModuleNode,
        lineno: int,
        col: int,
        value_is_none: bool,
    ) -> None:
        via_subscript = False
        if isinstance(target, ast.Subscript):
            # ``x.attr[k] = ...`` mutates the container held in ``x.attr``.
            if not isinstance(target.value, ast.Attribute):
                return
            target = target.value
            via_subscript = True
        if not isinstance(target, ast.Attribute):
            return
        try:
            target_text = ast.unparse(target.value)
        except Exception:
            target_text = "<expr>"
        self.attr_assigns.append(
            AttrAssign(
                caller=scope,
                module=mod.name,
                target=target_text,
                attr=target.attr,
                lineno=lineno,
                col=col,
                value_is_none=value_is_none,
                via_subscript=via_subscript,
            )
        )

    # ------------------------------------------------------------------
    # queries

    def functions_reaching(
        self, callee_names: Set[str], precise_only: bool = False
    ) -> Set[str]:
        """Functions from which a call to any of ``callee_names`` is
        reachable (transitively, through the resolved call graph).

        Direct call sites seed the set by *name* regardless of resolution;
        ``precise_only`` restricts the transitive step to reliably resolved
        edges — use it when membership grants a permission ("this function
        does check access"), where ambiguous edges would grant it by
        accident.  Leave it off when membership raises suspicion ("this
        function can reach the wire"), where over-approximation is safe.
        """
        reverse = (
            self.reverse_precise_edges if precise_only else self.reverse_edges
        )
        reaching: Set[str] = set()
        work: List[str] = []
        for site in self.call_sites:
            if site.callee_name in callee_names and site.caller not in reaching:
                reaching.add(site.caller)
                work.append(site.caller)
        while work:
            fn = work.pop()
            for caller in reverse.get(fn, ()):
                if caller not in reaching:
                    reaching.add(caller)
                    work.append(caller)
        return reaching

    def functions_reachable_from(
        self, roots: Set[str], precise_only: bool = False
    ) -> Set[str]:
        """Forward closure: ``roots`` plus everything they (transitively)
        call or reference (see ``functions_reaching`` for ``precise_only``)."""
        forward = self.precise_edges if precise_only else self.edges
        reachable = set(roots)
        work = sorted(roots)
        while work:
            fn = work.pop()
            for callee in forward.get(fn, ()):
                if callee not in reachable:
                    reachable.add(callee)
                    work.append(callee)
        return reachable

    def module_of_function(self, qualname: str) -> Optional[ModuleNode]:
        node = self.functions.get(qualname)
        if node is None:
            return None
        return self.modules.get(node.module)

    # ------------------------------------------------------------------
    # export

    def _merged_import_edges(self) -> List[Tuple[str, str, bool]]:
        """(src, dst, type_checking_only) with duplicates merged; an edge
        is TYPE_CHECKING-only iff *every* occurrence is guarded."""
        merged: Dict[Tuple[str, str], bool] = {}
        for edge in self.import_edges:
            key = (edge.src, edge.dst)
            merged[key] = merged.get(key, True) and edge.type_checking_only
        return [
            (src, dst, guarded)
            for (src, dst), guarded in sorted(merged.items())
        ]

    def to_dot(self) -> str:
        lines = [
            "digraph repro_imports {",
            "  rankdir=LR;",
            "  node [shape=box, fontsize=10];",
        ]
        by_unit: Dict[str, List[str]] = {}
        for name in sorted(self.modules):
            by_unit.setdefault(self.modules[name].unit, []).append(name)
        for unit in sorted(by_unit):
            lines.append(f'  subgraph "cluster_{unit}" {{')
            lines.append(f'    label="{unit}";')
            for name in by_unit[unit]:
                lines.append(f'    "{name}";')
            lines.append("  }")
        for src, dst, guarded in self._merged_import_edges():
            style = " [style=dashed]" if guarded else ""
            lines.append(f'  "{src}" -> "{dst}"{style};')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def to_json_dict(self) -> Dict[str, object]:
        calls = sorted(
            {
                (caller, callee)
                for caller, callees in self.edges.items()
                for callee in callees
            }
        )
        return {
            "version": 1,
            "modules": [
                {
                    "name": node.name,
                    "path": node.path,
                    "category": node.category,
                    "unit": node.unit,
                }
                for node in (
                    self.modules[name] for name in sorted(self.modules)
                )
            ],
            "imports": [
                {
                    "src": src,
                    "dst": dst,
                    "type_checking_only": guarded,
                }
                for src, dst, guarded in self._merged_import_edges()
            ],
            "functions": sorted(self.functions),
            "calls": [[caller, callee] for caller, callee in calls],
        }
