"""``# repro: allow[RULE]`` suppression comments.

Grammar (inside any comment)::

    # repro: allow[SIM002]                       one rule
    # repro: allow[SIM002,ISO002]                several rules
    # repro: allow[SIM003] singleton set         trailing free-form reason

An inline comment suppresses findings on its own physical line; a comment
that stands alone on a line suppresses the next non-comment, non-blank
line (so multi-line statements can be annotated above).  Comments are found
with :mod:`tokenize`, so the pattern inside a string literal is inert.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Optional, Set, Tuple

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_,\s]+)\]\s*(?P<reason>.*)$"
)


class SuppressionIndex:
    """Per-line map of which rules are allowed, built from one file."""

    def __init__(self, source: str) -> None:
        # line -> set of rule ids allowed on that line
        self._by_line: Dict[int, Set[str]] = {}
        self._reasons: Dict[Tuple[int, str], str] = {}
        self.parse_failed = False
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            self.parse_failed = True
            return

        lines = source.splitlines()
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if match is None:
                continue
            rules = {
                rule.strip().upper()
                for rule in match.group("rules").split(",")
                if rule.strip()
            }
            if not rules:
                continue
            lineno = token.start[0]
            line_text = lines[lineno - 1] if lineno <= len(lines) else ""
            standalone = line_text.lstrip().startswith("#")
            target = lineno
            if standalone:
                target = self._next_code_line(lines, lineno)
            self._by_line.setdefault(target, set()).update(rules)
            reason = match.group("reason").strip().lstrip("-— ").strip()
            for rule in sorted(rules):
                if reason:
                    self._reasons[(target, rule)] = reason

    @staticmethod
    def _next_code_line(lines, comment_lineno: int) -> int:
        for offset, text in enumerate(lines[comment_lineno:], start=1):
            stripped = text.strip()
            if stripped and not stripped.startswith("#"):
                return comment_lineno + offset
        return comment_lineno  # trailing comment: nothing to attach to

    def allows(self, lineno: int, rule: str) -> bool:
        return rule.upper() in self._by_line.get(lineno, set())

    def reason(self, lineno: int, rule: str) -> Optional[str]:
        return self._reasons.get((lineno, rule.upper()))

    def __len__(self) -> int:
        return sum(len(rules) for rules in self._by_line.values())
