"""Finding and severity types shared by every rule."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break determinism or cost accounting outright;
    ``WARNING`` findings are hazards that need a human look.  Both fail the
    run — severity is reporting metadata, not a gate — because a warning
    left to rot becomes the stray nondeterminism PR 1's harness can't
    explain.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    # The stripped source line, used for baseline matching (line numbers
    # drift; the offending text rarely does).
    snippet: str = ""
    suppressed: bool = False
    baselined: bool = False
    justification: Optional[str] = None
    #: For dataflow findings: the source-to-sink hop list, each hop a
    #: ``(path, line, note)`` triple with the source first.
    trace: Tuple[Tuple[str, int, str], ...] = ()
    #: Rule-specific structured extras (the effect rules attach the
    #: offending function's inferred signature here); carried verbatim
    #: into the JSON report and each SARIF result's ``properties``.
    properties: Dict[str, object] = field(default_factory=dict)

    @property
    def reported(self) -> bool:
        """Whether this finding should fail the run."""
        return not (self.suppressed or self.baselined)

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }
        if self.justification is not None:
            payload["justification"] = self.justification
        if self.trace:
            payload["trace"] = [
                {"path": path, "line": line, "note": note}
                for path, line, note in self.trace
            ]
        if self.properties:
            payload["properties"] = dict(self.properties)
        return payload

    def render(self) -> str:
        tags = []
        if self.suppressed:
            tags.append("suppressed")
        if self.baselined:
            tags.append("baselined")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity.value}: {self.message}{suffix}"
        )
        for path, line, note in self.trace:
            text += f"\n    flow: {path}:{line}: {note}"
        return text
