"""Render an :class:`~repro.analysis.engine.AnalysisReport` for humans or CI."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.engine import AnalysisReport


def to_json(report: AnalysisReport, include_clean: bool = False) -> str:
    """Machine-readable output for the CI gate.

    ``findings`` holds only findings that fail the run; the suppressed and
    baselined ones appear (with their justifications) under ``accepted``
    when ``include_clean`` is set, so a reviewer can audit every exception
    from one artifact.
    """
    payload: Dict[str, object] = {
        "version": 1,
        "files_scanned": report.files_scanned,
        "counts": {
            "total": len(report.findings),
            "reported": len(report.reported),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
        },
        "ok": report.ok,
        "findings": [finding.to_dict() for finding in report.reported],
    }
    if include_clean:
        payload["accepted"] = [
            finding.to_dict()
            for finding in report.findings
            if not finding.reported
        ]
    if report.baseline is not None:
        payload["baseline"] = {
            "entries": len(report.baseline),
            "stale": [
                entry.to_dict() for entry in report.baseline.stale_entries()
            ],
        }
    return json.dumps(payload, indent=2)


def to_text(report: AnalysisReport, verbose: bool = False) -> str:
    """Human-readable file:line:col listing plus a one-line summary."""
    lines: List[str] = []
    for finding in report.reported:
        lines.append(finding.render())
    if verbose:
        for finding in report.findings:
            if finding.reported:
                continue
            reason = f" ({finding.justification})" if finding.justification else ""
            lines.append(f"{finding.render()}{reason}")
    if report.baseline is not None:
        stale = report.baseline.stale_entries()
        if stale:
            lines.append("")
            lines.append(
                f"note: {len(stale)} baseline entr"
                f"{'y is' if len(stale) == 1 else 'ies are'} stale (the "
                "offending code is gone); prune analysis-baseline.json:"
            )
            for entry in stale:
                lines.append(f"  - {entry.rule} {entry.path}: {entry.match!r}")
    summary = (
        f"{report.files_scanned} files scanned: "
        f"{len(report.reported)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined"
    )
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)
