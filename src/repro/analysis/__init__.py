"""Static analysis guarding the reproduction's load-bearing invariants.

The whole evaluation strategy rests on the simulated cluster being
*deterministic* (seeded chaos runs must replay row-identical answers) and
on the cost model being *honest* (every cross-peer byte is priced through
:class:`~repro.sim.network.SimNetwork`).  Neither invariant is enforced by
the type system — one stray ``random.random()``, ``time.time()``, unsorted
``set`` iteration, or a direct peer-to-peer row fetch silently breaks them.

This package is a stdlib-``ast`` linter that encodes those invariants as
rules.  The per-file rules check one parse tree at a time; the
*interprocedural* rules run on a whole-program import/call graph
(:mod:`repro.analysis.projectgraph`) built once per run from the same
parsed contexts:

========  ==================================================================
SIM001    global / unseeded ``random`` module use
SIM002    wall clock (``time.time``/``sleep``, ``datetime.now``) instead of
          the sim clock
SIM003    nondeterministic ``set`` iteration feeding ordered results
SIM004    ``id()`` / hash-order leaking into outputs
ISO001    cross-object reach into another component's private state
ISO002    row-moving peer calls that bypass ``SimNetwork`` byte accounting
CFG001    config keys read with inline literal defaults that can drift
          from ``repro.core.config``
SIM005    wall-clock / global-random *values* flowing into EventQueue
          timestamps or FaultPlan/RNG seeds (dataflow)
SEC001    rows fetched without access rewriting reaching a cross-peer
          transfer with no role check on the path (§4.4 taint)
SEC002    peers admitted / credentialed before certificate verification
SEC003    tenant-controlled values (rows, request payloads, certificates)
          flowing into privileged sinks unsanitized (§4.4 dataflow, with
          source→sink traces)
RES001    cross-peer call sites not covered by a RetryPolicy/deadline
          context from ``repro.core.resilience``
RES004    call sites through which NetworkError-family exceptions escape
          to an entry point with no coverage on the propagation path
PERF001   ``RowLayout.resolve`` called inside a loop over rows (hoist the
          position lookup or compile via ``repro.sqlengine.compile``)
PERF002   per-row evaluator call inside a rows-loop of a module that
          declares vectorized kernels (batch via ``sqlengine.vectorize``)
ARCH001   imports violating the layering contract (``sim``/``sqlengine``/
          ``baton`` depend only on ``errors``; ``analysis`` is stdlib-only)
PURE001   effects (clock, randomness, I/O, network, shared mutation)
          reachable from compiled evaluators / executor kernels (effects)
DET003    wall-clock / real-I/O / global-random effects reachable from
          EventQueue handlers and ``repro.sim`` callbacks (effects)
ATOM001   bootstrap-metadata mutation paired with a network send that
          bypasses the ``metalog`` WAL reducer (effects)
========  ==================================================================

The ``effects`` rows run on the fourth tier — interprocedural effect
inference (:mod:`repro.analysis.effects`), which assigns every function a
``{wallclock, global_random, real_io, network_send, mutates, raises}``
signature by SCC fixpoint over the call graph; query it directly with
``python -m repro.analysis effects --who-touches clock``.

Usage::

    python -m repro.analysis src tests benchmarks
    python -m repro.analysis --json src
    python -m repro.analysis --list-rules
    python -m repro.analysis graph --format dot src
    python -m repro.analysis effects --who-touches clock src

Deliberate exceptions are either annotated in the source with
``# repro: allow[RULE] reason`` or grandfathered in the committed
``analysis-baseline.json`` with a one-line justification.
"""

from repro.analysis.astcache import AstCache
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import (
    AnalysisReport,
    Analyzer,
    analyze_paths,
    analyze_project,
    analyze_source,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.projectgraph import ProjectGraph
from repro.analysis.registry import (
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register_rule,
)

# Importing the rule modules registers the built-in rule set.
from repro.analysis import determinism as _determinism  # noqa: F401
from repro.analysis import isolation as _isolation  # noqa: F401
from repro.analysis import configrules as _configrules  # noqa: F401
from repro.analysis import archrules as _archrules  # noqa: F401
from repro.analysis import securityrules as _securityrules  # noqa: F401
from repro.analysis import resiliencerules as _resiliencerules  # noqa: F401
from repro.analysis import perfrules as _perfrules  # noqa: F401
from repro.analysis import dataflowrules as _dataflowrules  # noqa: F401
from repro.analysis import exceptionflow as _exceptionflow  # noqa: F401
from repro.analysis import effectrules as _effectrules  # noqa: F401

__all__ = [
    "AnalysisReport",
    "Analyzer",
    "AstCache",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ProjectGraph",
    "ProjectRule",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "get_rule",
    "register_rule",
]
