"""Static analysis guarding the reproduction's two load-bearing invariants.

The whole evaluation strategy rests on the simulated cluster being
*deterministic* (seeded chaos runs must replay row-identical answers) and
on the cost model being *honest* (every cross-peer byte is priced through
:class:`~repro.sim.network.SimNetwork`).  Neither invariant is enforced by
the type system — one stray ``random.random()``, ``time.time()``, unsorted
``set`` iteration, or a direct peer-to-peer row fetch silently breaks them.

This package is a small stdlib-``ast`` linter that encodes those invariants
as rules:

========  ==================================================================
SIM001    global / unseeded ``random`` module use
SIM002    wall clock (``time.time``/``sleep``, ``datetime.now``) instead of
          the sim clock
SIM003    nondeterministic ``set`` iteration feeding ordered results
SIM004    ``id()`` / hash-order leaking into outputs
ISO001    cross-object reach into another component's private state
ISO002    row-moving peer calls that bypass ``SimNetwork`` byte accounting
CFG001    config keys read with inline literal defaults that can drift
          from ``repro.core.config``
========  ==================================================================

Usage::

    python -m repro.analysis src tests benchmarks
    python -m repro.analysis --json src
    python -m repro.analysis --list-rules

Deliberate exceptions are either annotated in the source with
``# repro: allow[RULE] reason`` or grandfathered in the committed
``analysis-baseline.json`` with a one-line justification.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import AnalysisReport, Analyzer, analyze_paths, analyze_source
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, all_rules, get_rule, register_rule

# Importing the rule modules registers the built-in rule set.
from repro.analysis import determinism as _determinism  # noqa: F401
from repro.analysis import isolation as _isolation  # noqa: F401
from repro.analysis import configrules as _configrules  # noqa: F401

__all__ = [
    "AnalysisReport",
    "Analyzer",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "register_rule",
]
