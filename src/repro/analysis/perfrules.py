"""Performance rules: PERF001 and PERF002 (per-row work in hot loops).

Expression compilation (:mod:`repro.sqlengine.compile`) exists precisely to
hoist :meth:`RowLayout.resolve` out of per-row code: positions are looked up
once against the layout and baked into closures.  Calling ``resolve`` inside
a loop over rows reintroduces the dictionary lookup the compiler removed —
an O(rows) cost that is invisible in correctness tests and silently erodes
the measured speedups guarded by ``benchmarks/perf_baseline.json``
(PERF001).  Vectorization (:mod:`repro.sqlengine.vectorize`) raises the bar
again: a module that declares batch kernels has already paid for
whole-column evaluation, so dropping back to a per-row ``evaluate()`` loop
in that module forfeits the batch speedup one tuple at a time (PERF002).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileContext, Rule, register_rule

#: Climbing stops here: a resolve inside a nested function or lambda runs on
#: that function's schedule, not once per iteration of the enclosing loop.
_SCOPE_BOUNDARIES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
)

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)


def _tail_name(node: ast.AST) -> Optional[str]:
    """The final identifier of a Name or dotted Attribute, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_layout(node: ast.AST) -> bool:
    name = _tail_name(node)
    return name is not None and "layout" in name.lower()


def _is_row_name(name: str) -> bool:
    low = name.lower()
    return low.endswith("row") or low.endswith("record")


def _target_names(target: ast.AST) -> Iterable[str]:
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            yield node.id


def _iterates_rows(iter_node: ast.AST) -> bool:
    """Does any identifier in the iterable expression look like a row set?"""
    for node in ast.walk(iter_node):
        name = _tail_name(node)
        if name is not None:
            low = name.lower()
            if "rows" in low or "records" in low:
                return True
    return False


def _loops_over_rows(target: ast.AST, iter_node: ast.AST) -> bool:
    if any(_is_row_name(name) for name in _target_names(target)):
        return True
    return _iterates_rows(iter_node)


def _enclosing_row_loop(ctx: FileContext, node: ast.AST) -> Optional[ast.AST]:
    """Nearest enclosing rows-loop in the same function scope, if any."""
    current = ctx.parent(node)
    while current is not None and not isinstance(current, _SCOPE_BOUNDARIES):
        if isinstance(current, ast.For) and _loops_over_rows(
            current.target, current.iter
        ):
            return current
        if isinstance(current, _COMPREHENSIONS):
            for comp in current.generators:
                if _loops_over_rows(comp.target, comp.iter):
                    return current
        current = ctx.parent(current)
    return None


@register_rule
class PerRowResolveRule(Rule):
    """PERF001: ``layout.resolve(...)`` evaluated once per row.

    Column positions are loop-invariant — the layout does not change while
    rows are streamed.  Resolve before the loop (bind the position to a
    local) or lower the whole expression with
    :func:`repro.sqlengine.compile.compile_evaluator`.
    """

    id = "PERF001"
    severity = Severity.WARNING
    description = (
        "RowLayout.resolve() inside a loop over rows; resolve once before "
        "the loop or compile the expression"
    )
    categories = ("src", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "resolve"
                and _is_layout(node.func.value)
            ):
                continue
            loop = _enclosing_row_loop(ctx, node)
            if loop is not None:
                yield self.finding(
                    ctx,
                    node,
                    "layout.resolve() re-resolves a column on every row of "
                    "this loop; hoist the position lookup above the loop or "
                    "compile the expression (repro.sqlengine.compile)",
                )


def _declares_vector_kernel(tree: ast.AST) -> bool:
    """Does this module define any vector-named function or class?"""
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and "vector" in node.name.lower():
            return True
    return False


@register_rule
class PerRowEvaluatorInVectorModuleRule(Rule):
    """PERF002: per-row ``evaluate()`` loop in a module with batch kernels.

    A module that declares vectorized kernels (any def or class whose name
    mentions ``vector``) has a batch path for expression evaluation.
    Calling an evaluator once per row of a rows-loop in such a module pays
    interpreter dispatch per tuple — exactly the cost the kernels exist to
    amortize — and typically marks a leftover scalar path that should lower
    through :func:`repro.sqlengine.vectorize.compile_vector_evaluator` (or
    delegate to the reference executor, whose module makes the trade-off
    explicit).
    """

    id = "PERF002"
    severity = Severity.WARNING
    description = (
        "per-row evaluator call inside a loop over rows in a module that "
        "declares vectorized kernels; evaluate the whole batch instead"
    )
    categories = ("src", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _declares_vector_kernel(ctx.tree):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _tail_name(node.func)
            if name is None or "evaluat" not in name.lower():
                continue
            loop = _enclosing_row_loop(ctx, node)
            if loop is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() runs once per row of this loop, but this "
                    "module declares vectorized kernels; lower the "
                    "expression once and evaluate the column batch "
                    "(repro.sqlengine.vectorize)",
                )
