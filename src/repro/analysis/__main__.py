"""Command-line entry point: ``python -m repro.analysis [paths]``.

Three modes:

* lint (default) — run the rule set over the paths;
* ``graph`` — build the whole-program import/call graph only and export it
  (``python -m repro.analysis graph --format json|dot [paths]``);
* ``effects`` — run tier-4 effect inference and query the signatures
  (``python -m repro.analysis effects --who-touches clock``,
  ``... effects --signature repro.sim.events.EventQueue.run``).

Exit codes: 0 clean, 1 findings (or stale baseline entries under
``--strict-baseline``), 2 usage/internal error — including, under
``--strict-baseline``, baseline entries whose justification is still the
``--write-baseline`` placeholder: an unreviewed suppression is a
configuration error, not a finding.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.astcache import AstCache
from repro.analysis.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.analysis.engine import Analyzer, analyze_source
from repro.analysis.registry import AnalysisError, all_rules, get_rule
from repro.analysis.report import to_json, to_text
from repro.analysis.sarif import to_sarif

DEFAULT_PATHS = ["src", "tests", "benchmarks"]
DEFAULT_GRAPH_PATHS = ["src"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism, sim-isolation & whole-program linter for the "
            "BestPeer++ reproduction."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report (for CI)"
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed and baselined findings",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings "
            f"(default: ./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write current findings to the baseline file and exit 0; each "
            "entry then needs a hand-written justification"
        ),
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help=(
            "fail when the baseline needs attention: exit 1 when entries "
            "no longer match anything, exit 2 when any entry still "
            "carries the --write-baseline placeholder justification"
        ),
    )
    parser.add_argument(
        "--ast-cache",
        metavar="DIR",
        help="directory caching parsed ASTs across runs (lint + graph share it)",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "after the run, drop baseline entries that matched nothing "
            "(fixed code) and rewrite the baseline file"
        ),
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="also write a SARIF 2.1.0 report to FILE (for code scanning)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help=(
            "print one rule's rationale plus a minimal violating and a "
            "clean example (both are run through the analyzer), then exit"
        ),
    )
    return parser


def _build_graph_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis graph",
        description=(
            "Export the whole-program module-import and call graph that "
            "the interprocedural rules (SEC001/SEC002/RES001/ARCH001) run on."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to graph "
            f"(default: {' '.join(DEFAULT_GRAPH_PATHS)})"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("dot", "json"),
        default="dot",
        help="output format (default: dot)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write to FILE instead of stdout",
    )
    parser.add_argument(
        "--ast-cache",
        metavar="DIR",
        help="directory caching parsed ASTs across runs (lint + graph share it)",
    )
    return parser


#: Friendly aliases for ``effects --who-touches``.
WHO_TOUCHES_ALIASES = {
    "clock": "wallclock",
    "wallclock": "wallclock",
    "random": "global_random",
    "global_random": "global_random",
    "io": "real_io",
    "real_io": "real_io",
    "network": "network_send",
    "network_send": "network_send",
}


def _build_effects_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis effects",
        description=(
            "Infer every function's effect signature (tier 4) and query "
            "the result: who can touch the clock, what may this function "
            "do, and through which call chain."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to analyze "
            f"(default: {' '.join(DEFAULT_GRAPH_PATHS)})"
        ),
    )
    parser.add_argument(
        "--who-touches",
        metavar="EFFECT",
        choices=sorted(WHO_TOUCHES_ALIASES),
        help=(
            "list functions whose signature contains the effect "
            f"({', '.join(sorted(set(WHO_TOUCHES_ALIASES)))}) with a "
            "witness call chain each"
        ),
    )
    parser.add_argument(
        "--signature",
        metavar="FUNCTION",
        help=(
            "print one function's inferred signature (dotted form, e.g. "
            "repro.sim.events.EventQueue.run)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write to FILE instead of stdout",
    )
    parser.add_argument(
        "--ast-cache",
        metavar="DIR",
        help="directory caching parsed ASTs across runs (all modes share it)",
    )
    return parser


def _make_cache(directory: Optional[str]) -> Optional[AstCache]:
    if directory is None:
        return None
    try:
        return AstCache(directory)
    except OSError as exc:
        raise AnalysisError(
            f"cannot use AST cache directory {directory!r}: {exc}"
        ) from exc


def _select_rules(selector: str) -> List:
    known = {rule.id: rule for rule in all_rules()}
    selected = []
    for raw in selector.split(","):
        rule_id = raw.strip().upper()
        if not rule_id:
            continue
        if rule_id not in known:
            raise AnalysisError(
                f"unknown rule id: {rule_id!r} "
                f"(valid ids: {', '.join(sorted(known))})"
            )
        selected.append(known[rule_id])
    return selected


def _indent(text: str, prefix: str = "    ") -> str:
    return "\n".join(
        f"{prefix}{line}" if line else "" for line in text.splitlines()
    )


def explain_main(rule_id: str) -> int:
    """``--explain RULE``: rationale plus a verified example pair.

    Both examples are actually run through the analyzer with just this
    rule: the violating one must fire and the clean one must not, so the
    printed documentation can never silently rot.
    """
    rule = get_rule(rule_id.strip().upper())
    print(f"{rule.id} [{rule.severity}] — {rule.description}")
    print()
    if rule.rationale:
        print("Why this matters:")
        print(_indent(rule.rationale, "  "))
        print()
    if not rule.example_violation or not rule.example_clean:
        print("(no worked examples recorded for this rule)")
        return 0

    def fires(source: str) -> bool:
        findings = analyze_source(
            source, path=rule.example_path, category="src", rules=[rule]
        )
        return any(f.rule == rule.id for f in findings)

    bad_fires = fires(rule.example_violation)
    clean_fires = fires(rule.example_clean)
    print(f"Violation ({'fires' if bad_fires else 'DOES NOT FIRE — stale example!'}):")
    print(_indent(rule.example_violation))
    print()
    print(f"Clean ({'quiet' if not clean_fires else 'FIRES — stale example!'}):")
    print(_indent(rule.example_clean))
    if not bad_fires or clean_fires:
        print()
        print(f"error: {rule.id}'s examples are out of date", file=sys.stderr)
        return 2
    return 0


def graph_main(argv: List[str]) -> int:
    parser = _build_graph_parser()
    args = parser.parse_args(argv)
    try:
        analyzer = Analyzer(rules=[], ast_cache=_make_cache(args.ast_cache))
        graph = analyzer.build_graph(args.paths or DEFAULT_GRAPH_PATHS)
        if args.format == "json":
            rendered = json.dumps(graph.to_json_dict(), indent=2) + "\n"
        else:
            rendered = graph.to_dot()
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            print(
                f"wrote {args.format} graph of {len(graph.modules)} "
                f"module(s) to {args.out}"
            )
        else:
            sys.stdout.write(rendered)
        return 0
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _witness_dicts(inference, hops) -> List[dict]:
    from repro.analysis.effects import short_qual

    rendered = []
    for i, (qual, lineno, note) in enumerate(hops):
        module = inference.graph.module_of_function(qual)
        text = (
            f"{short_qual(qual)} {note}"
            if i + 1 < len(hops)
            else f"{short_qual(qual)}: {note}"
        )
        rendered.append(
            {
                "path": module.path if module is not None else "<unknown>",
                "line": lineno,
                "note": text,
            }
        )
    return rendered


def effects_main(argv: List[str]) -> int:
    from repro.analysis.effects import (
        EFFECT_TAG,
        EffectInference,
        dotted_qual,
        parse_dotted_qual,
    )

    parser = _build_effects_parser()
    args = parser.parse_args(argv)
    try:
        analyzer = Analyzer(rules=[], ast_cache=_make_cache(args.ast_cache))
        graph = analyzer.build_graph(args.paths or DEFAULT_GRAPH_PATHS)
        graph.ast_cache = analyzer.ast_cache
        inference = EffectInference.for_graph(graph)

        lines: List[str] = []
        payload: dict = {"version": EFFECT_TAG}
        if args.signature:
            qual = parse_dotted_qual(args.signature, inference.bases)
            if qual is None:
                raise AnalysisError(
                    f"unknown function: {args.signature!r} (use the dotted "
                    "form, e.g. repro.sim.events.EventQueue.run)"
                )
            signature = inference.signature(qual)
            payload["function"] = dotted_qual(qual)
            payload["signature"] = signature.to_dict()
            lines.append(f"{dotted_qual(qual)}  {signature.render()}")
        elif args.who_touches:
            kind = WHO_TOUCHES_ALIASES[args.who_touches]
            matches = []
            for qual in sorted(inference.bases):
                if not inference.has_effect(qual, lambda a: a[0] == kind):
                    continue
                hops = inference.witness(qual, lambda a: a[0] == kind)
                matches.append(
                    {
                        "function": dotted_qual(qual),
                        "signature": inference.signature(qual).to_dict(),
                        "witness": _witness_dicts(inference, hops or []),
                    }
                )
                lines.append(
                    f"{dotted_qual(qual)}  "
                    f"{inference.signature(qual).render()}"
                )
                for hop in _witness_dicts(inference, hops or []):
                    lines.append(
                        f"    via: {hop['path']}:{hop['line']}: {hop['note']}"
                    )
            payload["effect"] = kind
            payload["functions"] = matches
            lines.append(
                f"{len(matches)} function(s) can touch {kind} "
                f"(of {len(inference.bases)})"
            )
        else:
            impure = {}
            pure_count = 0
            for qual in sorted(inference.bases):
                signature = inference.signature(qual)
                if signature.pure and not signature.raises:
                    pure_count += 1
                    continue
                impure[dotted_qual(qual)] = signature.to_dict()
                lines.append(f"{dotted_qual(qual)}  {signature.render()}")
            payload["functions"] = impure
            payload["pure"] = pure_count
            payload["total"] = len(inference.bases)
            lines.append(
                f"{len(impure)} function(s) with effects, {pure_count} pure, "
                f"{len(inference.bases)} total"
            )

        if args.format == "json":
            rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        else:
            rendered = "\n".join(lines) + "\n"
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            print(f"wrote effect signatures to {args.out}")
        else:
            sys.stdout.write(rendered)
        return 0
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "graph":
        return graph_main(argv[1:])
    if argv and argv[0] == "effects":
        return effects_main(argv[1:])

    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            categories = ",".join(rule.categories)
            print(f"{rule.id}  [{rule.severity}] ({categories}) {rule.description}")
        return 0

    try:
        if args.explain:
            return explain_main(args.explain)

        rules = None
        if args.select:
            rules = _select_rules(args.select)

        baseline_path = args.baseline or DEFAULT_BASELINE_NAME
        baseline = None
        if not args.no_baseline and not args.write_baseline:
            if args.baseline is not None or os.path.exists(baseline_path):
                baseline = Baseline.load(baseline_path)

        paths = args.paths or DEFAULT_PATHS
        report = Analyzer(
            rules=rules,
            baseline=baseline,
            ast_cache=_make_cache(args.ast_cache),
        ).run(paths)

        if args.write_baseline:
            new_baseline = Baseline.from_findings(report.findings)
            new_baseline.save(baseline_path)
            print(
                f"wrote {len(new_baseline)} entr"
                f"{'y' if len(new_baseline) == 1 else 'ies'} to "
                f"{baseline_path}; add a justification to each"
            )
            return 0

        if args.prune_baseline:
            if baseline is None:
                raise AnalysisError(
                    "--prune-baseline needs a baseline file "
                    f"(none found at {baseline_path!r})"
                )
            stale = baseline.prune()
            if stale:
                baseline.save(baseline_path)
                print(
                    f"pruned {len(stale)} stale entr"
                    f"{'y' if len(stale) == 1 else 'ies'} from "
                    f"{baseline_path}:"
                )
                for entry in stale:
                    print(f"  - {entry.rule} {entry.path}: {entry.match!r}")
            else:
                print(f"{baseline_path}: no stale entries")

        if args.sarif:
            sarif_rules = rules if rules is not None else all_rules()
            with open(args.sarif, "w", encoding="utf-8") as handle:
                handle.write(to_sarif(report, sarif_rules))
                handle.write("\n")

        if args.json:
            print(to_json(report, include_clean=args.verbose))
        else:
            print(to_text(report, verbose=args.verbose))

        placeholders = (
            baseline.placeholder_entries() if baseline is not None else []
        )
        if placeholders:
            print(
                f"{len(placeholders)} baseline entr"
                f"{'y' if len(placeholders) == 1 else 'ies'} still "
                "unjustified (placeholder from --write-baseline):",
                file=sys.stderr,
            )
            for entry in placeholders:
                print(
                    f"  - {entry.rule} {entry.path}: {entry.match!r}",
                    file=sys.stderr,
                )
        if args.strict_baseline and placeholders:
            return 2
        if not report.ok:
            return 1
        if (
            args.strict_baseline
            and baseline is not None
            and baseline.stale_entries()
        ):
            return 1
        return 0
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
