"""Command-line entry point: ``python -m repro.analysis [paths]``.

Exit codes: 0 clean, 1 findings (or stale baseline entries under
``--strict-baseline``), 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.analysis.engine import Analyzer
from repro.analysis.registry import AnalysisError, all_rules, get_rule
from repro.analysis.report import to_json, to_text

DEFAULT_PATHS = ["src", "tests", "benchmarks"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism & sim-isolation linter for the BestPeer++ "
            "reproduction."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report (for CI)"
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed and baselined findings",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings "
            f"(default: ./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write current findings to the baseline file and exit 0; each "
            "entry then needs a hand-written justification"
        ),
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail (exit 1) when baseline entries no longer match anything",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            categories = ",".join(rule.categories)
            print(f"{rule.id}  [{rule.severity}] ({categories}) {rule.description}")
        return 0

    try:
        rules = None
        if args.select:
            rules = [
                get_rule(rule_id.strip().upper())
                for rule_id in args.select.split(",")
                if rule_id.strip()
            ]

        baseline_path = args.baseline or DEFAULT_BASELINE_NAME
        baseline = None
        if not args.no_baseline and not args.write_baseline:
            if args.baseline is not None or os.path.exists(baseline_path):
                baseline = Baseline.load(baseline_path)

        paths = args.paths or DEFAULT_PATHS
        report = Analyzer(rules=rules, baseline=baseline).run(paths)

        if args.write_baseline:
            new_baseline = Baseline.from_findings(report.findings)
            new_baseline.save(baseline_path)
            print(
                f"wrote {len(new_baseline)} entr"
                f"{'y' if len(new_baseline) == 1 else 'ies'} to "
                f"{baseline_path}; add a justification to each"
            )
            return 0

        if args.json:
            print(to_json(report, include_clean=args.verbose))
        else:
            print(to_text(report, verbose=args.verbose))

        if not report.ok:
            return 1
        if (
            args.strict_baseline
            and baseline is not None
            and baseline.stale_entries()
        ):
            return 1
        return 0
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
