"""Command-line entry point: ``python -m repro.analysis [paths]``.

Two modes:

* lint (default) — run the rule set over the paths;
* ``graph`` — build the whole-program import/call graph only and export it
  (``python -m repro.analysis graph --format json|dot [paths]``).

Exit codes: 0 clean, 1 findings (or stale baseline entries under
``--strict-baseline``), 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.astcache import AstCache
from repro.analysis.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.analysis.engine import Analyzer
from repro.analysis.registry import AnalysisError, all_rules
from repro.analysis.report import to_json, to_text

DEFAULT_PATHS = ["src", "tests", "benchmarks"]
DEFAULT_GRAPH_PATHS = ["src"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism, sim-isolation & whole-program linter for the "
            "BestPeer++ reproduction."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report (for CI)"
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed and baselined findings",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings "
            f"(default: ./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write current findings to the baseline file and exit 0; each "
            "entry then needs a hand-written justification"
        ),
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail (exit 1) when baseline entries no longer match anything",
    )
    parser.add_argument(
        "--ast-cache",
        metavar="DIR",
        help="directory caching parsed ASTs across runs (lint + graph share it)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def _build_graph_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis graph",
        description=(
            "Export the whole-program module-import and call graph that "
            "the interprocedural rules (SEC001/SEC002/RES001/ARCH001) run on."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to graph "
            f"(default: {' '.join(DEFAULT_GRAPH_PATHS)})"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("dot", "json"),
        default="dot",
        help="output format (default: dot)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write to FILE instead of stdout",
    )
    parser.add_argument(
        "--ast-cache",
        metavar="DIR",
        help="directory caching parsed ASTs across runs (lint + graph share it)",
    )
    return parser


def _make_cache(directory: Optional[str]) -> Optional[AstCache]:
    if directory is None:
        return None
    try:
        return AstCache(directory)
    except OSError as exc:
        raise AnalysisError(
            f"cannot use AST cache directory {directory!r}: {exc}"
        ) from exc


def _select_rules(selector: str) -> List:
    known = {rule.id: rule for rule in all_rules()}
    selected = []
    for raw in selector.split(","):
        rule_id = raw.strip().upper()
        if not rule_id:
            continue
        if rule_id not in known:
            raise AnalysisError(
                f"unknown rule id: {rule_id!r} "
                f"(valid ids: {', '.join(sorted(known))})"
            )
        selected.append(known[rule_id])
    return selected


def graph_main(argv: List[str]) -> int:
    parser = _build_graph_parser()
    args = parser.parse_args(argv)
    try:
        analyzer = Analyzer(rules=[], ast_cache=_make_cache(args.ast_cache))
        graph = analyzer.build_graph(args.paths or DEFAULT_GRAPH_PATHS)
        if args.format == "json":
            rendered = json.dumps(graph.to_json_dict(), indent=2) + "\n"
        else:
            rendered = graph.to_dot()
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            print(
                f"wrote {args.format} graph of {len(graph.modules)} "
                f"module(s) to {args.out}"
            )
        else:
            sys.stdout.write(rendered)
        return 0
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "graph":
        return graph_main(argv[1:])

    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            categories = ",".join(rule.categories)
            print(f"{rule.id}  [{rule.severity}] ({categories}) {rule.description}")
        return 0

    try:
        rules = None
        if args.select:
            rules = _select_rules(args.select)

        baseline_path = args.baseline or DEFAULT_BASELINE_NAME
        baseline = None
        if not args.no_baseline and not args.write_baseline:
            if args.baseline is not None or os.path.exists(baseline_path):
                baseline = Baseline.load(baseline_path)

        paths = args.paths or DEFAULT_PATHS
        report = Analyzer(
            rules=rules,
            baseline=baseline,
            ast_cache=_make_cache(args.ast_cache),
        ).run(paths)

        if args.write_baseline:
            new_baseline = Baseline.from_findings(report.findings)
            new_baseline.save(baseline_path)
            print(
                f"wrote {len(new_baseline)} entr"
                f"{'y' if len(new_baseline) == 1 else 'ies'} to "
                f"{baseline_path}; add a justification to each"
            )
            return 0

        if args.json:
            print(to_json(report, include_clean=args.verbose))
        else:
            print(to_text(report, verbose=args.verbose))

        if not report.ok:
            return 1
        if (
            args.strict_baseline
            and baseline is not None
            and baseline.stale_entries()
        ):
            return 1
        return 0
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
