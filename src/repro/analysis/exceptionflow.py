"""RES004: escaping-exception-flow analysis for NetworkError-family errors.

RES001 answers "is this cross-peer *site* under a resilience context?" by
checking the site's lexical scope chain.  That misses the dual failure: a
helper that *is* wrapped on one path (so RES001 stays quiet) but is also
called bare from somewhere else — the ``NetworkError`` raised inside it
then unwinds through callers none of which retry, breaker, or catch.

This rule computes, per function, whether a ``NetworkError``-family
exception can *escape* it: a cross-peer primitive call or an explicit
``raise`` of a family type, not enclosed in a handler that catches the
family, or a call to a function the family escapes from, equally unhandled
— a bottom-up fixpoint over the precise call graph.  It then walks
top-down from *entry points* (functions with no precise callers) marking
functions the escape actually *reaches* with no resilience coverage and no
handler anywhere on the propagation path, and flags each uncaught,
uncovered call site into an escaping callee on such a path.  The finding's
trace walks the witness chain down to the primitive that raises.

Exemptions mirror RES001: ``sim`` (the substrate is the wire),
``mapreduce`` (job re-execution is the fault model), ``analysis`` (no
runtime traffic), and ``repro.core.resilience`` itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.dataflow import iter_function_defs
from repro.analysis.findings import Finding, Severity
from repro.analysis.projectgraph import ProjectGraph
from repro.analysis.registry import ProjectRule, register_rule
from repro.analysis.resiliencerules import (
    EXEMPT_MODULES,
    EXEMPT_UNITS,
    WIRE_METHODS,
    _is_cross_peer,
    _is_wrapper_site,
)

#: The family whose escape we track, plus the types that catch it.
FAMILY_ROOT = "NetworkError"
_BUILTIN_FAMILY = frozenset(
    {"NetworkError", "TransientNetworkError", "RpcTimeoutError"}
)
_FAMILY_ANCESTORS = frozenset(
    {"SimulationError", "ReproError", "Exception", "BaseException"}
)
_REMOTE_CALLEES = frozenset(WIRE_METHODS) | {"execute_fetch", "execute_local"}


def _base_names(node: ast.ClassDef) -> Iterator[str]:
    for base in node.bases:
        if isinstance(base, ast.Name):
            yield base.id
        elif isinstance(base, ast.Attribute):
            yield base.attr


def network_family(graph: ProjectGraph) -> Set[str]:
    """Class names in the NetworkError family, by declared inheritance
    across every scanned module (fixtures included) plus the built-ins."""
    subclasses: Dict[str, Set[str]] = {}
    for name in sorted(graph.modules):
        for node in ast.walk(graph.modules[name].tree):
            if isinstance(node, ast.ClassDef):
                for base in _base_names(node):
                    subclasses.setdefault(base, set()).add(node.name)
    family = set(_BUILTIN_FAMILY)
    work = sorted(family)
    while work:
        cls = work.pop()
        for sub in subclasses.get(cls, ()):
            if sub not in family:
                family.add(sub)
                work.append(sub)
    return family


def _handler_catches(handler: ast.ExceptHandler, family: Set[str]) -> bool:
    if handler.type is None:
        return True  # bare except
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and (
            name in family or name in _FAMILY_ANCESTORS
        ):
            return True
    return False


def _raised_name(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@dataclass
class _CallRecord:
    """One call site inside a function, with its handler context."""

    lineno: int
    col: int
    callee_name: str
    receiver: Optional[str]
    caught: bool  # a family-catching handler encloses the site
    is_primitive: bool  # a cross-peer wire/exec call (RES001 territory)
    is_wrapper: bool  # call_resilient / ResilienceContext.call


@dataclass
class _FuncSummary:
    qualname: str
    module: str
    calls: List[_CallRecord]
    #: (lineno, description) of uncaught local family raises/primitives.
    local_escapes: List[Tuple[int, str]]


def _summarize_function(
    qualname: str,
    module: str,
    body: List[ast.stmt],
    family: Set[str],
) -> _FuncSummary:
    summary = _FuncSummary(qualname, module, [], [])

    def visit_expr(node: ast.AST, caught: bool) -> None:
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            receiver: Optional[str] = None
            if isinstance(func, ast.Attribute):
                callee = func.attr
                try:
                    receiver = ast.unparse(func.value)
                except Exception:
                    receiver = "<expr>"
            elif isinstance(func, ast.Name):
                callee = func.id
            else:
                continue
            is_primitive = (
                receiver is not None
                and receiver not in ("self", "cls")
                and callee in _REMOTE_CALLEES
            )
            is_wrapper = callee == "call_resilient" or (
                callee == "call"
                and receiver is not None
                and "resilience" in receiver
            )
            summary.calls.append(
                _CallRecord(
                    lineno=child.lineno,
                    col=child.col_offset,
                    callee_name=callee,
                    receiver=receiver,
                    caught=caught,
                    is_primitive=is_primitive,
                    is_wrapper=is_wrapper,
                )
            )
            if is_primitive and not caught:
                summary.local_escapes.append(
                    (child.lineno, f"{receiver}.{callee}(...) can raise")
                )

    def visit_body(stmts: List[ast.stmt], caught: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes are their own summaries
            if isinstance(stmt, ast.Try) or (
                stmt.__class__.__name__ == "TryStar"
            ):
                catches = any(
                    _handler_catches(h, family)
                    for h in stmt.handlers  # type: ignore[attr-defined]
                )
                visit_body(stmt.body, caught or catches)  # type: ignore[attr-defined]
                visit_body(stmt.orelse, caught or catches)  # type: ignore[attr-defined]
                for handler in stmt.handlers:  # type: ignore[attr-defined]
                    visit_body(handler.body, caught)
                visit_body(stmt.finalbody, caught)  # type: ignore[attr-defined]
                continue
            if isinstance(stmt, ast.Raise):
                raised = _raised_name(stmt.exc)
                if raised in family and not caught:
                    summary.local_escapes.append(
                        (stmt.lineno, f"raise {raised}")
                    )
                if stmt.exc is not None:
                    visit_expr(stmt.exc, caught)
                continue
            if isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While,
                                 ast.With, ast.AsyncWith)):
                for field_name in ("test", "iter", "target"):
                    value = getattr(stmt, field_name, None)
                    if isinstance(value, ast.expr):
                        visit_expr(value, caught)
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        visit_expr(item.context_expr, caught)
                visit_body(stmt.body, caught)
                visit_body(getattr(stmt, "orelse", []), caught)
                continue
            visit_expr(stmt, caught)

    visit_body(body, False)
    summary.local_escapes.sort()
    return summary


@register_rule
class ExceptionEscapeRule(ProjectRule):
    id = "RES004"
    severity = Severity.WARNING
    description = (
        "call site through which NetworkError-family exceptions escape "
        "to an entry point with no resilience coverage or handler "
        "anywhere on the propagation path"
    )
    categories = ("src",)
    rationale = (
        "RES001 checks each cross-peer site's own lexical scope chain — "
        "so a helper wrapped in call_resilient on one path looks covered "
        "even when a second, bare call path lets its RpcTimeoutError "
        "unwind through callers that never retry or catch.  RES004 "
        "computes which functions the NetworkError family can escape "
        "from (a bottom-up summary over raises, cross-peer primitives "
        "and uncaught calls), then follows the unwind top-down from "
        "entry points and flags the uncovered, unhandled hops, with the "
        "witness chain down to the raising primitive in the trace."
    )
    example_violation = (
        "class Net:\n"
        "    def transfer(self, src, dst, nbytes):\n"
        "        return nbytes\n"
        "\n"
        "def fetch_block(net, dst):\n"
        "    return net.transfer('a', dst, 10)\n"
        "\n"
        "def sync(net):\n"
        "    return fetch_block(net, 'b')\n"
    )
    example_clean = (
        "class Net:\n"
        "    def transfer(self, src, dst, nbytes):\n"
        "        return nbytes\n"
        "\n"
        "class NetworkError(Exception):\n"
        "    pass\n"
        "\n"
        "def fetch_block(net, dst):\n"
        "    return net.transfer('a', dst, 10)\n"
        "\n"
        "def sync(net):\n"
        "    try:\n"
        "        return fetch_block(net, 'b')\n"
        "    except NetworkError:\n"
        "        return None\n"
    )

    def _exempt(self, graph: ProjectGraph, qualname: str) -> bool:
        module_name = qualname.split(":", 1)[0]
        module = graph.modules.get(module_name)
        if module is None:
            return True
        return module.unit in EXEMPT_UNITS or module.name in EXEMPT_MODULES

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        family = network_family(graph)
        summaries: Dict[str, _FuncSummary] = {}
        for name in sorted(graph.modules):
            mod = graph.modules[name]
            for qualname, funcdef, _cls in iter_function_defs(
                mod.name, mod.tree
            ):
                body = (
                    mod.tree.body
                    if funcdef is None
                    else funcdef.body  # type: ignore[attr-defined]
                )
                summaries[qualname] = _summarize_function(
                    qualname, mod.name, list(body), family
                )

        # Resolution: join each record with the graph's call-site index.
        # Chained calls (``x.f().g()``) share one anchor position, so the
        # callee name is part of the key.
        site_index = {
            (site.caller, site.lineno, site.col, site.callee_name): site
            for site in graph.call_sites
        }

        def resolved_callees(qual: str, rec: _CallRecord) -> Tuple[str, ...]:
            site = site_index.get((qual, rec.lineno, rec.col, rec.callee_name))
            if site is None or not site.precise:
                return ()
            return tuple(
                callee
                for callee in sorted(site.resolved)
                if callee in summaries and not self._exempt(graph, callee)
            )

        # Bottom-up: from which functions does the family escape, and why.
        escapes: Set[str] = set()
        witness: Dict[str, Tuple[str, int, str]] = {}
        for qual in sorted(summaries):
            summary = summaries[qual]
            if summary.local_escapes and not self._exempt(graph, qual):
                escapes.add(qual)
                lineno, desc = summary.local_escapes[0]
                witness[qual] = ("prim", lineno, desc)
        changed = True
        while changed:
            changed = False
            for qual in sorted(summaries):
                if qual in escapes:
                    continue
                for rec in summaries[qual].calls:
                    if rec.caught or rec.is_wrapper:
                        continue
                    for callee in resolved_callees(qual, rec):
                        if callee in escapes:
                            escapes.add(qual)
                            witness[qual] = ("call", rec.lineno, callee)
                            changed = True
                            break
                    if qual in escapes:
                        break

        # Resilience coverage, exactly as RES001 computes it.
        roots: Set[str] = set()
        for site in graph.call_sites:
            if _is_wrapper_site(site):
                roots.update(site.func_ref_args)
        covered = graph.functions_reachable_from(roots, precise_only=True)

        def protected(qual: str) -> bool:
            return any(fn in covered for fn in graph.scope_chain(qual))

        # Top-down: which functions does the escape actually reach with
        # no protection on the way from an entry point.
        exposed: Set[str] = set()
        work: List[str] = []
        for qual in sorted(summaries):
            if qual not in graph.reverse_precise_edges and not protected(
                qual
            ):
                exposed.add(qual)
                work.append(qual)
        while work:
            qual = work.pop()
            for rec in summaries[qual].calls:
                if rec.caught or rec.is_wrapper:
                    continue
                for callee in resolved_callees(qual, rec):
                    if callee not in exposed and not protected(callee):
                        exposed.add(callee)
                        work.append(callee)

        def witness_trace(
            start_path: str, start_line: int, callee: str
        ) -> Tuple[Tuple[str, int, str], ...]:
            hops: List[Tuple[str, int, str]] = [
                (start_path, start_line, f"uncovered call into {callee!r}")
            ]
            current = callee
            for _ in range(20):
                module = graph.module_of_function(current)
                step = witness.get(current)
                if step is None or module is None:
                    break
                kind, lineno, detail = step
                if kind == "prim":
                    hops.append((module.path, lineno, detail))
                    break
                hops.append(
                    (module.path, lineno, f"uncaught call into {detail!r}")
                )
                current = detail
            return tuple(hops)

        for qual in sorted(summaries):
            if qual not in exposed or self._exempt(graph, qual):
                continue
            module = graph.modules.get(summaries[qual].module)
            if module is None:
                continue
            for rec in summaries[qual].calls:
                if rec.caught or rec.is_wrapper or rec.is_primitive:
                    continue
                site = site_index.get(
                    (qual, rec.lineno, rec.col, rec.callee_name)
                )
                if site is not None and _is_cross_peer(site):
                    continue  # RES001's territory
                for callee in resolved_callees(qual, rec):
                    if callee not in escapes:
                        continue
                    finding = self.project_finding(
                        module,
                        rec.lineno,
                        rec.col,
                        f"NetworkError-family exceptions escape "
                        f"{callee!r} and propagate through {qual!r} with "
                        f"no resilience coverage or handler on the path "
                        f"— wrap the call or catch the family",
                    )
                    finding.trace = witness_trace(
                        module.path, rec.lineno, callee
                    )
                    yield finding
                    break  # one finding per site
