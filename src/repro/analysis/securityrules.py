"""SEC001/SEC002: interprocedural security rules over the project graph.

**SEC001 — access-control taint (§4.4).**  The paper's promise is that a
peer "will transform [the query] based on u's access role" before any row
leaves it: the enforcement point is ``AccessController.rewrite_rows``,
called from ``NormalPeer.execute_fetch`` when a user is given.  Rows become
*tainted* at any remote ``execute_local(...)`` call (which never rewrites)
or remote ``execute_fetch(...)`` called without a user.  A tainted fetch is
a finding when its function can reach the wire (a ``SimNetwork``
``transfer``/``broadcast``) without any function on its lexical scope chain
also reaching an access check (``rewrite_rows``/``check_readable``/
``can_read``/``rule_for``) — i.e. unmasked rows can cross peers with no
role decision anywhere on the path.

**SEC002 — admission before verification (§3.1).**  Peers must not be
admitted (``register_peer``) or handed credentials (``<x>.certificate =
...``) by code that never consults the certificate authority
(``verify``/``verify_certificate``).  Clearing a certificate
(``= None``) is always fine.

Both rules reason over the conservative whole-program call graph, so a
check performed in a lexically enclosing function (the closure-under-
``call_resilient`` idiom) or in a callee counts.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.projectgraph import CallSite, ProjectGraph
from repro.analysis.registry import ProjectRule, register_rule

#: Methods that put rows on the simulated wire.
WIRE_METHODS = frozenset({"transfer", "broadcast"})
#: Methods that constitute an access-control decision.
ACCESS_CHECK_METHODS = frozenset(
    {"rewrite_rows", "check_readable", "can_read", "rule_for"}
)
#: Methods that consult the certificate authority.
CERT_VERIFY_METHODS = frozenset({"verify", "verify_certificate"})


def _is_local_receiver(receiver: Optional[str]) -> bool:
    return receiver in ("self", "cls")


def _call_kwarg(node: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _fetch_without_user(node: ast.Call) -> bool:
    """``execute_fetch(table, sql, user=..., ...)`` with no effective user.

    The user is the third positional or the ``user=`` keyword; a literal
    ``None`` counts as absent.  A *variable* user is trusted — the rule is
    flow-insensitive and only flags provably unmasked fetches.
    """
    if len(node.args) >= 3:
        user_arg: Optional[ast.expr] = node.args[2]
    else:
        user_arg = _call_kwarg(node, "user")
    if user_arg is None:
        return True
    return isinstance(user_arg, ast.Constant) and user_arg.value is None


def _chain_hits(graph: ProjectGraph, scope: str, reaching: Set[str]) -> bool:
    return any(fn in reaching for fn in graph.scope_chain(scope))


@register_rule
class AccessTaintRule(ProjectRule):
    id = "SEC001"
    severity = Severity.ERROR
    description = (
        "rows fetched without access rewriting can reach a cross-peer "
        "transfer on a path with no role check (§4.4 enforcement bypass)"
    )
    categories = ("src",)

    def _is_taint_source(self, site: CallSite) -> bool:
        if _is_local_receiver(site.receiver) or site.receiver is None:
            return False  # a peer's own local read stays on the peer
        if site.callee_name == "execute_local":
            return True
        if site.callee_name == "execute_fetch":
            return _fetch_without_user(site.node)
        return False

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        # May-reach (suspicion): over-approximate with every edge.
        reaching_wire = graph.functions_reaching(set(WIRE_METHODS))
        # Grants-permission: only reliably resolved edges may vouch that a
        # path performs an access check.
        reaching_check = graph.functions_reaching(
            set(ACCESS_CHECK_METHODS), precise_only=True
        )
        for site in graph.call_sites:
            if not self._is_taint_source(site):
                continue
            if not _chain_hits(graph, site.caller, reaching_wire):
                continue
            if _chain_hits(graph, site.caller, reaching_check):
                continue
            module = graph.modules.get(site.module)
            if module is None:
                continue
            yield self.project_finding(
                module,
                site.lineno,
                site.col,
                f"rows from {site.receiver}.{site.callee_name}(...) are not "
                f"access-rewritten but can reach a network transfer from "
                f"{site.caller!r} without any role check on the path",
            )


@register_rule
class CertificateOrderRule(ProjectRule):
    id = "SEC002"
    severity = Severity.ERROR
    description = (
        "peer admitted or credentialed by code that never consults the "
        "certificate authority (verify/verify_certificate)"
    )
    categories = ("src",)

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        reaching_verify = graph.functions_reaching(
            set(CERT_VERIFY_METHODS), precise_only=True
        )
        for site in graph.call_sites:
            if site.callee_name != "register_peer":
                continue
            if _chain_hits(graph, site.caller, reaching_verify):
                continue
            module = graph.modules.get(site.module)
            if module is None:
                continue
            yield self.project_finding(
                module,
                site.lineno,
                site.col,
                f"{site.caller!r} admits a peer via register_peer but no "
                f"certificate verification is reachable from it",
            )
        for assign in graph.attr_assigns:
            if assign.attr != "certificate" or assign.value_is_none:
                continue
            if assign.target in ("self", "cls"):
                # A peer storing its *own* grant is the receiving side of
                # admission; verification is the issuer's obligation.
                continue
            if _chain_hits(graph, assign.caller, reaching_verify):
                continue
            module = graph.modules.get(assign.module)
            if module is None:
                continue
            yield self.project_finding(
                module,
                assign.lineno,
                assign.col,
                f"{assign.caller!r} hands {assign.target!r} a certificate "
                f"but no certificate verification is reachable from it",
            )
