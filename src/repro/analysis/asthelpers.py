"""Shared AST utilities: import tracking, scopes, set-type inference.

Everything here is deliberately flow-insensitive and local — the rules are
reviewable heuristics, not a type checker.  They only claim something is a
set (or a module alias) when the evidence is in the same file.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple


class ImportMap:
    """Which local names are aliases of which modules / module members."""

    def __init__(self, tree: ast.Module) -> None:
        # name -> module it aliases ("random", "time", "datetime", ...)
        self.module_aliases: Dict[str, str] = {}
        # name -> (module, original member name) for ``from m import x as y``
        self.member_aliases: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    self.module_aliases[alias.asname or top] = top
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.member_aliases[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def module_of(self, name: str) -> Optional[str]:
        return self.module_aliases.get(name)

    def member_origin(self, name: str) -> Optional[Tuple[str, str]]:
        return self.member_aliases.get(name)

    def is_module_alias(self, name: str) -> bool:
        return name in self.module_aliases


def call_receiver(node: ast.Call) -> Optional[ast.expr]:
    """The object a method call is made on, or None for plain calls."""
    if isinstance(node.func, ast.Attribute):
        return node.func.value
    return None


def is_name(node: ast.AST, *names: str) -> bool:
    """Whether ``node`` is a bare name equal to one of ``names``."""
    return isinstance(node, ast.Name) and node.id in names


def function_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield the module plus every function/method definition in it."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def scope_body_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope's own statements without descending into nested defs.

    Nested functions get their own scope from :func:`function_scopes`, so a
    rule that reasons "within one function" must not see their bodies twice
    — and more importantly must not attribute a nested closure's behaviour
    to its enclosing function.
    """
    body = scope.body if isinstance(scope, ast.Module) else scope.body
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


_SET_ANNOTATION_NAMES = {
    "set",
    "frozenset",
    "Set",
    "FrozenSet",
    "MutableSet",
    "AbstractSet",
}

_SET_RETURNING_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):  # Set[str], typing.Set[str]
        target = target.value
    if isinstance(target, ast.Attribute):  # typing.Set
        return target.attr in _SET_ANNOTATION_NAMES
    return isinstance(target, ast.Name) and target.id in _SET_ANNOTATION_NAMES


class SetTypes:
    """Infers which expressions in one scope are sets.

    Sources of evidence: set literals/comprehensions, ``set()`` /
    ``frozenset()`` calls, set-algebra operators over known sets, set-typed
    annotations on assignments and parameters, and ``self.x`` attributes
    the enclosing class annotates or assigns a set to.
    """

    def __init__(
        self,
        scope: ast.AST,
        enclosing_class: Optional[ast.ClassDef] = None,
    ) -> None:
        self._names: Set[str] = set()
        self._self_attrs: Set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                if _annotation_is_set(arg.annotation):
                    self._names.add(arg.arg)
        if enclosing_class is not None:
            self._collect_class_attrs(enclosing_class)
        # Two passes so ``a = set(); b = a`` resolves regardless of order.
        for _ in range(2):
            for node in scope_body_walk(scope):
                if isinstance(node, ast.Assign):
                    if self.is_set(node.value):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                self._names.add(target.id)
                elif isinstance(node, ast.AnnAssign):
                    if isinstance(node.target, ast.Name) and (
                        _annotation_is_set(node.annotation)
                        or (node.value is not None and self.is_set(node.value))
                    ):
                        self._names.add(node.target.id)
                elif isinstance(node, ast.AugAssign):
                    if isinstance(node.target, ast.Name) and self.is_set(node.value):
                        self._names.add(node.target.id)

    def _collect_class_attrs(self, cls: ast.ClassDef) -> None:
        for node in ast.walk(cls):
            if isinstance(node, ast.AnnAssign) and _annotation_is_set(node.annotation):
                if isinstance(node.target, ast.Name):
                    # dataclass-style field declaration
                    self._self_attrs.add(node.target.id)
                elif (
                    isinstance(node.target, ast.Attribute)
                    and is_name(node.target.value, "self")
                ):
                    self._self_attrs.add(node.target.attr)
            elif isinstance(node, ast.Assign) and self.is_set(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and is_name(
                        target.value, "self"
                    ):
                        self._self_attrs.add(target.attr)

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._names
        if isinstance(node, ast.Attribute) and is_name(node.value, "self"):
            return node.attr in self._self_attrs
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_RETURNING_METHODS
            ):
                return self.is_set(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set(node.body) and self.is_set(node.orelse)
        return False


def enclosing_class_of(
    tree: ast.Module,
) -> Dict[int, ast.ClassDef]:
    """Map each function-def's id() to the class directly containing it."""
    mapping: Dict[int, ast.ClassDef] = {}

    def visit(node: ast.AST, cls: Optional[ast.ClassDef]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if cls is not None:
                    mapping[id(child)] = cls
                visit(child, cls)
            else:
                visit(child, cls)

    visit(tree, None)
    return mapping


def class_owned_private_attrs(cls: ast.ClassDef) -> Set[str]:
    """Private names a class touches on ``self`` or defines as methods.

    Used by ISO001's same-class exemption: ``derived._rules`` inside a
    method of ``Role`` is the ordinary build-a-sibling idiom when ``Role``
    itself owns ``_rules``.
    """
    owned: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith("_"):
                owned.add(node.name)
        elif isinstance(node, ast.Attribute) and is_name(node.value, "self"):
            if node.attr.startswith("_"):
                owned.add(node.attr)
    return owned
