"""Peer-isolation rules: ISO001 (cross-object private state) and ISO002
(row movement bypassing SimNetwork byte accounting).

A peer in the simulation stands for a separate machine.  Reaching into
another component's private state, or pulling rows out of a remote peer
without pricing the bytes through :class:`~repro.sim.network.SimNetwork`,
silently breaks the isolation the cost model (Figs. 6-14) depends on.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.asthelpers import (
    ImportMap,
    class_owned_private_attrs,
    enclosing_class_of,
    function_scopes,
    is_name,
    scope_body_walk,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileContext, Rule, register_rule


@register_rule
class CrossObjectPrivateRule(Rule):
    """ISO001: ``other._attr`` reaches into state the owner never exposed —
    for peers, that's one simulated machine holding live references into
    another.  Exemptions: ``self``/``cls`` (own state), module aliases
    (module-private helpers), dunders, and the build-a-sibling idiom where
    the enclosing class itself owns the private name."""

    id = "ISO001"
    severity = Severity.WARNING
    description = (
        "cross-object private-state access; use the owner's public API or "
        "copy through the transfer path"
    )
    categories = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        classes = enclosing_class_of(ctx.tree)
        owned_cache = {}
        for scope in function_scopes(ctx.tree):
            cls = classes.get(id(scope))
            if cls is not None and id(cls) not in owned_cache:
                owned_cache[id(cls)] = class_owned_private_attrs(cls)
            owned = owned_cache.get(id(cls), set()) if cls is not None else set()
            for node in scope_body_walk(scope):
                if not isinstance(node, ast.Attribute):
                    continue
                attr = node.attr
                if not attr.startswith("_") or attr.startswith("__"):
                    continue
                base = node.value
                if is_name(base, "self", "cls"):
                    continue
                if isinstance(base, ast.Name) and imports.is_module_alias(
                    base.id
                ):
                    continue
                if attr in owned:
                    # The enclosing class owns this private name: the
                    # ordinary "construct a sibling and fill it in" idiom.
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"`{self._render_base(base)}.{attr}` reaches into "
                    "another object's private state; expose a public API or "
                    "copy the data through the transfer path",
                )

    @staticmethod
    def _render_base(base: ast.expr) -> str:
        try:
            return ast.unparse(base)
        except Exception:  # pragma: no cover - unparse is best-effort
            return "<expr>"


#: Methods that hand rows across a peer boundary.
_ROW_MOVING_METHODS = {"execute_fetch", "execute_local"}

#: Calls that prove the function prices bytes through the network.
_PRICING_METHODS = {"transfer", "broadcast"}


@register_rule
class NetworkBypassRule(Rule):
    """ISO002: calling a row-bearing peer method on another peer without a
    ``SimNetwork.transfer``/``broadcast`` in the same function moves data
    for free, so byte counts and latencies under-report.  Either price the
    bytes where they move, or annotate why the rows genuinely stay on the
    remote peer."""

    id = "ISO002"
    severity = Severity.ERROR
    description = (
        "row-moving peer call with no SimNetwork transfer in the same "
        "function (bytes move unpriced)"
    )
    categories = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for scope in function_scopes(ctx.tree):
            calls = [
                node
                for node in scope_body_walk(scope)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ]
            if any(call.func.attr in _PRICING_METHODS for call in calls):
                continue
            for call in calls:
                if call.func.attr not in _ROW_MOVING_METHODS:
                    continue
                receiver = call.func.value
                if is_name(receiver, "self", "cls"):
                    continue
                yield self.finding(
                    ctx,
                    call,
                    f"`.{call.func.attr}(...)` pulls rows from a peer but "
                    "this function never prices a SimNetwork transfer; "
                    "charge the bytes or annotate why the rows stay remote",
                )
