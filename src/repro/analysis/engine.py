"""The analysis driver: file discovery, parsing, rule dispatch, filtering."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import (
    AnalysisError,
    FileContext,
    Rule,
    all_rules,
)
from repro.analysis.suppress import SuppressionIndex

#: Pseudo-rule id for files the parser rejects.  Not registered: it cannot
#: be suppressed or baselined — unparseable code can't be analyzed at all.
PARSE_RULE_ID = "PARSE000"

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hg", ".tox", ".venv", "node_modules"}


def categorize(path: str) -> str:
    """Which invariant profile a file gets, from its path alone."""
    parts = path.replace(os.sep, "/").split("/")
    if "tests" in parts:
        return "tests"
    if "benchmarks" in parts:
        return "benchmarks"
    return "src"


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        if not os.path.isdir(path):
            raise AnalysisError(f"no such file or directory: {path!r}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if name not in _SKIP_DIR_NAMES
                and not name.endswith(".egg-info")
                and not name.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def analyze_source(
    source: str,
    path: str = "<string>",
    category: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze one source text.  The unit the fixture tests drive."""
    normalized = path.replace(os.sep, "/")
    category = category or categorize(normalized)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_RULE_ID,
                severity=Severity.ERROR,
                path=normalized,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=normalized, category=category, source=source, tree=tree
    )
    suppressions = SuppressionIndex(source)
    findings: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        if category not in rule.categories:
            continue
        for finding in rule.check(ctx):
            if suppressions.allows(finding.line, finding.rule):
                finding.suppressed = True
                finding.justification = suppressions.reason(
                    finding.line, finding.rule
                )
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


@dataclass
class AnalysisReport:
    """Everything one run produced, ready for rendering."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    baseline: Optional[Baseline] = None

    @property
    def reported(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.reported]

    @property
    def suppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.baselined]

    @property
    def ok(self) -> bool:
        return not self.reported


class Analyzer:
    """Run a rule set over paths, applying suppressions and a baseline."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        baseline: Optional[Baseline] = None,
    ) -> None:
        self.rules = list(rules) if rules is not None else all_rules()
        self.baseline = baseline

    def run(self, paths: Sequence[str]) -> AnalysisReport:
        report = AnalysisReport(baseline=self.baseline)
        for filepath in iter_python_files(paths):
            try:
                with open(filepath, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except (OSError, UnicodeDecodeError) as exc:
                raise AnalysisError(f"cannot read {filepath!r}: {exc}") from exc
            report.files_scanned += 1
            relpath = os.path.relpath(filepath).replace(os.sep, "/")
            for finding in analyze_source(
                source, path=relpath, rules=self.rules
            ):
                if self.baseline is not None and not finding.suppressed:
                    self.baseline.apply(finding)
                report.findings.append(finding)
        report.findings.sort(key=Finding.sort_key)
        return report


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> AnalysisReport:
    """One-call API: analyze ``paths`` and return the report."""
    return Analyzer(rules=rules, baseline=baseline).run(paths)
