"""The analysis driver: file discovery, parsing, rule dispatch, filtering.

Each file is parsed exactly once per run.  The resulting
:class:`FileContext` list feeds the per-file rules directly and is then
handed, whole, to :class:`~repro.analysis.projectgraph.ProjectGraph` for
the interprocedural rules — so adding a project rule costs no extra parse.
An optional :class:`~repro.analysis.astcache.AstCache` shares parse trees
across *processes* (CI runs the lint pass and the graph export back to
back on the same tree).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.astcache import AstCache
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Severity
from repro.analysis.projectgraph import ProjectGraph
from repro.analysis.registry import (
    AnalysisError,
    FileContext,
    ProjectRule,
    Rule,
    all_rules,
)
from repro.analysis.suppress import SuppressionIndex

#: Pseudo-rule id for files the parser rejects.  Not registered: it cannot
#: be suppressed or baselined — unparseable code can't be analyzed at all.
PARSE_RULE_ID = "PARSE000"

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hg", ".tox", ".venv", "node_modules"}


def categorize(path: str) -> str:
    """Which invariant profile a file gets, from its path alone."""
    parts = path.replace(os.sep, "/").split("/")
    if "tests" in parts:
        return "tests"
    if "benchmarks" in parts:
        return "benchmarks"
    return "src"


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        if not os.path.isdir(path):
            raise AnalysisError(f"no such file or directory: {path!r}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if name not in _SKIP_DIR_NAMES
                and not name.endswith(".egg-info")
                and not name.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def _parse_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule=PARSE_RULE_ID,
        severity=Severity.ERROR,
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        message=f"cannot parse file: {exc.msg}",
    )


def _split_rules(
    rules: Sequence[Rule],
) -> Tuple[List[Rule], List[ProjectRule]]:
    file_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    return file_rules, project_rules


def _apply_suppression(
    finding: Finding, suppressions: Optional[SuppressionIndex]
) -> None:
    if suppressions is not None and suppressions.allows(
        finding.line, finding.rule
    ):
        finding.suppressed = True
        finding.justification = suppressions.reason(finding.line, finding.rule)


def _run_file_rules(
    ctx: FileContext,
    rules: Sequence[Rule],
    suppressions: SuppressionIndex,
) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        if ctx.category not in rule.categories:
            continue
        for finding in rule.check(ctx):
            _apply_suppression(finding, suppressions)
            findings.append(finding)
    return findings


def _run_project_rules(
    contexts: Sequence[FileContext],
    rules: Sequence[ProjectRule],
    suppressions: Dict[str, SuppressionIndex],
    ast_cache: Optional[AstCache] = None,
) -> List[Finding]:
    """Build one graph from every parsed file and run the project rules.

    The graph always covers everything scanned; a rule's ``categories``
    only filter which files' findings are *emitted*.  The AST cache rides
    along on the graph so derived artifacts (the per-function dataflow
    summaries) persist beside the parse trees.
    """
    if not rules or not contexts:
        return []
    graph = ProjectGraph.build(contexts)
    graph.ast_cache = ast_cache
    categories = {ctx.path: ctx.category for ctx in contexts}
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check_project(graph):
            if categories.get(finding.path) not in rule.categories:
                continue
            _apply_suppression(finding, suppressions.get(finding.path))
            findings.append(finding)
    return findings


def analyze_source(
    source: str,
    path: str = "<string>",
    category: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze one source text.  The unit the fixture tests drive.

    Project rules work here too — they see a one-file program.  For
    multi-file fixtures use :func:`analyze_project`.
    """
    return analyze_project(
        {path: source}, rules=rules, category_override=category
    )


def analyze_project(
    files: Dict[str, str],
    rules: Optional[Sequence[Rule]] = None,
    category_override: Optional[str] = None,
) -> List[Finding]:
    """Analyze a {path: source} mapping as one program, in memory.

    This is the multi-file fixture API: interprocedural rules see call
    paths that cross the given files, exactly as in a directory scan.
    """
    selected = list(rules) if rules is not None else all_rules()
    file_rules, project_rules = _split_rules(selected)
    contexts: List[FileContext] = []
    suppressions: Dict[str, SuppressionIndex] = {}
    findings: List[Finding] = []
    for path in sorted(files):
        source = files[path]
        normalized = path.replace(os.sep, "/")
        category = category_override or categorize(normalized)
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            findings.append(_parse_finding(normalized, exc))
            continue
        ctx = FileContext(
            path=normalized, category=category, source=source, tree=tree
        )
        contexts.append(ctx)
        suppressions[normalized] = SuppressionIndex(source)
        findings.extend(_run_file_rules(ctx, file_rules, suppressions[normalized]))
    findings.extend(_run_project_rules(contexts, project_rules, suppressions))
    findings.sort(key=Finding.sort_key)
    return findings


@dataclass
class AnalysisReport:
    """Everything one run produced, ready for rendering."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    baseline: Optional[Baseline] = None

    @property
    def reported(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.reported]

    @property
    def suppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.baselined]

    @property
    def ok(self) -> bool:
        return not self.reported


class Analyzer:
    """Run a rule set over paths, applying suppressions and a baseline."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        baseline: Optional[Baseline] = None,
        ast_cache: Optional[AstCache] = None,
    ) -> None:
        self.rules = list(rules) if rules is not None else all_rules()
        self.baseline = baseline
        self.ast_cache = ast_cache

    def _parse(self, source: str, filepath: str) -> ast.Module:
        if self.ast_cache is not None:
            return self.ast_cache.parse(source, filename=filepath)
        return ast.parse(source, filename=filepath)

    def run(self, paths: Sequence[str]) -> AnalysisReport:
        report = AnalysisReport(baseline=self.baseline)
        file_rules, project_rules = _split_rules(self.rules)
        contexts: List[FileContext] = []
        suppressions: Dict[str, SuppressionIndex] = {}
        for filepath in iter_python_files(paths):
            try:
                with open(filepath, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except (OSError, UnicodeDecodeError) as exc:
                raise AnalysisError(f"cannot read {filepath!r}: {exc}") from exc
            report.files_scanned += 1
            relpath = os.path.relpath(filepath).replace(os.sep, "/")
            try:
                tree = self._parse(source, filepath)
            except SyntaxError as exc:
                report.findings.append(_parse_finding(relpath, exc))
                continue
            ctx = FileContext(
                path=relpath,
                category=categorize(relpath),
                source=source,
                tree=tree,
            )
            contexts.append(ctx)
            suppressions[relpath] = SuppressionIndex(source)
            report.findings.extend(
                _run_file_rules(ctx, file_rules, suppressions[relpath])
            )
        report.findings.extend(
            _run_project_rules(
                contexts, project_rules, suppressions, self.ast_cache
            )
        )
        if self.baseline is not None:
            for finding in report.findings:
                if not finding.suppressed:
                    self.baseline.apply(finding)
        report.findings.sort(key=Finding.sort_key)
        return report

    def build_graph(self, paths: Sequence[str]) -> ProjectGraph:
        """Parse ``paths`` (through the cache, when set) into a graph only —
        the ``graph`` subcommand's entry point."""
        contexts: List[FileContext] = []
        for filepath in iter_python_files(paths):
            try:
                with open(filepath, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except (OSError, UnicodeDecodeError) as exc:
                raise AnalysisError(f"cannot read {filepath!r}: {exc}") from exc
            relpath = os.path.relpath(filepath).replace(os.sep, "/")
            try:
                tree = self._parse(source, filepath)
            except SyntaxError as exc:
                raise AnalysisError(
                    f"cannot parse {relpath}: {exc.msg} (line {exc.lineno})"
                ) from exc
            contexts.append(
                FileContext(
                    path=relpath,
                    category=categorize(relpath),
                    source=source,
                    tree=tree,
                )
            )
        return ProjectGraph.build(contexts)


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    ast_cache: Optional[AstCache] = None,
) -> AnalysisReport:
    """One-call API: analyze ``paths`` and return the report."""
    return Analyzer(rules=rules, baseline=baseline, ast_cache=ast_cache).run(
        paths
    )
