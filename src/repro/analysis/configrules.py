"""Configuration hygiene: CFG001.

Every tunable has one home — ``repro.core.config``.  A config key read as
``options.get("engine", "basic")`` plants a second copy of the default that
drifts the first time the real one changes, and the simulation quietly runs
two different configurations depending on which code path read the key.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileContext, Rule, register_rule

#: Receiver names that signal "this mapping is configuration".
_CONFIG_RECEIVER_NAMES = {
    "config",
    "cfg",
    "conf",
    "configuration",
    "options",
    "opts",
    "settings",
    "params",
}

#: The one module allowed to define literal defaults.
_CONFIG_HOME_SUFFIX = "core/config.py"


def _is_literal(node: ast.expr) -> bool:
    """Constants and containers of constants — the drift-prone defaults."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return all(_is_literal(element) for element in node.elts)
    if isinstance(node, ast.Dict):
        return all(
            key is not None and _is_literal(key) and _is_literal(value)
            for key, value in zip(node.keys, node.values)
        )
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_literal(node.operand)
    return False


def _config_receiver(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id.lower() in _CONFIG_RECEIVER_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr.lower() in _CONFIG_RECEIVER_NAMES
    return False


@register_rule
class InlineConfigDefaultRule(Rule):
    """CFG001: ``<config>.get(key, <literal>)`` embeds a shadow default.
    Name the default in ``repro.core.config`` and pass that constant (a
    named default is not flagged — only inline literals are)."""

    id = "CFG001"
    severity = Severity.WARNING
    description = (
        "config key read with an inline literal default; hoist the default "
        "into repro/core/config.py"
    )
    categories = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path.endswith(_CONFIG_HOME_SUFFIX):
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and len(node.args) >= 2
                and not node.keywords
            ):
                continue
            if not _config_receiver(node.func.value):
                continue
            default = node.args[1]
            if default is None or not _is_literal(default):
                continue
            if isinstance(default, ast.Constant) and default.value is None:
                continue  # .get(key, None) adds no second default
            key = node.args[0]
            key_text = (
                repr(key.value) if isinstance(key, ast.Constant) else "<key>"
            )
            yield self.finding(
                ctx,
                node,
                f"config key {key_text} read with inline default "
                f"{ast.unparse(default)}; name the default in "
                "repro/core/config.py and reference it",
            )
