"""Committed baseline of grandfathered findings.

The baseline exists so a new rule can land with the codebase not yet fully
clean: deliberate, justified violations are recorded here and stop failing
the run, while anything *new* still does.  Entries match on
``(rule, path, stripped source line)`` rather than line numbers, so
unrelated edits above a grandfathered site don't invalidate it — but any
edit to the offending line itself surfaces the finding again for a fresh
look.

File format (``analysis-baseline.json``, committed at the repo root)::

    {
      "version": 1,
      "entries": [
        {"rule": "ISO001", "path": "src/repro/x.py",
         "match": "the offending line, stripped",
         "justification": "why this one is deliberate"}
      ]
    }

Every entry must carry a non-empty justification; an unexplained entry is
just a suppression nobody will ever revisit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import AnalysisError

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis-baseline.json"
#: What ``--write-baseline`` stamps on fresh entries.  An entry still
#: carrying it was never reviewed: the CLI reports such entries, and
#: ``--strict-baseline`` (CI) treats them as a configuration error.
PLACEHOLDER_JUSTIFICATION = "TODO: justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    match: str
    justification: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.match)

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "match": self.match,
            "justification": self.justification,
        }


class Baseline:
    """An in-memory baseline, loadable from / dumpable to JSON."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        self._index: Dict[Tuple[str, str, str], BaselineEntry] = {
            entry.key(): entry for entry in self.entries
        }
        self._hits: Set[Tuple[str, str, str]] = set()

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(f"cannot read baseline {path!r}: {exc}") from exc
        if payload.get("version") != BASELINE_VERSION:
            raise AnalysisError(
                f"baseline {path!r} has version {payload.get('version')!r}, "
                f"expected {BASELINE_VERSION}"
            )
        entries = []
        for raw in payload.get("entries", []):
            justification = str(raw.get("justification", "")).strip()
            if not justification:
                raise AnalysisError(
                    f"baseline entry for {raw.get('rule')}@{raw.get('path')} "
                    "has no justification"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]).upper(),
                    path=str(raw["path"]),
                    match=str(raw["match"]).strip(),
                    justification=justification,
                )
            )
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Build a baseline that grandfathers every reported finding."""
        entries = []
        seen: Set[Tuple[str, str, str]] = set()
        for finding in findings:
            if not finding.reported:
                continue
            entry = BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                match=finding.snippet,
                justification=PLACEHOLDER_JUSTIFICATION,
            )
            if entry.key() not in seen:
                seen.add(entry.key())
                entries.append(entry)
        return cls(entries)

    def apply(self, finding: Finding) -> bool:
        """Mark ``finding`` baselined if an entry matches it."""
        key = (finding.rule, finding.path, finding.snippet)
        entry = self._index.get(key)
        if entry is None:
            return False
        self._hits.add(key)
        finding.baselined = True
        finding.justification = entry.justification
        return True

    def stale_entries(self) -> List[BaselineEntry]:
        """Entries that matched nothing — fixed code whose entry can go."""
        return [e for e in self.entries if e.key() not in self._hits]

    def placeholder_entries(self) -> List[BaselineEntry]:
        """Entries whose justification is still the write-time placeholder.

        These are suppressions nobody has reviewed; ``--strict-baseline``
        refuses to accept them.
        """
        return [
            e
            for e in self.entries
            if e.justification == PLACEHOLDER_JUSTIFICATION
        ]

    def prune(self) -> List[BaselineEntry]:
        """Drop (and return) the stale entries.

        Only meaningful after a run has called :meth:`apply` for every
        finding — staleness is defined against that run's hits.
        """
        stale = self.stale_entries()
        if stale:
            self.entries = [e for e in self.entries if e.key() in self._hits]
            self._index = {e.key(): e for e in self.entries}
        return stale

    def save(self, path: str) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                entry.to_dict()
                for entry in sorted(self.entries, key=lambda e: e.key())
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")

    def __len__(self) -> int:
        return len(self.entries)
