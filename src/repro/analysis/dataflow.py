"""Value-flow engine: per-function def-use summaries + interprocedural taint.

The reachability rules (SEC001, RES001) ask "does a *path* exist" on the
call graph; they cannot see *which value* travels it.  This module adds the
missing half in two phases:

**Phase A — per-function flow summaries** (:class:`FunctionFlow`).  Each
function (and each module's top-level pseudo-function) is abstractly
interpreted once, flow-sensitively: assignments are strong updates,
aug-assigns weak ones, tuple unpacking binds element-wise when the shapes
match, branches merge by union, loop bodies run twice so loop-carried flow
is seen, ``except X as e`` kills then rebinds, comprehensions bind their
generator targets, and writes to ``self.attr`` land in a per-attribute
*cell* that Phase B links across the methods of a class.  The summary is
spec-independent — pure def-use edges between abstract value nodes — so it
is cached per module next to the pickled AST (same content-hash key,
different tag) and reused byte-for-byte across runs and rules.

**Phase B — interprocedural taint** (:class:`TaintEngine`).  A breadth-
first search over global ``(function, node)`` pairs, stitched through the
:class:`~repro.analysis.projectgraph.ProjectGraph`: at a *precisely*
resolved call site, argument nodes splice into the callee's parameters and
the callee's return node feeds the caller's call-result node; at ambiguous
or library calls, taint flows conservatively through (arguments to
result) — unless the callee is a declared *sanitizer*, which cuts the flow
entirely.  ``self.attr`` cells of one method link to the same attribute's
cells in every other method of the class.  Sources, sinks, sanitizers and
guards are declarative (:class:`TaintSpec`); a finding is emitted only when
tainted data reaches a sink argument with no guard *must-executed* before
the sink in its function and no guard reachable (precise edges only) from
the lexical scope chain of either endpoint — the same closure idiom SEC001
honors.  Every finding carries the actual source-to-sink hop list.

Everything iterates in sorted order; two runs over the same tree produce
identical findings and identical traces regardless of input file order.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.projectgraph import MODULE_SCOPE, CallSite, ProjectGraph

#: Bump when the summary format changes; part of the flow-cache tag.
FLOW_VERSION = 2
#: Aux-cache tag under which module summaries are pickled.
FLOW_TAG = f"flow{FLOW_VERSION}"

#: Abstract value node, one of::
#:
#:     ("param", name)             a parameter
#:     ("ret", lineno, col)        the result of the call whose callee
#:                                 expression *ends* at (lineno, col) —
#:                                 see :class:`LocalCall`
#:     ("arg", lineno, col, pos)   a value passed at that call; pos is an
#:                                 int or "kw:<name>"
#:     ("recv", lineno, col)       the receiver value at that call
#:     ("attr", base, name, l, c)  an attribute read ``<base>.<name>``
#:     ("cell", name)              the ``self.<name>`` storage cell
#:     ("obj", lineno, col)        a container literal / comprehension
#:     ("return",)                 the function's return value
Node = Tuple
RETURN: Node = ("return",)

#: Container methods that push an argument into their receiver.
_MUTATORS = frozenset(
    {"add", "append", "appendleft", "extend", "extendleft", "insert",
     "setdefault", "update", "push"}
)

_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def receiver_tokens(text: Optional[str]) -> FrozenSet[str]:
    """Identifier tokens of a rendered receiver (``self._backlog`` does
    not contain the token ``log``; ``self.meta_log`` does not either —
    only ``meta_log``)."""
    if not text:
        return frozenset()
    return frozenset(_TOKEN_RE.findall(text))


@dataclass
class LocalCall:
    """One syntactic call inside one function, summary-side.

    ``(lineno, col)`` is the *end of the callee expression* — unique along
    a chain like ``x.f().g()``, where both ``ast.Call`` nodes share the
    chain's start position.  ``(anchor_lineno, anchor_col)`` is that shared
    start position, which is what :class:`ProjectGraph` keys its call
    sites by; joins with the graph must use the anchor plus the callee
    name.
    """

    lineno: int
    col: int
    anchor_lineno: int
    anchor_col: int
    callee_name: str
    receiver: Optional[str]
    nargs: int
    kwnames: Tuple[str, ...]
    #: Positions (ints / "kw:<name>") holding a literal ``None``.
    none_args: Tuple[object, ...]
    #: Bare callee names that have *definitely* executed before this site
    #: on every path (branch merges intersect; loops restore).
    must_before: FrozenSet[str]


@dataclass
class FunctionFlow:
    """The cacheable def-use summary of one function."""

    qualname: str
    module: str
    name: str
    cls: Optional[str]
    lineno: int
    param_names: Tuple[str, ...]
    kwonly_names: Tuple[str, ...]
    vararg: Optional[str]
    kwarg: Optional[str]
    succ: Dict[Node, Set[Node]] = field(default_factory=dict)
    calls: Dict[Tuple[int, int], LocalCall] = field(default_factory=dict)
    #: Every attribute read, as ``(base_text, attr, lineno, col)``.
    attr_reads: List[Tuple[str, str, int, int]] = field(default_factory=list)


def _merge_envs(
    a: Dict[str, Set[Node]], b: Dict[str, Set[Node]]
) -> Dict[str, Set[Node]]:
    merged: Dict[str, Set[Node]] = {k: set(v) for k, v in a.items()}
    for key, nodes in b.items():
        merged.setdefault(key, set()).update(nodes)
    return merged


class _FlowExtractor:
    """Flow-sensitive abstract interpreter for one function body."""

    def __init__(self, flow: FunctionFlow, self_name: Optional[str]) -> None:
        self.flow = flow
        self.self_name = self_name
        self.env: Dict[str, Set[Node]] = {}
        self.must: Set[str] = set()
        for name in flow.param_names + flow.kwonly_names:
            self.env[name] = {("param", name)}
        for name in (flow.vararg, flow.kwarg):
            if name:
                self.env[name] = {("param", name)}

    # -- plumbing ------------------------------------------------------

    def _edge(self, src: Node, dst: Node) -> None:
        self.flow.succ.setdefault(src, set()).add(dst)

    def _edges(self, srcs: Set[Node], dst: Node) -> None:
        # repro: allow[SIM003] edges land in a set; union order cannot matter
        for src in srcs:
            self._edge(src, dst)

    def _snapshot(self) -> Dict[str, Set[Node]]:
        return {k: set(v) for k, v in self.env.items()}

    # -- expressions ---------------------------------------------------

    def eval(self, node: Optional[ast.expr]) -> Set[Node]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attr(node)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            obj: Node = ("obj", node.lineno, node.col_offset)
            for elt in node.elts:
                self._edges(self.eval(elt), obj)
            return {obj}
        if isinstance(node, ast.Dict):
            obj = ("obj", node.lineno, node.col_offset)
            for key in node.keys:
                if key is not None:
                    self._edges(self.eval(key), obj)
            for value in node.values:
                self._edges(self.eval(value), obj)
            return {obj}
        if isinstance(node, ast.BinOp):
            return self.eval(node.left) | self.eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Set[Node] = set()
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, ast.Compare):
            out = self.eval(node.left)
            for comparator in node.comparators:
                out |= self.eval(comparator)
            return out
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, ast.Subscript):
            out = self.eval(node.value)
            self.eval(node.slice)
            return out
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                self.eval(part)
            return set()
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.eval(value.value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            nodes = self.eval(node.value)
            self.bind(node.target, nodes)
            return nodes
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value)
        if isinstance(node, ast.Yield):
            self._edges(self.eval(node.value), RETURN)
            return set()
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comp(node, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._eval_comp(node, [node.key, node.value])
        out = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.eval(child)
        return out

    def _eval_comp(self, node: ast.expr, elts: Sequence[ast.expr]) -> Set[Node]:
        saved = self._snapshot()
        for gen in node.generators:  # type: ignore[attr-defined]
            self.bind(gen.target, self.eval(gen.iter))
            for cond in gen.ifs:
                self.eval(cond)
        obj: Node = ("obj", node.lineno, node.col_offset)
        for elt in elts:
            self._edges(self.eval(elt), obj)
        self.env = saved
        return {obj}

    def _eval_attr(self, node: ast.Attribute) -> Set[Node]:
        try:
            base_text = ast.unparse(node.value)
        except Exception:
            base_text = "<expr>"
        base_nodes = self.eval(node.value)
        attr_node: Node = (
            "attr", base_text, node.attr, node.lineno, node.col_offset
        )
        self.flow.attr_reads.append(
            (base_text, node.attr, node.lineno, node.col_offset)
        )
        self._edges(base_nodes, attr_node)
        if self.self_name is not None and base_text == self.self_name:
            self._edge(("cell", node.attr), attr_node)
        return {attr_node}

    def _eval_call(self, node: ast.Call) -> Set[Node]:
        func = node.func
        # The Call node's own position is the start of the whole receiver
        # chain, shared by every link of ``x.f().g()``; the end of the
        # callee expression is unique per link.
        key = (
            func.end_lineno or node.lineno,
            func.end_col_offset or node.col_offset,
        )
        receiver_text: Optional[str] = None
        receiver_nodes: Set[Node] = set()
        if isinstance(func, ast.Attribute):
            callee_name = func.attr
            try:
                receiver_text = ast.unparse(func.value)
            except Exception:
                receiver_text = "<expr>"
            receiver_nodes = self.eval(func.value)
        elif isinstance(func, ast.Name):
            callee_name = func.id
        else:
            # A call on a call result: nothing nameable — taint flows
            # through arguments conservatively.
            self.eval(func)
            out: Set[Node] = set()
            for arg in node.args:
                out |= self.eval(arg)
            for kw in node.keywords:
                out |= self.eval(kw.value)
            return out
        none_args: List[object] = []
        kwnames: List[str] = []
        for i, arg in enumerate(node.args):
            arg_node: Node = ("arg", key[0], key[1], i)
            self._edges(self.eval(arg), arg_node)
            if isinstance(arg, ast.Constant) and arg.value is None:
                none_args.append(i)
            if callee_name in _MUTATORS:
                # ``acc.append(x)`` pushes x into the object acc holds.
                # repro: allow[SIM003] edges land in a set; union order cannot matter
                for recv in receiver_nodes:
                    self._edge(arg_node, recv)
        for kw in node.keywords:
            pos: object = f"kw:{kw.arg}" if kw.arg else "kw:**"
            arg_node = ("arg", key[0], key[1], pos)
            self._edges(self.eval(kw.value), arg_node)
            if kw.arg:
                kwnames.append(kw.arg)
                if isinstance(kw.value, ast.Constant) and kw.value.value is None:
                    none_args.append(pos)
        if receiver_text is not None:
            self._edges(receiver_nodes, ("recv", key[0], key[1]))
        must = frozenset(self.must)
        prev = self.flow.calls.get(key)
        if prev is None:
            self.flow.calls[key] = LocalCall(
                lineno=key[0],
                col=key[1],
                anchor_lineno=node.lineno,
                anchor_col=node.col_offset,
                callee_name=callee_name,
                receiver=receiver_text,
                nargs=len(node.args),
                kwnames=tuple(kwnames),
                none_args=tuple(none_args),
                must_before=must,
            )
        else:
            # Loop bodies run twice: only calls on *every* path count.
            prev.must_before = prev.must_before & must
        self.must.add(callee_name)
        return {("ret", key[0], key[1])}

    # -- binding -------------------------------------------------------

    def bind(
        self, target: ast.expr, nodes: Set[Node], weak: bool = False
    ) -> None:
        if isinstance(target, ast.Name):
            if weak:
                self.env[target.id] = self.env.get(target.id, set()) | set(nodes)
            else:
                self.env[target.id] = set(nodes)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind(elt, nodes, weak=weak)
        elif isinstance(target, ast.Starred):
            self.bind(target.value, nodes, weak=weak)
        elif isinstance(target, ast.Attribute):
            base = target.value
            if (
                self.self_name is not None
                and isinstance(base, ast.Name)
                and base.id == self.self_name
            ):
                self._edges(nodes, ("cell", target.attr))
            else:
                # Writing into an object taints the object (smashed).
                for base_node in self.eval(base):
                    self._edges(nodes, base_node)
        elif isinstance(target, ast.Subscript):
            for base_node in self.eval(target.value):
                self._edges(nodes, base_node)
            self.eval(target.slice)

    def _exec_assign(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        # Element-wise precision: ``a, b = x, y`` binds a←x, b←y rather
        # than smashing both sides together.
        if (
            isinstance(value, (ast.Tuple, ast.List))
            and all(isinstance(t, (ast.Tuple, ast.List)) for t in targets)
            and all(
                len(t.elts) == len(value.elts)  # type: ignore[attr-defined]
                and not any(isinstance(e, ast.Starred) for e in t.elts)  # type: ignore[attr-defined]
                for t in targets
            )
        ):
            elt_nodes = [self.eval(elt) for elt in value.elts]
            for target in targets:
                for sub, nodes in zip(target.elts, elt_nodes):  # type: ignore[attr-defined]
                    self.bind(sub, nodes)
            return
        nodes = self.eval(value)
        for target in targets:
            self.bind(target, nodes)

    # -- statements ----------------------------------------------------

    def exec_body(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            nodes = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                nodes |= self.env.get(stmt.target.id, set())
            self.bind(stmt.target, nodes, weak=True)
        elif isinstance(stmt, ast.Return):
            self._edges(self.eval(stmt.value), RETURN)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exec_loop(stmt.body, stmt.orelse, stmt)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self._exec_loop(stmt.body, stmt.orelse, None)
        elif isinstance(stmt, ast.Try) or stmt.__class__.__name__ == "TryStar":
            self._exec_try(stmt)  # type: ignore[arg-type]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                nodes = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, nodes)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Raise):
            self.eval(stmt.exc)
            self.eval(stmt.cause)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
            self.eval(stmt.msg)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
                else:
                    self.eval(target)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for dec in stmt.decorator_list:
                self.eval(dec)
            for default in list(stmt.args.defaults) + [
                d for d in stmt.args.kw_defaults if d is not None
            ]:
                self.eval(default)
            self.env[stmt.name] = set()
        elif isinstance(stmt, ast.ClassDef):
            for dec in stmt.decorator_list:
                self.eval(dec)
            for base in stmt.bases:
                self.eval(base)
            self.env[stmt.name] = set()
        elif isinstance(
            stmt,
            (ast.Import, ast.ImportFrom, ast.Pass, ast.Break, ast.Continue,
             ast.Global, ast.Nonlocal),
        ):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def _exec_if(self, stmt: ast.If) -> None:
        self.eval(stmt.test)
        env0, must0 = self._snapshot(), set(self.must)
        self.exec_body(stmt.body)
        env1, must1 = self.env, self.must
        self.env, self.must = env0, must0
        self.exec_body(stmt.orelse)
        self.env = _merge_envs(env1, self.env)
        self.must = must1 & self.must

    def _exec_loop(
        self,
        body: Sequence[ast.stmt],
        orelse: Sequence[ast.stmt],
        for_stmt: Optional[ast.stmt],
    ) -> None:
        iter_nodes: Set[Node] = set()
        if for_stmt is not None:
            iter_nodes = self.eval(for_stmt.iter)  # type: ignore[attr-defined]
        must0 = set(self.must)
        # Two passes propagate loop-carried flow (x of iteration N used
        # at iteration N+1); envs merge by union so nothing is lost.
        for _ in range(2):
            if for_stmt is not None:
                self.bind(for_stmt.target, iter_nodes, weak=True)  # type: ignore[attr-defined]
            before = self._snapshot()
            self.exec_body(body)
            self.env = _merge_envs(self.env, before)
        self.must = must0  # the body may never run
        self.exec_body(orelse)

    def _exec_try(self, stmt: ast.Try) -> None:
        env0, must0 = self._snapshot(), set(self.must)
        self.exec_body(stmt.body)
        self.exec_body(stmt.orelse)
        # A handler can observe any prefix of the body's effects.
        handler_base = _merge_envs(self.env, env0)
        out_envs = [self._snapshot()]
        body_must = set(self.must)
        for handler in stmt.handlers:
            self.env = {k: set(v) for k, v in handler_base.items()}
            self.eval(handler.type)
            if handler.name:
                self.env[handler.name] = set()  # ``as e`` rebinds, kills
            self.exec_body(handler.body)
            if handler.name:
                self.env.pop(handler.name, None)  # unbound past the handler
            out_envs.append(self._snapshot())
        merged = out_envs[0]
        for env in out_envs[1:]:
            merged = _merge_envs(merged, env)
        self.env = merged
        # With no handlers (try/finally) the body completed or we are
        # unwinding; otherwise a handler may have swallowed mid-body.
        self.must = body_must if not stmt.handlers else must0
        self.exec_body(stmt.finalbody)


# ----------------------------------------------------------------------
# per-module extraction + caching


def iter_function_defs(
    module_name: str, tree: ast.Module
) -> Iterator[Tuple[str, Optional[ast.AST], Optional[str]]]:
    """Yield ``(qualname, funcdef, enclosing_class)`` for every function in
    ``tree`` plus the module pseudo-function, mirroring ProjectGraph's
    qualname scheme exactly."""
    yield f"{module_name}:{MODULE_SCOPE}", None, None

    def walk(
        node: ast.AST, path: List[str], direct_cls: Optional[str]
    ) -> Iterator[Tuple[str, Optional[ast.AST], Optional[str]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module_name}:{'.'.join(path + [child.name])}"
                yield qual, child, direct_cls
                yield from walk(child, path + [child.name], None)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, path + [child.name], child.name)
            else:
                yield from walk(child, path, direct_cls)

    yield from walk(tree, [], None)


def extract_module_flows(
    module_name: str, tree: ast.Module
) -> Dict[str, FunctionFlow]:
    """Phase A for one module: a summary per function, deterministic."""
    flows: Dict[str, FunctionFlow] = {}
    for qualname, funcdef, cls in iter_function_defs(module_name, tree):
        if funcdef is None:
            flow = FunctionFlow(
                qualname=qualname,
                module=module_name,
                name=MODULE_SCOPE,
                cls=None,
                lineno=1,
                param_names=(),
                kwonly_names=(),
                vararg=None,
                kwarg=None,
            )
            extractor = _FlowExtractor(flow, self_name=None)
            extractor.exec_body(tree.body)
        else:
            args = funcdef.args  # type: ignore[attr-defined]
            params = tuple(
                a.arg for a in list(args.posonlyargs) + list(args.args)
            )
            flow = FunctionFlow(
                qualname=qualname,
                module=module_name,
                name=funcdef.name,  # type: ignore[attr-defined]
                cls=cls,
                lineno=funcdef.lineno,  # type: ignore[attr-defined]
                param_names=params,
                kwonly_names=tuple(a.arg for a in args.kwonlyargs),
                vararg=args.vararg.arg if args.vararg else None,
                kwarg=args.kwarg.arg if args.kwarg else None,
            )
            self_name = params[0] if cls is not None and params else None
            extractor = _FlowExtractor(flow, self_name=self_name)
            extractor.exec_body(funcdef.body)  # type: ignore[attr-defined]
        flows[qualname] = flow
    return flows


def compute_flows(graph: ProjectGraph) -> Dict[str, FunctionFlow]:
    """Phase A over every module of ``graph``, memoized on the graph and
    persisted per module in the shared AST cache when one is attached."""
    memo = getattr(graph, "memo", None)
    if memo is not None and "flows" in memo:
        return memo["flows"]
    cache = getattr(graph, "ast_cache", None)
    flows: Dict[str, FunctionFlow] = {}
    for name in sorted(graph.modules):
        mod = graph.modules[name]
        source = "\n".join(mod.lines)
        module_flows = None
        if cache is not None:
            payload = cache.load_aux(source, FLOW_TAG)
            if isinstance(payload, dict) and all(
                isinstance(v, FunctionFlow) for v in payload.values()
            ):
                module_flows = payload
        if module_flows is None:
            module_flows = extract_module_flows(mod.name, mod.tree)
            if cache is not None:
                cache.store_aux(source, FLOW_TAG, module_flows)
        flows.update(module_flows)
    if memo is not None:
        memo["flows"] = flows
    return flows


# ----------------------------------------------------------------------
# Phase B: declarative specs + the interprocedural taint search


@dataclass(frozen=True)
class SourceSpec:
    """What makes a value tainted."""

    kind: str
    describe: str
    #: Callee names whose *results* are sources.
    calls: Tuple[str, ...] = ()
    #: "any" | "remote" (receiver present, not self/cls) | "exact".
    receiver_mode: str = "any"
    #: Exact rendered receivers for mode "exact"; "" matches a bare call.
    receiver_names: Tuple[str, ...] = ()
    #: The SEC001 predicate: only a fetch without an effective user taints.
    require_no_user: bool = False
    #: Attribute reads ``(base_token, attr)`` that are sources; a base
    #: token "" matches any base.
    attrs: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class SinkSpec:
    """Where tainted values must not arrive."""

    label: str
    calls: Tuple[str, ...]
    #: Receiver must contain one of these identifier tokens (None = any).
    receiver_tokens: Optional[Tuple[str, ...]] = None
    #: Admissible argument positions (ints / "kw:<name>"; None = any).
    positions: Optional[Tuple[object, ...]] = None


@dataclass(frozen=True)
class TaintSpec:
    """One source-family → sink-family question, with its escape hatches."""

    name: str
    sources: Tuple[SourceSpec, ...]
    sinks: Tuple[SinkSpec, ...]
    #: Calls whose results are *clean* even for tainted inputs.
    sanitizers: Tuple[str, ...] = ()
    #: Calls that, executed before the sink (or reachable from either
    #: endpoint's lexical scope chain), clear the finding.
    guards: Tuple[str, ...] = ()


@dataclass
class TaintHit:
    """One tainted value arriving at one sink argument."""

    spec: TaintSpec
    source: SourceSpec
    sink: SinkSpec
    sink_qual: str
    sink_module: str
    sink_call: LocalCall
    #: Qualname of the function the source seed lives in.
    origin_qual: str
    origin_desc: str
    #: (path, lineno, note) hops, source first, sink last.
    trace: Tuple[Tuple[str, int, str], ...]


GlobalNode = Tuple  # (qualname, Node) or ("~cell", module, cls, attr)


def _call_has_no_user(call: LocalCall) -> bool:
    if call.nargs >= 3:
        return 2 in call.none_args
    if "user" in call.kwnames:
        return "kw:user" in call.none_args
    return True


def _match_source_call(source: SourceSpec, call: LocalCall) -> bool:
    if call.callee_name not in source.calls:
        return False
    receiver = call.receiver
    if source.receiver_mode == "remote":
        if receiver is None or receiver in ("self", "cls"):
            return False
    elif source.receiver_mode == "exact":
        if (receiver or "") not in source.receiver_names:
            return False
    if source.require_no_user and not _call_has_no_user(call):
        return False
    return True


def _match_sink(sink: SinkSpec, call: LocalCall, pos: object) -> bool:
    if call.callee_name not in sink.calls:
        return False
    if sink.receiver_tokens is not None:
        if not receiver_tokens(call.receiver) & set(sink.receiver_tokens):
            return False
    if sink.positions is not None and pos not in sink.positions:
        return False
    return True


class TaintEngine:
    """Phase B: run :class:`TaintSpec` questions over one graph + flows."""

    def __init__(
        self, graph: ProjectGraph, flows: Dict[str, FunctionFlow]
    ) -> None:
        self.graph = graph
        self.flows = flows
        # Keyed by (caller, anchor lineno/col, callee name): chained calls
        # share one anchor, so the name is part of the site's identity.
        self._site_index: Dict[Tuple[str, int, int, str], CallSite] = {}
        for site in graph.call_sites:
            self._site_index[
                (site.caller, site.lineno, site.col, site.callee_name)
            ] = site
        # callee → caller-side ("ret", lineno, col) coordinates of every
        # precise call into it.  Built from the flows (not the raw graph
        # sites) so the coordinates match the summary's call keys.
        self._ret_links: Dict[str, List[Tuple[str, int, int]]] = {}
        for qual in sorted(flows):
            flow = flows[qual]
            for key in sorted(flow.calls):
                call = flow.calls[key]
                site = self._site_index.get(
                    (
                        qual,
                        call.anchor_lineno,
                        call.anchor_col,
                        call.callee_name,
                    )
                )
                if site is None or not (site.precise and site.resolved):
                    continue
                for callee in sorted(site.resolved):
                    if callee in flows:
                        self._ret_links.setdefault(callee, []).append(
                            (qual, call.lineno, call.col)
                        )
        self._class_methods: Dict[Tuple[str, str], List[str]] = {}
        for qual in sorted(flows):
            flow = flows[qual]
            if flow.cls is not None:
                self._class_methods.setdefault(
                    (flow.module, flow.cls), []
                ).append(qual)

    @classmethod
    def for_graph(cls, graph: ProjectGraph) -> "TaintEngine":
        """The per-run engine, shared by every dataflow rule via the
        graph's memo (one Phase A + one index build per analysis run)."""
        memo = getattr(graph, "memo", None)
        if memo is not None and "taint_engine" in memo:
            return memo["taint_engine"]
        engine = cls(graph, compute_flows(graph))
        if memo is not None:
            memo["taint_engine"] = engine
        return engine

    # -- splicing ------------------------------------------------------

    def _param_for(
        self, flow: FunctionFlow, call: LocalCall, node: Node
    ) -> Optional[str]:
        """The callee parameter a caller-side arg/recv node lands in."""
        offset = 1 if flow.cls is not None else 0
        if node[0] == "recv":
            if offset and flow.param_names:
                return flow.param_names[0]
            return None
        pos = node[3]
        if isinstance(pos, int):
            idx = pos + offset
            if idx < len(flow.param_names):
                return flow.param_names[idx]
            return flow.vararg
        name = pos[3:]  # strip "kw:"
        if name == "**":
            return None
        if name in flow.param_names or name in flow.kwonly_names:
            return name
        return flow.kwarg

    def _expand(
        self, gnode: GlobalNode, spec: TaintSpec
    ) -> List[GlobalNode]:
        if gnode[0] == "~cell":
            _, module, cls, attr = gnode
            return [
                (qual, ("cell", attr))
                for qual in self._class_methods.get((module, cls), ())
            ]
        qual, node = gnode
        flow = self.flows.get(qual)
        if flow is None:
            return []
        out: List[GlobalNode] = [
            (qual, succ) for succ in sorted(flow.succ.get(node, ()), key=repr)
        ]
        kind = node[0]
        if kind in ("arg", "recv"):
            lineno, col = node[1], node[2]
            call = flow.calls.get((lineno, col))
            if call is not None:
                if (
                    call.callee_name in spec.sanitizers
                    or call.callee_name in spec.guards
                ):
                    # Sanitizers cut arg→result flow; so do guards — a
                    # value handed to ``verify(cert)`` is being *checked*,
                    # and following it through the checker's internals
                    # (and back out of the checker's other call sites)
                    # only manufactures context-insensitive noise.
                    return out
                site = self._site_index.get(
                    (
                        qual,
                        call.anchor_lineno,
                        call.anchor_col,
                        call.callee_name,
                    )
                )
                spliced = False
                if site is not None and site.precise and site.resolved:
                    for callee in sorted(site.resolved):
                        callee_flow = self.flows.get(callee)
                        if callee_flow is None:
                            continue
                        param = self._param_for(callee_flow, call, node)
                        if param is not None:
                            out.append((callee, ("param", param)))
                            spliced = True
                if not spliced:
                    # Ambiguous or library call: assume taint-through.
                    out.append((qual, ("ret", lineno, col)))
        elif kind == "cell" and flow.cls is not None:
            out.append(("~cell", flow.module, flow.cls, node[1]))
        elif kind == "return":
            for caller, lineno, col in self._ret_links.get(qual, ()):
                out.append((caller, ("ret", lineno, col)))
        return out

    # -- rendering -----------------------------------------------------

    def _node_location(self, gnode: GlobalNode) -> Tuple[str, int]:
        if gnode[0] == "~cell":
            module = self.graph.modules.get(gnode[1])
            return (module.path if module else gnode[1], 1)
        qual, node = gnode
        flow = self.flows[qual]
        module = self.graph.modules.get(flow.module)
        path = module.path if module else flow.module
        if node[0] in ("ret", "arg", "recv", "obj"):
            return path, node[1]
        if node[0] == "attr":
            return path, node[3]
        return path, flow.lineno

    def _node_note(self, gnode: GlobalNode) -> str:
        if gnode[0] == "~cell":
            return f"attribute {gnode[3]!r} shared across class {gnode[2]}"
        qual, node = gnode
        flow = self.flows[qual]
        kind = node[0]
        if kind in ("ret", "arg", "recv"):
            call = flow.calls.get((node[1], node[2]))
            callee = call.callee_name if call else "?"
            if kind == "ret":
                return f"result of {callee}(...)"
            if kind == "recv":
                return f"receiver of {callee}(...)"
            return f"argument {node[3]} of {callee}(...)"
        if kind == "param":
            return f"parameter {node[1]!r} of {flow.name}"
        if kind == "cell":
            return f"self.{node[1]} in {flow.name}"
        if kind == "attr":
            return f"read of {node[1]}.{node[2]}"
        if kind == "obj":
            return f"container in {flow.name}"
        return f"return value of {flow.name}"

    def _trace(
        self,
        gnode: GlobalNode,
        preds: Dict[GlobalNode, GlobalNode],
        origin_desc: str,
    ) -> Tuple[Tuple[str, int, str], ...]:
        chain: List[GlobalNode] = [gnode]
        seen = {gnode}
        while chain[-1] in preds:
            prev = preds[chain[-1]]
            if prev in seen:
                break
            seen.add(prev)
            chain.append(prev)
        chain.reverse()
        hops: List[Tuple[str, int, str]] = []
        for i, hop in enumerate(chain):
            path, lineno = self._node_location(hop)
            note = self._node_note(hop)
            if i == 0:
                note = f"source: {origin_desc}"
            if hops and hops[-1][0] == path and hops[-1][1] == lineno:
                continue  # collapse same-line steps
            hops.append((path, lineno, note))
        return tuple(hops)

    # -- the search ----------------------------------------------------

    def _seeds(
        self, spec: TaintSpec
    ) -> List[Tuple[GlobalNode, SourceSpec, str]]:
        seeds: List[Tuple[GlobalNode, SourceSpec, str]] = []
        for qual in sorted(self.flows):
            flow = self.flows[qual]
            for source in spec.sources:
                for key in sorted(flow.calls):
                    call = flow.calls[key]
                    if _match_source_call(source, call):
                        target = (
                            f"{call.receiver}.{call.callee_name}"
                            if call.receiver
                            else call.callee_name
                        )
                        seeds.append(
                            (
                                (qual, ("ret", call.lineno, call.col)),
                                source,
                                f"{source.describe} ({target}(...))",
                            )
                        )
                for base, attr, lineno, col in sorted(flow.attr_reads):
                    for base_token, attr_name in source.attrs:
                        if attr != attr_name:
                            continue
                        if base_token and base_token not in receiver_tokens(
                            base
                        ):
                            continue
                        seeds.append(
                            (
                                (qual, ("attr", base, attr, lineno, col)),
                                source,
                                f"{source.describe} ({base}.{attr})",
                            )
                        )
        return seeds

    def _guard_cleared(
        self,
        spec: TaintSpec,
        call: LocalCall,
        sink_qual: str,
        origin_qual: str,
        guards_reaching: Set[str],
    ) -> bool:
        if not spec.guards:
            return False
        if call.must_before & set(spec.guards):
            return True
        # The verifying-sink idiom: the privileged operation checks its
        # own input (``CertificateAuthority.install`` verifies before
        # adopting).  If a guard is precisely reachable from the function
        # actually being called at the sink, the value cannot get through
        # unchecked.
        site = self._site_index.get(
            (sink_qual, call.anchor_lineno, call.anchor_col, call.callee_name)
        )
        if site is not None and any(
            callee in guards_reaching for callee in site.resolved
        ):
            return True
        # The closure idiom: a guard reachable from a lexically *enclosing*
        # scope clears the flow (the closure runs under the parent's
        # check).  The sink/origin function itself gets no such credit —
        # there the guard must be must-executed, or a guard call on one
        # branch would clear a flow on the other.
        for scope in (sink_qual, origin_qual):
            if any(
                fn in guards_reaching
                for i, fn in enumerate(self.graph.scope_chain(scope))
                if i > 0
            ):
                return True
        return False

    def run(self, spec: TaintSpec) -> List[TaintHit]:
        guards_reaching: Set[str] = set()
        if spec.guards:
            guards_reaching = self.graph.functions_reaching(
                set(spec.guards), precise_only=True
            )
        hits: List[TaintHit] = []
        emitted: Set[Tuple] = set()
        for seed, source, origin_desc in self._seeds(spec):
            origin_qual = seed[0]
            preds: Dict[GlobalNode, GlobalNode] = {}
            visited: Set[GlobalNode] = {seed}
            frontier: List[GlobalNode] = [seed]
            while frontier:
                next_frontier: List[GlobalNode] = []
                for gnode in frontier:
                    if gnode[0] != "~cell":
                        qual, node = gnode
                        if node[0] == "arg":
                            flow = self.flows[qual]
                            call = flow.calls.get((node[1], node[2]))
                            if call is not None:
                                self._check_sink(
                                    spec, source, qual, node, call,
                                    origin_qual, origin_desc,
                                    guards_reaching, preds, emitted, hits,
                                )
                    for succ in self._expand(gnode, spec):
                        if succ not in visited:
                            visited.add(succ)
                            preds[succ] = gnode
                            next_frontier.append(succ)
                frontier = next_frontier
        hits.sort(
            key=lambda h: (
                h.sink_module, h.sink_call.lineno, h.sink_call.col,
                h.origin_desc,
            )
        )
        return hits

    def _check_sink(
        self,
        spec: TaintSpec,
        source: SourceSpec,
        qual: str,
        node: Node,
        call: LocalCall,
        origin_qual: str,
        origin_desc: str,
        guards_reaching: Set[str],
        preds: Dict[GlobalNode, GlobalNode],
        emitted: Set[Tuple],
        hits: List[TaintHit],
    ) -> None:
        for sink in spec.sinks:
            if not _match_sink(sink, call, node[3]):
                continue
            key = (qual, call.lineno, call.col, origin_qual, sink.label)
            if key in emitted:
                continue
            if self._guard_cleared(
                spec, call, qual, origin_qual, guards_reaching
            ):
                continue
            emitted.add(key)
            flow = self.flows[qual]
            hits.append(
                TaintHit(
                    spec=spec,
                    source=source,
                    sink=sink,
                    sink_qual=qual,
                    sink_module=flow.module,
                    sink_call=call,
                    origin_qual=origin_qual,
                    origin_desc=origin_desc,
                    trace=self._trace((qual, node), preds, origin_desc),
                )
            )
