"""Content-addressed cache of parsed ASTs.

Parsing is the dominant cost of a whole-tree analysis run, and the CI job
runs the tree twice (the lint pass and the graph export).  This cache keys a
pickled ``ast.Module`` by the SHA-256 of the source text (plus the Python
version and a cache schema version), so the second pass reuses the first
pass's parse work byte-for-byte.  A stale or corrupt entry can never poison
a run: any load failure silently falls back to a fresh ``ast.parse``.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
import sys
import tempfile
from typing import Optional

#: Bump when the cached payload format (or what we store in it) changes.
CACHE_VERSION = 1


def cache_key(source: str) -> str:
    """Stable key for one source text under this interpreter."""
    tag = f"{CACHE_VERSION}|{sys.version_info[0]}.{sys.version_info[1]}|"
    digest = hashlib.sha256()
    digest.update(tag.encode("utf-8"))
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


class AstCache:
    """A directory of pickled parse trees, keyed by source content."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0
        os.makedirs(directory, exist_ok=True)

    def _entry_path(self, key: str, tag: str = "ast") -> str:
        return os.path.join(self.directory, f"{key}.{tag}.pkl")

    def load(self, source: str) -> Optional[ast.Module]:
        try:
            with open(self._entry_path(cache_key(source)), "rb") as handle:
                tree = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if not isinstance(tree, ast.Module):
            return None
        self.hits += 1
        return tree

    def store(self, source: str, tree: ast.Module) -> None:
        """Persist one parse; failures are ignored (cache is best-effort)."""
        self._write(self._entry_path(cache_key(source)), tree)

    def _write(self, path: str, payload: object) -> None:
        try:
            fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(
                        payload, handle, protocol=pickle.HIGHEST_PROTOCOL
                    )
                os.replace(tmp_path, path)
            except BaseException:
                os.unlink(tmp_path)
                raise
        except (OSError, pickle.PickleError, RecursionError):
            pass

    def load_aux(self, source: str, tag: str) -> Optional[object]:
        """Load a derived artifact keyed by the same source content.

        ``tag`` namespaces the artifact (e.g. the dataflow summaries use
        ``flow1``), so a format bump invalidates by renaming, never by
        clashing.  Any failure returns None — aux entries are as
        best-effort as the parse trees.
        """
        try:
            with open(
                self._entry_path(cache_key(source), tag), "rb"
            ) as handle:
                return pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            return None

    def store_aux(self, source: str, tag: str, payload: object) -> None:
        """Persist a derived artifact next to the source's parse tree."""
        self._write(self._entry_path(cache_key(source), tag), payload)

    def parse(self, source: str, filename: str = "<unknown>") -> ast.Module:
        """Parse ``source``, reusing a cached tree when one matches.

        Raises ``SyntaxError`` exactly like ``ast.parse`` — syntax failures
        are never cached.
        """
        tree = self.load(source)
        if tree is not None:
            return tree
        tree = ast.parse(source, filename=filename)
        self.misses += 1
        self.store(source, tree)
        return tree
