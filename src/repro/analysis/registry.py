"""Rule protocol and registry.

A rule is a named check over one parsed module.  Rules register themselves
at import time via :func:`register_rule`; the engine runs every registered
rule whose ``categories`` admit the file being scanned, so future PRs add a
rule by dropping in a module with one decorated class — no engine changes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Type

from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # circular at runtime: projectgraph uses FileContext
    from repro.analysis.projectgraph import ModuleNode, ProjectGraph

#: File categories the engine distinguishes.  Library code carries both
#: invariants; tests and benchmarks only the determinism-critical subset.
CATEGORIES = ("src", "tests", "benchmarks")


class AnalysisError(Exception):
    """A misconfigured rule or an unusable input to the analyzer.

    Deliberately NOT part of the ``repro.errors`` hierarchy: the analysis
    package checks the rest of the tree from outside and must stay
    stdlib-only (its own ARCH001 contract), so it cannot share the
    platform's exception taxonomy.
    """


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: str  # posix-style, relative to the scan root
    category: str  # one of CATEGORIES
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    _parents: Optional[Dict[int, ast.AST]] = None

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None for the module)."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[id(child)] = outer
            self._parents = parents
        return self._parents.get(id(node))


class Rule:
    """Base class for all checks.

    Subclasses set ``id``, ``severity``, ``description`` and the file
    ``categories`` they apply to, then implement :meth:`check` yielding
    ``(node_or_lineno, message)`` pairs via :meth:`finding`.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Which file categories the rule runs on.
    categories: Iterable[str] = CATEGORIES
    #: ``--explain`` metadata.  ``rationale`` says *why* the invariant is
    #: load-bearing; the examples are minimal self-contained sources, the
    #: first of which must trip the rule and the second must not (the
    #: explain command runs both through the analyzer to prove it).
    rationale: str = ""
    example_violation: str = ""
    example_clean: str = ""
    #: Path the worked examples are analyzed under.  Rules whose domain is
    #: module-name-based (the effect contracts) need the example to live
    #: at a path that puts it inside the contract boundary.
    example_path: str = "<string>"

    @property
    def family(self) -> str:
        """Rule family from the id prefix (``SEC003`` → ``SEC``)."""
        return self.id.rstrip("0123456789") or self.id

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.path,
            line=lineno,
            col=col,
            message=message,
            snippet=ctx.line_text(lineno),
        )


class ProjectRule(Rule):
    """A rule that needs the whole-program :class:`ProjectGraph`.

    Project rules see every file at once: the engine builds one graph per
    run from the already-parsed contexts and calls :meth:`check_project`
    after the per-file rules.  ``categories`` still applies — it filters
    which files' findings are *emitted*, while the graph itself is always
    built from everything scanned (so e.g. reachability through helper
    modules is never truncated).  Suppressions and the baseline apply to
    project findings exactly as to per-file ones.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, graph: "ProjectGraph") -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(
        self,
        module: "ModuleNode",
        lineno: int,
        col: int,
        message: str,
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.path,
            line=lineno,
            col=col,
            message=message,
            snippet=module.line_text(lineno),
        )


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    if not cls.id:
        raise AnalysisError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id: {cls.id}")
    unknown = set(cls.categories) - set(CATEGORIES)
    if unknown:
        raise AnalysisError(
            f"rule {cls.id} names unknown categories: {sorted(unknown)}"
        )
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in stable id order."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one registered rule by id."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise AnalysisError(f"unknown rule: {rule_id!r}") from None
