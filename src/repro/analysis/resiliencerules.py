"""RES001: resilience coverage for cross-peer work (PR 1's machinery).

Every cross-peer operation — a ``SimNetwork`` ``transfer``/``broadcast``
or a remote ``execute_fetch``/``execute_local`` — must run under the
retry/breaker/deadline umbrella of ``repro.core.resilience``: either
inside a function handed to ``EngineContext.call_resilient`` /
``ResilienceContext.call`` (the closure idiom the engines use), or inside
something such a function calls.

Coverage is computed on the call graph: the functions *referenced* as
arguments at ``call_resilient(...)`` / ``<...resilience...>.call(...)``
sites are roots, and everything forward-reachable from them is covered.
A cross-peer site is a finding when no function on its lexical scope chain
is covered.

Exemptions, by design rather than oversight:

* ``sim`` — the substrate *is* the wire; it cannot wrap itself,
* ``mapreduce`` — the MapReduce fault model is job re-execution, not
  per-message retry (the paper's §5.4 engine inherits Hadoop semantics),
* ``analysis`` — no runtime traffic,
* ``repro.core.resilience`` itself — the wrapping machinery.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.projectgraph import CallSite, ProjectGraph
from repro.analysis.registry import ProjectRule, register_rule

WIRE_METHODS = frozenset({"transfer", "broadcast"})
REMOTE_EXEC_METHODS = frozenset({"execute_fetch", "execute_local"})
#: Call sites whose function-reference arguments are resilience roots.
WRAPPER_NAMES = frozenset({"call_resilient"})

EXEMPT_UNITS = frozenset({"sim", "mapreduce", "analysis"})
EXEMPT_MODULES = frozenset({"repro.core.resilience"})


def _is_wrapper_site(site: CallSite) -> bool:
    if site.callee_name in WRAPPER_NAMES:
        return True
    return (
        site.callee_name == "call"
        and site.receiver is not None
        and "resilience" in site.receiver
    )


def _is_cross_peer(site: CallSite) -> bool:
    if site.receiver is None or site.receiver in ("self", "cls"):
        return False
    if site.callee_name in WIRE_METHODS:
        return True
    return site.callee_name in REMOTE_EXEC_METHODS


@register_rule
class ResilienceCoverageRule(ProjectRule):
    id = "RES001"
    severity = Severity.WARNING
    description = (
        "cross-peer call site not covered by a RetryPolicy/deadline "
        "context (call_resilient / ResilienceContext.call)"
    )
    categories = ("src",)

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        roots: Set[str] = set()
        for site in graph.call_sites:
            if _is_wrapper_site(site):
                roots.update(site.func_ref_args)
        covered = graph.functions_reachable_from(roots, precise_only=True)
        for site in graph.call_sites:
            if not _is_cross_peer(site):
                continue
            module = graph.modules.get(site.module)
            if module is None:
                continue
            if module.unit in EXEMPT_UNITS or module.name in EXEMPT_MODULES:
                continue
            if any(fn in covered for fn in graph.scope_chain(site.caller)):
                continue
            yield self.project_finding(
                module,
                site.lineno,
                site.col,
                f"{site.receiver}.{site.callee_name}(...) in {site.caller!r} "
                f"runs outside any resilience context — wrap it in a "
                f"closure passed to call_resilient/ResilienceContext.call",
            )
