"""RES001/RES002/RES003: resilience coverage, WAL confinement, bounded buffers.

RES001 — resilience coverage for cross-peer work (PR 1's machinery).

Every cross-peer operation — a ``SimNetwork`` ``transfer``/``broadcast``
or a remote ``execute_fetch``/``execute_local`` — must run under the
retry/breaker/deadline umbrella of ``repro.core.resilience``: either
inside a function handed to ``EngineContext.call_resilient`` /
``ResilienceContext.call`` (the closure idiom the engines use), or inside
something such a function calls.

Coverage is computed on the call graph: the functions *referenced* as
arguments at ``call_resilient(...)`` / ``<...resilience...>.call(...)``
sites are roots, and everything forward-reachable from them is covered.
A cross-peer site is a finding when no function on its lexical scope chain
is covered.

Exemptions, by design rather than oversight:

* ``sim`` — the substrate *is* the wire; it cannot wrap itself,
* ``mapreduce`` — the MapReduce fault model is job re-execution, not
  per-message retry (the paper's §5.4 engine inherits Hadoop semantics),
* ``analysis`` — no runtime traffic,
* ``repro.core.resilience`` itself — the wrapping machinery.

RES002 — WAL confinement of bootstrap metadata (this PR's machinery).
Every mutation of the bootstrap's replicated metadata
(:class:`repro.core.metalog.BootstrapState`) must flow through the single
``apply()`` reducer: a standby replays the log to promote, so state
touched any other way silently diverges between primary and standby.  The
rule computes the set of functions precisely reachable from ``apply`` and
flags any statement-level mutation (attribute assignment, item write,
augmented assignment, delete, or a mutator-method call like
``state.peers.pop(...)``) of a metadata attribute on a ``state`` receiver
whose lexical scope chain never enters that set.

RES003 — bounded buffers on serving paths (this PR's machinery).
The serving front door survives overload precisely because every queue and
sample window it keeps is bounded; one forgotten ``deque()`` without
``maxlen`` — or a ``self.pending.append(...)`` onto a plain list — turns
admission control back into an OOM under sustained 10x load.  The rule
applies to *serving-enabled* modules (anything under a ``serving`` package
directory, or importing ``repro.serving``) and flags (a) ``deque``
construction without a bound and (b) growth calls / augmented appends on
instance attributes initialized as unbounded lists.  Request-scoped locals
are exempt: they die with the request, so they cannot accumulate across
requests the way persistent instance state can.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Set

from repro.analysis.asthelpers import is_name
from repro.analysis.findings import Finding, Severity
from repro.analysis.projectgraph import CallSite, ProjectGraph
from repro.analysis.registry import FileContext, ProjectRule, Rule, register_rule

WIRE_METHODS = frozenset({"transfer", "broadcast"})
REMOTE_EXEC_METHODS = frozenset({"execute_fetch", "execute_local"})
#: Call sites whose function-reference arguments are resilience roots.
WRAPPER_NAMES = frozenset({"call_resilient"})

EXEMPT_UNITS = frozenset({"sim", "mapreduce", "analysis"})
EXEMPT_MODULES = frozenset({"repro.core.resilience"})


def _is_wrapper_site(site: CallSite) -> bool:
    if site.callee_name in WRAPPER_NAMES:
        return True
    return (
        site.callee_name == "call"
        and site.receiver is not None
        and "resilience" in site.receiver
    )


def _is_cross_peer(site: CallSite) -> bool:
    if site.receiver is None or site.receiver in ("self", "cls"):
        return False
    if site.callee_name in WIRE_METHODS:
        return True
    return site.callee_name in REMOTE_EXEC_METHODS


@register_rule
class ResilienceCoverageRule(ProjectRule):
    id = "RES001"
    severity = Severity.WARNING
    description = (
        "cross-peer call site not covered by a RetryPolicy/deadline "
        "context (call_resilient / ResilienceContext.call)"
    )
    categories = ("src",)

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        roots: Set[str] = set()
        for site in graph.call_sites:
            if _is_wrapper_site(site):
                roots.update(site.func_ref_args)
        covered = graph.functions_reachable_from(roots, precise_only=True)
        for site in graph.call_sites:
            if not _is_cross_peer(site):
                continue
            module = graph.modules.get(site.module)
            if module is None:
                continue
            if module.unit in EXEMPT_UNITS or module.name in EXEMPT_MODULES:
                continue
            if any(fn in covered for fn in graph.scope_chain(site.caller)):
                continue
            yield self.project_finding(
                module,
                site.lineno,
                site.col,
                f"{site.receiver}.{site.callee_name}(...) in {site.caller!r} "
                f"runs outside any resilience context — wrap it in a "
                f"closure passed to call_resilient/ResilienceContext.call",
            )


#: Replicated-metadata attributes of ``BootstrapState``.
METADATA_ATTRS = frozenset(
    {
        "peers",
        "blacklist",
        "schemas",
        "roles",
        "user_registry",
        "serials",
        "admission_epochs",
        "pending_failovers",
    }
)
#: Container methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)
#: The WAL reducer: functions named ``apply`` defined in this module.
WAL_MODULE = "repro.core.metalog"
_STATE_TOKEN = re.compile(r"\bstate\b")


def _is_state_receiver(text: Optional[str]) -> bool:
    """Whether a rendered expression names bootstrap state (``state``,
    ``self.state``, ``cluster.leader.state`` ...)."""
    return text is not None and _STATE_TOKEN.search(text) is not None


@register_rule
class WalConfinementRule(ProjectRule):
    id = "RES002"
    severity = Severity.ERROR
    description = (
        "bootstrap metadata mutated outside the WAL apply() reducer "
        "(repro.core.metalog) — standby replay would diverge"
    )
    categories = ("src",)

    def _allowed(self, graph: ProjectGraph) -> Set[str]:
        roots = {
            qualname
            for qualname, node in graph.functions.items()
            if node.module == WAL_MODULE and node.name == "apply"
        }
        return graph.functions_reachable_from(roots, precise_only=True)

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        allowed = self._allowed(graph)

        def confined(scope: str) -> bool:
            return any(fn in allowed for fn in graph.scope_chain(scope))

        for assign in graph.attr_assigns:
            if assign.attr not in METADATA_ATTRS:
                continue
            if not _is_state_receiver(assign.target):
                continue
            if confined(assign.caller):
                continue
            module = graph.modules.get(assign.module)
            if module is None:
                continue
            yield self.project_finding(
                module,
                assign.lineno,
                assign.col,
                f"{assign.caller!r} mutates {assign.target}.{assign.attr} "
                f"outside the WAL reducer — emit a log record and let "
                f"{WAL_MODULE}.apply fold it in",
            )
        for site in graph.call_sites:
            if site.callee_name not in MUTATOR_METHODS:
                continue
            receiver = site.receiver
            if receiver is None or "." not in receiver:
                continue
            head, _, attr = receiver.rpartition(".")
            if attr not in METADATA_ATTRS or not _is_state_receiver(head):
                continue
            if confined(site.caller):
                continue
            module = graph.modules.get(site.module)
            if module is None:
                continue
            yield self.project_finding(
                module,
                site.lineno,
                site.col,
                f"{site.caller!r} calls {receiver}.{site.callee_name}(...) "
                f"outside the WAL reducer — emit a log record and let "
                f"{WAL_MODULE}.apply fold it in",
            )


#: The package whose importers are "serving-enabled" for RES003.
SERVING_PACKAGE = "repro.serving"
#: Method calls that grow a sequence in place.
GROWTH_METHODS = frozenset(
    {"append", "appendleft", "extend", "extendleft", "insert"}
)


def _imports_serving(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(
                alias.name == SERVING_PACKAGE
                or alias.name.startswith(SERVING_PACKAGE + ".")
                for alias in node.names
            ):
                return True
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = node.module or ""
            if module == SERVING_PACKAGE or module.startswith(
                SERVING_PACKAGE + "."
            ):
                return True
    return False


def _is_deque_call(node: ast.Call) -> bool:
    """``deque(...)`` / ``collections.deque(...)`` by any usual spelling."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "deque"
    return isinstance(func, ast.Attribute) and func.attr == "deque"


def _deque_is_bounded(node: ast.Call) -> bool:
    """Whether a deque construction carries a real ``maxlen``.

    ``deque(iterable, maxlen)`` positionally, or ``maxlen=<bound>`` by
    keyword; an explicit ``maxlen=None`` is as unbounded as omitting it.
    """
    if len(node.args) >= 2:
        return not (
            isinstance(node.args[1], ast.Constant)
            and node.args[1].value is None
        )
    for keyword in node.keywords:
        if keyword.arg == "maxlen":
            return not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
            )
    return False


def _is_unbounded_list_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.ListComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and is_name(node.func, "list")
    )


@register_rule
class BoundedBufferRule(Rule):
    id = "RES003"
    severity = Severity.ERROR
    description = (
        "unbounded buffer on a serving path (deque() without maxlen, or "
        "growth of a plain-list instance attribute) — overload turns it "
        "into an OOM; give it a bound"
    )
    categories = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_serving_pkg = "serving" in ctx.path.split("/")
        if not in_serving_pkg and not _imports_serving(ctx.tree):
            return
        # Pass 1: instance attributes initialized as unbounded lists, and
        # unbounded deque constructions (flagged where they are built).
        unbounded_attrs: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_deque_call(node):
                if not _deque_is_bounded(node):
                    yield self.finding(
                        ctx,
                        node,
                        "deque() without maxlen on a serving path — a "
                        "burst fills it without bound; pass "
                        "maxlen=<config bound>",
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None or not _is_unbounded_list_expr(value):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute) and is_name(
                        target.value, "self"
                    ):
                        unbounded_attrs.add(target.attr)
        if not unbounded_attrs:
            return
        # Pass 2: growth of those attributes is what makes them a leak.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in GROWTH_METHODS
                    and isinstance(func.value, ast.Attribute)
                    and is_name(func.value.value, "self")
                    and func.value.attr in unbounded_attrs
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"self.{func.value.attr}.{func.attr}(...) grows an "
                        f"unbounded list across requests — use "
                        f"deque(maxlen=...) or shed when full",
                    )
            elif (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
                and isinstance(node.target, ast.Attribute)
                and is_name(node.target.value, "self")
                and node.target.attr in unbounded_attrs
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"self.{node.target.attr} += ... grows an unbounded "
                    f"list across requests — use deque(maxlen=...) or "
                    f"shed when full",
                )
