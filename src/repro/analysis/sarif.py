"""SARIF 2.1.0 export of an :class:`~repro.analysis.engine.AnalysisReport`.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; emitting it makes the linter's findings — including the
dataflow rules' source-to-sink traces, which map onto SARIF ``codeFlows``
— reviewable inline on a pull request instead of in a CI log.

One run object per report: ``tool.driver.rules`` carries every registered
rule (id, severity, short and full description), each reported finding
becomes a ``result``, and suppressed/baselined findings are included with
a ``suppressions`` entry so the artifact is a complete audit of the run,
matching ``--json --verbose``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.engine import AnalysisReport
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro.analysis"

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _location(path: str, line: int, col: int) -> Dict[str, object]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path, "uriBaseId": "SRCROOT"},
            "region": {"startLine": max(line, 1), "startColumn": col + 1},
        }
    }


def _rule_descriptor(rule: Rule) -> Dict[str, object]:
    descriptor: Dict[str, object] = {
        "id": rule.id,
        "name": rule.__class__.__name__,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
        "properties": {"family": rule.family},
    }
    if rule.rationale:
        descriptor["fullDescription"] = {"text": rule.rationale}
    return descriptor


def _code_flow(finding: Finding) -> Dict[str, object]:
    """The source-to-sink hop list as one SARIF thread flow."""
    steps = [
        {
            "location": {
                **_location(path, line, 0),
                "message": {"text": note},
            }
        }
        for path, line, note in finding.trace
    ]
    return {"threadFlows": [{"locations": steps}]}


def _result(finding: Finding, rule_index: Dict[str, int]) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    if finding.snippet:
        result["partialFingerprints"] = {
            # Mirrors the baseline's (rule, path, stripped line) identity,
            # so results stay matched across unrelated line-number drift.
            "reproAnalysis/v1": f"{finding.rule}:{finding.path}:{finding.snippet}"
        }
    if finding.trace:
        result["codeFlows"] = [_code_flow(finding)]
    if finding.properties:
        # The effect rules attach the offending function's inferred
        # signature here; code-scanning UIs render it beside the message.
        result["properties"] = dict(finding.properties)
    suppressions: List[Dict[str, object]] = []
    if finding.suppressed:
        suppressions.append(
            {
                "kind": "inSource",
                "justification": finding.justification or "",
            }
        )
    if finding.baselined:
        suppressions.append(
            {
                "kind": "external",
                "justification": finding.justification or "",
            }
        )
    if suppressions:
        result["suppressions"] = suppressions
    return result


def to_sarif(report: AnalysisReport, rules: Sequence[Rule]) -> str:
    """Render ``report`` as a SARIF 2.1.0 JSON string."""
    ordered = sorted(rules, key=lambda rule: rule.id)
    rule_index = {rule.id: i for i, rule in enumerate(ordered)}
    run: Dict[str, object] = {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "informationUri": "https://example.invalid/repro-analysis",
                "rules": [_rule_descriptor(rule) for rule in ordered],
            }
        },
        "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
        "results": [
            _result(finding, rule_index) for finding in report.findings
        ],
        "properties": {
            "filesScanned": report.files_scanned,
            "reported": len(report.reported),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
        },
    }
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }
    return json.dumps(payload, indent=2)
