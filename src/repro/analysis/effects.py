"""Tier 4: interprocedural effect inference over the project call graph.

The first three tiers answer "what does this line do", "who calls whom",
and "where does this value go".  This tier answers the question the next
two ROADMAP tentpoles (the discrete-event simulator kernel and the
columnar/compiled query kernels) actually need: *what is this function
allowed to do at all*.  Every function gets an inferred effect signature

    {wallclock, global_random, real_io, network_send,
     mutates(owner class, ...), raises(exception, ...)}

seeded from intrinsic tables (``time.monotonic``, ``random.shuffle``,
``open``, ``sock.sendall``, ``network.transfer``, attribute writes, raise
statements) and propagated bottom-up over the strongly-connected
components of the :class:`~repro.analysis.projectgraph.ProjectGraph`
call graph until a fixpoint.

Edge discipline — the part that keeps the lattice honest:

* a **reliable** edge (lexical scope, imports, same-class self-call)
  propagates the callee's full signature;
* a **fallback** edge (any-method-of-this-name, even when the name is
  project-unique) propagates only when the rendered receiver names the
  candidate's class (``self.log.append`` may inherit
  ``MetadataLog.append``; ``pending.append`` may not) — this is the
  "conservative widening" of ambiguous edges: grounded in receiver text,
  never in wishful uniqueness;
* intrinsics are matched at *every* call site regardless of resolution,
  so ``time.sleep(...)`` is never laundered by an unresolvable alias;
* a function *referenced* as a call argument is assumed invoked by the
  callee (``queue.push(when, handler)`` gives the pusher the handler's
  effects) — over-approximation only raises suspicion, which is the
  correct direction for a purity contract.

``raises`` atoms are filtered at each hop by the enclosing ``except``
clauses of the call site (exception-class hierarchy resolved name-wise
across the project; a bare ``except`` or ``except Exception`` swallows
everything).  All other atoms propagate unconditionally.

Like the dataflow tier, only the *local* per-module extraction
(:class:`EffectBase`) is cached — under :data:`EFFECT_TAG`, beside the
pickled ASTs — because the fixpoint is whole-program and cheap, while
parsing and walking are per-module and dominated by I/O.  Everything is
deterministic: modules, functions, edges, SCCs and witness searches all
iterate in sorted order, and causes are computed only after convergence.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.asthelpers import ImportMap
from repro.analysis.projectgraph import MODULE_SCOPE, ProjectGraph

#: Bump when the extraction format changes; part of the effect-cache tag.
EFFECT_VERSION = 1
#: Aux-cache tag under which per-module effect bases are pickled.
EFFECT_TAG = f"effects{EFFECT_VERSION}"

#: Effect atoms.  Tuples so they pickle, hash and sort without ceremony::
#:
#:     ("wallclock",)          reads or blocks on the real clock
#:     ("global_random",)      draws from the process-global RNG / OS entropy
#:     ("real_io",)            touches the filesystem, stdio, or a process
#:     ("network_send",)       puts bytes on a wire (real or simulated)
#:     ("mutates", owner)      writes state owned by ``owner`` —
#:                             "module:Class", ":Class" (class not resolved
#:                             to a module) or "module:<globals>"
#:     ("raises", name)        may raise exception class ``name``
Atom = Tuple
WALLCLOCK: Atom = ("wallclock",)
GLOBAL_RANDOM: Atom = ("global_random",)
REAL_IO: Atom = ("real_io",)
NETWORK_SEND: Atom = ("network_send",)

#: The non-raise atom kinds, in reporting priority order.
EFFECT_KINDS = (
    "wallclock",
    "global_random",
    "network_send",
    "real_io",
    "mutates",
)


def mutates(owner: str) -> Atom:
    """The shared-state-mutation atom for ``owner`` (``module:Class``)."""
    return ("mutates", owner)


def raises(name: str) -> Atom:
    """The may-raise atom for exception class ``name``."""
    return ("raises", name)


def owner_class(owner: str) -> str:
    """Class part of a mutation owner (``repro.core.metalog:MetadataLog``
    → ``MetadataLog``; ``repro.bench:<globals>`` → ``<globals>``)."""
    return owner.rsplit(":", 1)[-1]


def owner_module(owner: str) -> str:
    """Module part of a mutation owner ("" when the class never resolved)."""
    return owner.rsplit(":", 1)[0]


def render_atom(atom: Atom) -> str:
    """Human-facing form of one atom (``mutates(MetadataLog)``)."""
    if atom[0] == "mutates":
        return f"mutates({owner_class(atom[1])})"
    if atom[0] == "raises":
        return f"raises({atom[1]})"
    return atom[0]


@dataclass(frozen=True)
class IntrinsicSite:
    """One syntactic point where an effect enters a function directly."""

    atom: Atom
    lineno: int
    col: int
    #: Human cause, e.g. ``time.perf_counter(...)`` or ``self.peers[...] =``.
    text: str
    #: Exception names caught around this site (``raises`` atoms only —
    #: a raise inside ``try/except ValueError`` never leaves the function).
    caught: FrozenSet[str] = frozenset()


@dataclass
class EffectBase:
    """The cacheable, purely local effect summary of one function.

    Depends only on its module's source text (plus that module's imports),
    never on other modules — the precondition for content-hash caching.
    """

    qualname: str
    module: str
    name: str
    cls: Optional[str]
    lineno: int
    intrinsics: List[IntrinsicSite] = field(default_factory=list)
    #: Call anchors ``(lineno, col)`` wrapped in ``try`` → names caught
    #: there.  Sparse: anchors with nothing caught are simply absent.
    call_catches: Dict[Tuple[int, int], FrozenSet[str]] = field(
        default_factory=dict
    )


# ----------------------------------------------------------------------
# Intrinsic tables


_TIME_WALLCLOCK = frozenset(
    {"time", "monotonic", "perf_counter", "time_ns", "monotonic_ns",
     "perf_counter_ns", "sleep"}
)
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})
_RANDOM_FUNCS = frozenset(
    {"random", "randint", "randrange", "uniform", "gauss", "normalvariate",
     "choice", "choices", "shuffle", "sample", "getrandbits", "randbytes",
     "seed", "betavariate", "expovariate", "triangular", "paretovariate",
     "vonmisesvariate", "weibullvariate", "lognormvariate", "gammavariate",
     "binomialvariate"}
)
_OS_IO = frozenset(
    {"remove", "unlink", "rename", "replace", "makedirs", "mkdir", "rmdir",
     "removedirs", "system", "popen", "listdir", "scandir", "stat", "walk",
     "truncate", "chmod", "chown", "symlink", "link", "open"}
)
_OSPATH_IO = frozenset(
    {"exists", "isfile", "isdir", "islink", "getsize", "getmtime",
     "getatime", "getctime", "realpath"}
)
#: Method names distinctive enough to mean pathlib regardless of receiver.
_PATHLIB_IO = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes", "touch",
     "iterdir", "hardlink_to", "symlink_to"}
)
_SUBPROCESS_IO = frozenset(
    {"run", "call", "check_call", "check_output", "Popen"}
)
#: Socket method names distinctive enough to flag on any receiver.
_SOCKET_SEND = frozenset({"sendall", "sendto", "recvfrom"})
_SOCKET_MODULE = frozenset({"socket", "create_connection", "create_server"})
_REQUESTS_VERBS = frozenset(
    {"get", "post", "put", "delete", "head", "patch", "request"}
)
#: The project's own wire boundary: a priced transfer on the (simulated)
#: network.  Matched on any receiver but ``self``/``cls`` — calling your
#: own ``transfer`` is implementing the wire, not using it.
_PROJECT_SEND = frozenset({"transfer", "broadcast"})

#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {"append", "appendleft", "add", "extend", "extendleft", "insert",
     "update", "setdefault", "pop", "popleft", "popitem", "remove",
     "discard", "clear", "push"}
)

#: Metadata attributes that mark a ``state``-named receiver as the
#: bootstrap's replicated state even without an annotation.  Mirrors
#: RES002's table — the two rules must agree on what "metadata" means.
_METADATA_ATTRS = frozenset(
    {"peers", "blacklist", "schemas", "roles", "user_registry", "serials",
     "admission_epochs", "pending_failovers"}
)
_STATE_TOKEN_RE = re.compile(r"\bstate\b")

_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_CAMEL_RE = re.compile(r"[A-Z]+(?=[A-Z][a-z])|[A-Z]?[a-z0-9]+|[A-Z]+")


def class_name_tokens(name: str) -> FrozenSet[str]:
    """Lower-case tokens a receiver could plausibly use for a class:
    ``MetadataLog`` → {metadata, log, metadatalog}."""
    pieces = [p.lower() for p in _CAMEL_RE.findall(name)]
    return frozenset(pieces) | {name.lower()}


def receiver_name_tokens(text: Optional[str]) -> FrozenSet[str]:
    """Normalized identifier tokens of a rendered receiver, with naive
    de-pluralization (``self._events`` → {events, event}).  snake_case
    splits into its words plus the joined form, so ``self.metadata_log``
    can match ``MetadataLog``'s tokens."""
    if not text:
        return frozenset()
    out: Set[str] = set()
    for token in _TOKEN_RE.findall(text):
        token = token.lower().lstrip("_")
        if not token or token in ("self", "cls"):
            continue
        words = [w for w in token.split("_") if w]
        for word in words + ["".join(words)]:
            out.add(word)
            if word.endswith("s") and len(word) > 2:
                out.add(word[:-1])
    return frozenset(out)


def _receiver_root(expr: ast.expr) -> Optional[str]:
    """Left-most name of an attribute chain (``a.b.c`` → ``a``)."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


# ----------------------------------------------------------------------
# Phase A: per-module extraction


class _Extraction:
    """Walks one module's tree into ``{qualname: EffectBase}``.

    Mirrors the graph's scope/qualname logic exactly (module pseudo-
    function, class bodies attributed to the enclosing function scope,
    nested defs as their own scopes with decorators and defaults
    evaluated in the enclosing scope).  Lambda bodies are attributed to
    the enclosing function — a documented over-approximation.
    """

    def __init__(self, module_name: str, tree: ast.Module) -> None:
        self.module = module_name
        self.imports = ImportMap(tree)
        self.functions: Dict[str, EffectBase] = {}
        self.class_bases: Dict[str, Tuple[str, ...]] = {}
        self.local_classes: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self.local_classes.add(node.name)
                bases = []
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        bases.append(base.id)
                    elif isinstance(base, ast.Attribute):
                        bases.append(base.attr)
                self.class_bases[node.name] = tuple(bases)
        mod_scope = f"{module_name}:{MODULE_SCOPE}"
        self._walk_function(
            qual=mod_scope,
            name=MODULE_SCOPE,
            cls=None,
            lineno=0,
            body=tree.body,
            method_cls=None,
            self_name=None,
            annotations={},
        )

    # -- scope plumbing ------------------------------------------------

    def _walk_function(
        self,
        qual: str,
        name: str,
        cls: Optional[str],
        lineno: int,
        body: Sequence[ast.stmt],
        method_cls: Optional[str],
        self_name: Optional[str],
        annotations: Dict[str, str],
    ) -> None:
        base = EffectBase(
            qualname=qual, module=self.module, name=name, cls=cls,
            lineno=lineno,
        )
        self.functions[qual] = base
        state = _ScopeState(
            base=base,
            method_cls=method_cls,
            self_name=self_name,
            annotations=annotations,
            globals_declared=set(),
        )
        self._visit_block(body, state, direct_cls=None, caught=frozenset())

    def _child_qual(
        self, funcname: str, scope: str, direct_cls: Optional[str]
    ) -> str:
        if direct_cls is not None:
            return f"{self.module}:{direct_cls}.{funcname}"
        if scope.endswith(f":{MODULE_SCOPE}"):
            return f"{self.module}:{funcname}"
        return f"{scope}.{funcname}"

    def _enter_def(
        self,
        funcdef: ast.AST,
        state: "_ScopeState",
        direct_cls: Optional[str],
        caught: FrozenSet[str],
    ) -> None:
        # Decorators, defaults and annotations evaluate at def time, in
        # the *enclosing* scope.
        args = funcdef.args  # type: ignore[attr-defined]
        for expr in list(funcdef.decorator_list) + list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            self._visit_expr(expr, state, caught)
        qual = self._child_qual(
            funcdef.name,  # type: ignore[attr-defined]
            state.base.qualname,
            direct_cls,
        )
        params = [a.arg for a in args.posonlyargs + args.args]
        cls = direct_cls
        method_cls = direct_cls if direct_cls is not None else state.method_cls
        self_name = params[0] if cls is not None and params else None
        annotations: Dict[str, str] = {}
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            ann = self._annotation_class(arg.annotation)
            if ann is not None:
                annotations[arg.arg] = ann
        self._walk_function(
            qual=qual,
            name=funcdef.name,  # type: ignore[attr-defined]
            cls=cls,
            lineno=funcdef.lineno,  # type: ignore[attr-defined]
            body=funcdef.body,  # type: ignore[attr-defined]
            method_cls=method_cls,
            self_name=self_name,
            annotations=annotations,
        )

    @staticmethod
    def _annotation_class(ann: Optional[ast.expr]) -> Optional[str]:
        if ann is None:
            return None
        if isinstance(ann, ast.Name):
            return ann.id
        if isinstance(ann, ast.Attribute):
            return ann.attr
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            return ann.value.split(".")[-1].strip() or None
        if isinstance(ann, ast.Constant) and ann.value is None:
            return None
        if isinstance(ann, ast.Subscript):  # Optional[X] / list[X] — skip
            return None
        return None

    # -- statement walk ------------------------------------------------

    def _visit_block(
        self,
        stmts: Sequence[ast.stmt],
        state: "_ScopeState",
        direct_cls: Optional[str],
        caught: FrozenSet[str],
    ) -> None:
        for stmt in stmts:
            self._visit_stmt(stmt, state, direct_cls, caught)

    def _visit_stmt(
        self,
        stmt: ast.stmt,
        state: "_ScopeState",
        direct_cls: Optional[str],
        caught: FrozenSet[str],
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._enter_def(stmt, state, direct_cls, caught)
            return
        if isinstance(stmt, ast.ClassDef):
            for expr in list(stmt.decorator_list) + list(stmt.bases) + [
                kw.value for kw in stmt.keywords
            ]:
                self._visit_expr(expr, state, caught)
            # Class bodies execute at definition time in this scope.
            self._visit_block(stmt.body, state, stmt.name, caught)
            return
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            names: Set[str] = set()
            for handler in stmt.handlers:
                names |= self._handler_names(handler)
            self._visit_block(stmt.body, state, direct_cls, caught | names)
            for handler in stmt.handlers:
                self._visit_block(handler.body, state, direct_cls, caught)
            self._visit_block(stmt.orelse, state, direct_cls, caught)
            self._visit_block(stmt.finalbody, state, direct_cls, caught)
            return
        if isinstance(stmt, ast.If):
            self._visit_expr(stmt.test, state, caught)
            self._visit_block(stmt.body, state, direct_cls, caught)
            self._visit_block(stmt.orelse, state, direct_cls, caught)
            return
        if isinstance(stmt, ast.While):
            self._visit_expr(stmt.test, state, caught)
            self._visit_block(stmt.body, state, direct_cls, caught)
            self._visit_block(stmt.orelse, state, direct_cls, caught)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter, state, caught)
            self._record_target_mutation(stmt.target, state, stmt)
            self._visit_block(stmt.body, state, direct_cls, caught)
            self._visit_block(stmt.orelse, state, direct_cls, caught)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._visit_expr(item.context_expr, state, caught)
            self._visit_block(stmt.body, state, direct_cls, caught)
            return
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            self._visit_expr(stmt.subject, state, caught)
            for case in stmt.cases:
                if case.guard is not None:
                    self._visit_expr(case.guard, state, caught)
                self._visit_block(case.body, state, direct_cls, caught)
            return
        if isinstance(stmt, ast.Global):
            state.globals_declared.update(stmt.names)
            return
        if isinstance(stmt, ast.Raise):
            self._record_raise(stmt, state, caught)
            if stmt.exc is not None:
                self._visit_expr(stmt.exc, state, caught)
            if stmt.cause is not None:
                self._visit_expr(stmt.cause, state, caught)
            return
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._record_target_mutation(target, state, stmt)
            self._visit_expr(stmt.value, state, caught)
            return
        if isinstance(stmt, ast.AnnAssign):
            self._record_target_mutation(stmt.target, state, stmt)
            if stmt.value is not None:
                self._visit_expr(stmt.value, state, caught)
            return
        if isinstance(stmt, ast.AugAssign):
            self._record_target_mutation(stmt.target, state, stmt)
            self._visit_expr(stmt.value, state, caught)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_target_mutation(target, state, stmt)
            return
        # Return / Expr / Assert / everything else: scan expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._visit_expr(child, state, caught)

    @staticmethod
    def _handler_names(handler: ast.ExceptHandler) -> Set[str]:
        if handler.type is None:
            return {"BaseException"}
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        names: Set[str] = set()
        for t in types:
            if isinstance(t, ast.Name):
                names.add(t.id)
            elif isinstance(t, ast.Attribute):
                names.add(t.attr)
        return names

    # -- expression walk -----------------------------------------------

    def _visit_expr(
        self, expr: ast.expr, state: "_ScopeState", caught: FrozenSet[str]
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._record_call(node, state, caught)

    def _record_call(
        self, node: ast.Call, state: "_ScopeState", caught: FrozenSet[str]
    ) -> None:
        if caught:
            anchor = (node.lineno, node.col_offset)
            state.base.call_catches[anchor] = (
                state.base.call_catches.get(anchor, frozenset()) | caught
            )
        func = node.func
        if isinstance(func, ast.Name):
            self._classify_bare_call(node, func.id, state)
        elif isinstance(func, ast.Attribute):
            self._classify_attr_call(node, func, state)

    def _add(
        self,
        state: "_ScopeState",
        node: ast.AST,
        atom: Atom,
        text: str,
        caught: FrozenSet[str] = frozenset(),
    ) -> None:
        state.base.intrinsics.append(
            IntrinsicSite(
                atom=atom,
                lineno=getattr(node, "lineno", state.base.lineno or 1),
                col=getattr(node, "col_offset", 0),
                text=text,
                caught=caught,
            )
        )

    def _classify_bare_call(
        self, node: ast.Call, name: str, state: "_ScopeState"
    ) -> None:
        if name in ("open", "input", "print", "breakpoint"):
            self._add(state, node, REAL_IO, f"{name}(...)")
            return
        origin = self.imports.member_origin(name)
        if origin is None:
            return
        module, member = origin
        if module == "time" and member in _TIME_WALLCLOCK:
            self._add(state, node, WALLCLOCK, f"time.{member}(...)")
        elif module == "random" and (
            member in _RANDOM_FUNCS or member == "SystemRandom"
        ):
            self._add(state, node, GLOBAL_RANDOM, f"random.{member}(...)")
        elif module == "os" and member in _OS_IO:
            self._add(state, node, REAL_IO, f"os.{member}(...)")
        elif module == "os" and member == "urandom":
            self._add(state, node, GLOBAL_RANDOM, "os.urandom(...)")
            self._add(state, node, REAL_IO, "os.urandom(...)")
        elif module == "os.path" and member in _OSPATH_IO:
            self._add(state, node, REAL_IO, f"os.path.{member}(...)")
        elif module == "subprocess" and member in _SUBPROCESS_IO:
            self._add(state, node, REAL_IO, f"subprocess.{member}(...)")
        elif module == "socket" and member in _SOCKET_MODULE:
            self._add(state, node, NETWORK_SEND, f"socket.{member}(...)")
            self._add(state, node, REAL_IO, f"socket.{member}(...)")
        elif module == "urllib.request" and member == "urlopen":
            self._add(state, node, NETWORK_SEND, "urllib.request.urlopen(...)")
            self._add(state, node, REAL_IO, "urllib.request.urlopen(...)")

    def _classify_attr_call(
        self, node: ast.Call, func: ast.Attribute, state: "_ScopeState"
    ) -> None:
        name = func.attr
        recv = func.value
        try:
            recv_text = ast.unparse(recv)
        except Exception:  # pragma: no cover - unparse is total on exprs
            recv_text = "<expr>"
        root = _receiver_root(recv)
        recv_module = None
        if root is not None:
            recv_module = self.imports.module_of(root)
            if recv_module is None and root in (
                "time", "random", "os", "socket", "subprocess", "datetime",
                "shutil", "requests", "urllib",
            ):
                recv_module = root
        # stdlib modules by receiver
        if recv_module == "time" and name in _TIME_WALLCLOCK:
            self._add(state, node, WALLCLOCK, f"{recv_text}.{name}(...)")
        elif name in _DATETIME_NOW and self._is_datetime(root, recv_text):
            self._add(state, node, WALLCLOCK, f"{recv_text}.{name}(...)")
        elif recv_module == "random" and recv_text == root and (
            name in _RANDOM_FUNCS or name == "SystemRandom"
        ):
            # Only the module itself: ``rng.shuffle`` on a seeded
            # ``random.Random`` instance is deterministic and fine.
            self._add(state, node, GLOBAL_RANDOM, f"random.{name}(...)")
        elif recv_module == "os" and recv_text in ("os", root) and (
            name in _OS_IO or name == "urandom"
        ):
            if name == "urandom":
                self._add(state, node, GLOBAL_RANDOM, "os.urandom(...)")
            self._add(state, node, REAL_IO, f"os.{name}(...)")
        elif recv_text == "os.path" and name in _OSPATH_IO:
            self._add(state, node, REAL_IO, f"os.path.{name}(...)")
        elif recv_module == "subprocess" and name in _SUBPROCESS_IO:
            self._add(state, node, REAL_IO, f"subprocess.{name}(...)")
        elif recv_module == "socket" and name in _SOCKET_MODULE:
            self._add(state, node, NETWORK_SEND, f"socket.{name}(...)")
            self._add(state, node, REAL_IO, f"socket.{name}(...)")
        elif recv_module == "requests" and name in _REQUESTS_VERBS:
            self._add(state, node, NETWORK_SEND, f"requests.{name}(...)")
            self._add(state, node, REAL_IO, f"requests.{name}(...)")
        elif name == "urlopen":
            self._add(state, node, NETWORK_SEND, f"{recv_text}.urlopen(...)")
            self._add(state, node, REAL_IO, f"{recv_text}.urlopen(...)")
        elif name in _PATHLIB_IO:
            self._add(state, node, REAL_IO, f"{recv_text}.{name}(...)")
        elif name in _SOCKET_SEND:
            self._add(state, node, NETWORK_SEND, f"{recv_text}.{name}(...)")
            self._add(state, node, REAL_IO, f"{recv_text}.{name}(...)")
        elif name in ("write", "flush") and root == "sys":
            self._add(state, node, REAL_IO, f"{recv_text}.{name}(...)")
        elif name in _PROJECT_SEND and recv_text not in ("self", "cls"):
            self._add(state, node, NETWORK_SEND, f"{recv_text}.{name}(...)")
        # in-place container mutation through a trackable receiver
        if name in _MUTATOR_METHODS:
            owner = self._mutation_owner(recv, state)
            if owner is not None:
                self._add(
                    state, node, mutates(owner),
                    f"{recv_text}.{name}(...)",
                )

    @staticmethod
    def _is_datetime(root: Optional[str], recv_text: str) -> bool:
        return root == "datetime" or recv_text in ("datetime", "dt", "date")

    # -- mutations -----------------------------------------------------

    def _record_target_mutation(
        self, target: ast.expr, state: "_ScopeState", stmt: ast.stmt
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target_mutation(elt, state, stmt)
            return
        if isinstance(target, ast.Starred):
            self._record_target_mutation(target.value, state, stmt)
            return
        # unwrap subscripts: ``x.attr[k] = v`` mutates ``x.attr``
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            owner = self._mutation_owner(node.value, state, attr=node.attr)
            if owner is not None:
                try:
                    text = f"{ast.unparse(node)} ="
                except Exception:  # pragma: no cover
                    text = f"<expr>.{node.attr} ="
                self._add(state, stmt, mutates(owner), text)
            return
        if isinstance(node, ast.Name) and node.id in state.globals_declared:
            self._add(
                state, stmt,
                mutates(f"{self.module}:<globals>"),
                f"global {node.id} =",
            )

    def _mutation_owner(
        self,
        recv: ast.expr,
        state: "_ScopeState",
        attr: Optional[str] = None,
    ) -> Optional[str]:
        """Owner of a mutation through receiver ``recv``.

        Tiers, most precise first: ``self``/``cls`` → the enclosing class;
        an annotated parameter → the annotation's class; a receiver whose
        text contains the token ``state`` with a known metadata attribute
        → ``BootstrapState`` by convention.  Locals are unprovable and
        yield None (a local list is not shared state).
        """
        root = _receiver_root(recv)
        try:
            recv_text = ast.unparse(recv)
        except Exception:  # pragma: no cover
            recv_text = ""
        if root is not None and (
            root in ("self", "cls") or root == state.self_name
        ):
            if state.method_cls is not None:
                # ``self.state.peers[...] = ...`` is still the bootstrap's
                # metadata, not merely "some attribute of mine".
                if attr in _METADATA_ATTRS and _STATE_TOKEN_RE.search(
                    recv_text
                ):
                    return self._resolve_class_owner("BootstrapState")
                return f"{self.module}:{state.method_cls}"
            return None
        if root is not None and root in state.annotations:
            return self._resolve_class_owner(state.annotations[root])
        if attr in _METADATA_ATTRS and _STATE_TOKEN_RE.search(recv_text):
            return self._resolve_class_owner("BootstrapState")
        if root is None and attr is None:
            return None
        return None

    def _resolve_class_owner(self, class_name: str) -> str:
        if class_name in self.local_classes:
            return f"{self.module}:{class_name}"
        origin = self.imports.member_origin(class_name)
        if origin is not None:
            return f"{origin[0]}:{origin[1]}"
        return f":{class_name}"

    # -- raises --------------------------------------------------------

    def _record_raise(
        self, stmt: ast.Raise, state: "_ScopeState", caught: FrozenSet[str]
    ) -> None:
        exc = stmt.exc
        if exc is None:  # bare re-raise: already propagating from a call
            return
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = None
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Attribute):
            name = exc.attr
        if name is not None:
            self._add(
                state, stmt, raises(name), f"raise {name}", caught=caught
            )


@dataclass
class _ScopeState:
    base: EffectBase
    method_cls: Optional[str]
    self_name: Optional[str]
    annotations: Dict[str, str]
    globals_declared: Set[str]


def extract_module_effects(
    module_name: str, tree: ast.Module
) -> Dict[str, object]:
    """Phase A for one module: the cacheable payload."""
    extraction = _Extraction(module_name, tree)
    return {
        "functions": extraction.functions,
        "class_bases": extraction.class_bases,
    }


def _payload_ok(payload: object) -> bool:
    return (
        isinstance(payload, dict)
        and isinstance(payload.get("functions"), dict)
        and isinstance(payload.get("class_bases"), dict)
        and all(
            isinstance(v, EffectBase)
            for v in payload["functions"].values()  # type: ignore[index]
        )
    )


def compute_effect_bases(
    graph: ProjectGraph,
) -> Tuple[Dict[str, EffectBase], Dict[str, FrozenSet[str]]]:
    """Phase A over every module, memoized on the graph and persisted per
    module in the shared AST cache under :data:`EFFECT_TAG`."""
    memo = getattr(graph, "memo", None)
    if memo is not None and "effect_bases" in memo:
        return memo["effect_bases"]
    cache = getattr(graph, "ast_cache", None)
    functions: Dict[str, EffectBase] = {}
    class_bases: Dict[str, Set[str]] = {}
    for name in sorted(graph.modules):
        mod = graph.modules[name]
        source = "\n".join(mod.lines)
        payload = None
        if cache is not None:
            loaded = cache.load_aux(source, EFFECT_TAG)
            if _payload_ok(loaded):
                payload = loaded
        if payload is None:
            payload = extract_module_effects(mod.name, mod.tree)
            if cache is not None:
                cache.store_aux(source, EFFECT_TAG, payload)
        functions.update(payload["functions"])  # type: ignore[index]
        for cls, bases in payload["class_bases"].items():  # type: ignore[union-attr]
            class_bases.setdefault(cls, set()).update(bases)
    result = (
        functions,
        {cls: frozenset(bases) for cls, bases in class_bases.items()},
    )
    if memo is not None:
        memo["effect_bases"] = result
    return result


# ----------------------------------------------------------------------
# Phase B: the SCC fixpoint


@dataclass(frozen=True)
class _PropEdge:
    callee: str
    lineno: int
    caught: FrozenSet[str]


@dataclass(frozen=True)
class EffectSignature:
    """One function's inferred effects, rule- and report-facing."""

    wallclock: bool = False
    global_random: bool = False
    real_io: bool = False
    network_send: bool = False
    mutates: Tuple[str, ...] = ()
    raises: Tuple[str, ...] = ()

    @property
    def pure(self) -> bool:
        """No observable side effects.  Raising is control flow, not an
        effect — a pure evaluator may still raise on malformed input."""
        return not (
            self.wallclock
            or self.global_random
            or self.real_io
            or self.network_send
            or self.mutates
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "wallclock": self.wallclock,
            "global_random": self.global_random,
            "real_io": self.real_io,
            "network_send": self.network_send,
            "mutates": list(self.mutates),
            "raises": list(self.raises),
        }

    def render(self) -> str:
        parts: List[str] = []
        for kind in ("wallclock", "global_random", "real_io", "network_send"):
            if getattr(self, kind):
                parts.append(kind)
        for owner in self.mutates:
            parts.append(f"mutates({owner_class(owner)})")
        for exc in self.raises:
            parts.append(f"raises({exc})")
        return "{" + ", ".join(parts) + "}" if parts else "pure"

    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom]) -> "EffectSignature":
        kinds = {"wallclock": False, "global_random": False,
                 "real_io": False, "network_send": False}
        muts: Set[str] = set()
        excs: Set[str] = set()
        for atom in atoms:
            if atom[0] in kinds:
                kinds[atom[0]] = True
            elif atom[0] == "mutates":
                muts.add(atom[1])
            elif atom[0] == "raises":
                excs.add(atom[1])
        return cls(
            mutates=tuple(sorted(muts)), raises=tuple(sorted(excs)), **kinds
        )


PURE_SIGNATURE = EffectSignature()

#: Witness hop: (function qualname, line of the call/intrinsic, note).
WitnessHop = Tuple[str, int, str]


class EffectInference:
    """The fixpoint engine, built once per analysis run."""

    def __init__(
        self,
        graph: ProjectGraph,
        bases: Dict[str, EffectBase],
        class_bases: Dict[str, FrozenSet[str]],
    ) -> None:
        self.graph = graph
        self.bases = bases
        self.class_bases = class_bases
        #: caller -> propagation edges, sorted by (lineno, callee).
        self.calls: Dict[str, List[_PropEdge]] = {}
        self._build_edges()
        self.atoms: Dict[str, FrozenSet[Atom]] = {}
        self._infer()

    @classmethod
    def for_graph(cls, graph: ProjectGraph) -> "EffectInference":
        """The per-run engine, shared by every effect rule via the
        graph's memo (one extraction + one fixpoint per analysis run)."""
        memo = getattr(graph, "memo", None)
        if memo is not None and "effect_inference" in memo:
            return memo["effect_inference"]
        bases, class_bases = compute_effect_bases(graph)
        engine = cls(graph, bases, class_bases)
        if memo is not None:
            memo["effect_inference"] = engine
        return engine

    # -- edges ---------------------------------------------------------

    def _build_edges(self) -> None:
        staged: Dict[str, Dict[Tuple[int, str], FrozenSet[str]]] = {}
        for site in self.graph.call_sites:
            base = self.bases.get(site.caller)
            caught = frozenset()
            if base is not None:
                caught = base.call_catches.get(
                    (site.lineno, site.col), frozenset()
                )
            targets: Set[str] = set()
            reliable = site.precise and not site.via_fallback
            for callee in site.resolved:
                if callee not in self.bases:
                    continue
                if reliable or self._receiver_matches(site.receiver, callee):
                    targets.add(callee)
            for ref in site.func_ref_args:
                if ref in self.bases:
                    targets.add(ref)
            if not targets:
                continue
            per_caller = staged.setdefault(site.caller, {})
            for callee in sorted(targets):
                key = (site.lineno, callee)
                prior = per_caller.get(key)
                # Same call repeated on one line under different try
                # scopes: intersect (an exception escapes only if some
                # occurrence lets it).
                per_caller[key] = (
                    caught if prior is None else prior & caught
                )
        for caller in sorted(staged):
            self.calls[caller] = [
                _PropEdge(callee=callee, lineno=lineno, caught=caught)
                for (lineno, callee), caught in sorted(staged[caller].items())
            ]

    def _receiver_matches(
        self, receiver: Optional[str], callee: str
    ) -> bool:
        """Token gate for fallback edges: the rendered receiver must name
        the candidate method's class."""
        info = self.graph.functions.get(callee)
        if info is None or info.cls is None:
            return False
        rtokens = receiver_name_tokens(receiver)
        if not rtokens:
            return False
        return bool(rtokens & class_name_tokens(info.cls))

    # -- fixpoint ------------------------------------------------------

    def _sccs(self) -> List[List[str]]:
        """Tarjan's algorithm, iterative, deterministic; components come
        out callees-first (reverse topological order of the condensation),
        which is exactly the order a bottom-up pass wants."""
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]
        succ = {
            q: [e.callee for e in self.calls.get(q, ())] for q in self.bases
        }

        for root in sorted(self.bases):
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, child_i = work.pop()
                if child_i == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = succ[node]
                for i in range(child_i, len(children)):
                    child = children[i]
                    if child not in index:
                        work.append((node, i + 1))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if recurse:
                    continue
                if low[node] == index[node]:
                    comp: List[str] = []
                    while True:
                        top = stack.pop()
                        on_stack.discard(top)
                        comp.append(top)
                        if top == node:
                            break
                    sccs.append(sorted(comp))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return sccs

    def _local_atoms(self, qual: str) -> Set[Atom]:
        atoms: Set[Atom] = set()
        for site in self.bases[qual].intrinsics:
            if site.atom[0] == "raises" and self._covered(
                site.atom[1], site.caught
            ):
                continue
            atoms.add(site.atom)
        return atoms

    def _covered(self, exc: str, caught: FrozenSet[str]) -> bool:
        if not caught:
            return False
        if "BaseException" in caught or "Exception" in caught:
            return True
        seen = {exc}
        frontier = [exc]
        while frontier:
            name = frontier.pop()
            if name in caught:
                return True
            for base in sorted(self.class_bases.get(name, ())):
                if base not in seen:
                    seen.add(base)
                    frontier.append(base)
        return False

    def _infer(self) -> None:
        for comp in self._sccs():
            comp_set = set(comp)
            trivial = len(comp) == 1 and all(
                e.callee not in comp_set for e in self.calls.get(comp[0], ())
            )
            while True:
                changed = False
                for qual in comp:
                    atoms = self._local_atoms(qual)
                    for edge in self.calls.get(qual, ()):
                        for atom in self.atoms.get(edge.callee, ()):
                            if atom[0] == "raises" and self._covered(
                                atom[1], edge.caught
                            ):
                                continue
                            atoms.add(atom)
                    frozen = frozenset(atoms)
                    if frozen != self.atoms.get(qual):
                        self.atoms[qual] = frozen
                        changed = True
                if trivial or not changed:
                    break

    # -- queries -------------------------------------------------------

    def signature(self, qual: str) -> EffectSignature:
        atoms = self.atoms.get(qual)
        if not atoms:
            return PURE_SIGNATURE
        return EffectSignature.from_atoms(atoms)

    def all_signatures(self) -> Dict[str, EffectSignature]:
        return {qual: self.signature(qual) for qual in sorted(self.bases)}

    def has_effect(self, qual: str, pred: Callable[[Atom], bool]) -> bool:
        return any(pred(atom) for atom in self.atoms.get(qual, ()))

    def witness(
        self,
        qual: str,
        pred: Callable[[Atom], bool],
        exclude: FrozenSet[str] = frozenset(),
    ) -> Optional[List[WitnessHop]]:
        """A deterministic shortest call chain from ``qual`` to a local
        intrinsic matching ``pred``, or None.

        ``exclude`` names functions the chain may not pass through (used
        by ATOM001 to ask "is there a mutation path *avoiding* the WAL
        reducer?").  Computed after convergence, so iteration order of
        the fixpoint can never change a witness.
        """
        if qual not in self.bases or qual in exclude:
            return None
        parent: Dict[str, Optional[Tuple[str, int]]] = {qual: None}
        frontier = [qual]
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                site = self._first_intrinsic(node, pred)
                if site is not None:
                    return self._build_path(node, parent, site)
                for edge in self.calls.get(node, ()):
                    callee = edge.callee
                    if callee in parent or callee in exclude:
                        continue
                    if not any(
                        pred(a) for a in self.atoms.get(callee, ())
                    ):
                        continue
                    parent[callee] = (node, edge.lineno)
                    next_frontier.append(callee)
            frontier = sorted(set(next_frontier))
        return None

    def _first_intrinsic(
        self, qual: str, pred: Callable[[Atom], bool]
    ) -> Optional[IntrinsicSite]:
        matches = [s for s in self.bases[qual].intrinsics if pred(s.atom)]
        if not matches:
            return None
        return min(matches, key=lambda s: (s.lineno, s.col, s.text))

    def _build_path(
        self,
        end: str,
        parent: Dict[str, Optional[Tuple[str, int]]],
        site: IntrinsicSite,
    ) -> List[WitnessHop]:
        # Walk parent links from the grounded end back to the root; the
        # int beside each qual is the line *its parent* called it from.
        rev: List[Tuple[str, int]] = []
        cursor: Optional[str] = end
        while cursor is not None:
            link = parent[cursor]
            if link is None:
                rev.append((cursor, -1))
                cursor = None
            else:
                rev.append((cursor, link[1]))
                cursor = link[0]
        rev.reverse()
        hops: List[WitnessHop] = []
        for i, (node_qual, _) in enumerate(rev):
            if i + 1 < len(rev):
                callee_qual, call_line = rev[i + 1]
                hops.append(
                    (
                        node_qual,
                        call_line,
                        f"calls {short_qual(callee_qual)}",
                    )
                )
            else:
                hops.append((node_qual, site.lineno, site.text))
        return hops


def short_qual(qual: str) -> str:
    """``repro.core.metalog:MetadataLog.append`` → ``MetadataLog.append``;
    the module pseudo-function renders as ``module top-level``."""
    module, _, func = qual.partition(":")
    if func == MODULE_SCOPE:
        return f"{module} top-level"
    return func or qual


def dotted_qual(qual: str) -> str:
    """CLI-facing form: ``repro.sim.events:EventQueue.run`` →
    ``repro.sim.events.EventQueue.run``."""
    return qual.replace(":", ".", 1)


def parse_dotted_qual(
    dotted: str, bases: Dict[str, EffectBase]
) -> Optional[str]:
    """Accept either the internal ``module:Qual.name`` form or the natural
    dotted form and find the matching function qualname."""
    if dotted in bases:
        return dotted
    if ":" in dotted:
        return None
    # Try every split point, longest module prefix first.
    parts = dotted.split(".")
    for i in range(len(parts) - 1, 0, -1):
        candidate = ".".join(parts[:i]) + ":" + ".".join(parts[i:])
        if candidate in bases:
            return candidate
    mod_scope = f"{dotted}:{MODULE_SCOPE}"
    if mod_scope in bases:
        return mod_scope
    return None
