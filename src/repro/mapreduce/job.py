"""MapReduce job specifications and results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import MapReduceError

# A map function turns one input record into zero or more (key, value) pairs.
MapFn = Callable[[object], Sequence[Tuple[object, object]]]
# A reduce function turns (key, all values for key) into output records.
ReduceFn = Callable[[object, List[object]], Sequence[object]]


@dataclass
class SplitData:
    """What an input split yields when fetched.

    ``local_seconds`` is the simulated time the split's host spent producing
    the records — for HadoopDB this is the local database query cost, which
    the SMS planner pushes into the map task.
    """

    records: List[object]
    local_seconds: float = 0.0
    bytes_estimate: int = 0


@dataclass
class InputSplit:
    """One map task's input: a host and a fetch callback run on that host."""

    host: str
    fetch: Callable[[], SplitData]
    label: str = ""


@dataclass
class MapReduceJob:
    """A single MapReduce job.

    ``reduce_fn=None`` makes the job map-only (the paper's Q1 compiles to a
    map-only job).  ``output_path`` persists the output to HDFS, which chained
    jobs read back (HadoopDB's multi-join queries are chains of jobs).
    """

    name: str
    splits: List[InputSplit]
    map_fn: MapFn
    reduce_fn: Optional[ReduceFn] = None
    num_reducers: int = 1
    output_path: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.splits:
            raise MapReduceError(f"job {self.name!r} has no input splits")
        if self.num_reducers < 1:
            raise MapReduceError(
                f"job {self.name!r} needs at least one reducer"
            )


@dataclass
class PhaseTimings:
    """Simulated duration breakdown of one job."""

    startup_s: float = 0.0
    map_s: float = 0.0
    shuffle_s: float = 0.0
    reduce_s: float = 0.0
    hdfs_write_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (
            self.startup_s
            + self.map_s
            + self.shuffle_s
            + self.reduce_s
            + self.hdfs_write_s
        )


@dataclass
class JobResult:
    """Output records plus the simulated cost of producing them."""

    job_name: str
    records: List[object]
    timings: PhaseTimings
    bytes_shuffled: int = 0
    map_tasks: int = 0
    reduce_tasks: int = 0

    @property
    def duration_s(self) -> float:
        return self.timings.total_s
