"""A miniature MapReduce framework with a simulated HDFS.

BestPeer++ "implement[s] a MapReduce-style engine" and mounts "a Hadoop
distributed file system (HDFS) ... at system start time to serve as the
temporal storage media for MapReduce jobs" (Section 5.4); HadoopDB runs on
the real Hadoop.  This package is the reproduction's Hadoop: a deterministic
in-process engine that models the two costs the paper's evaluation hinges on —

* **job startup**: "Hadoop requires approximately 10-15 sec to launch all map
  tasks" (Section 6.1.6), and
* **pull-based shuffle delay**: "there is a noticeable delay between the time
  point of map completion and the time point of those completion events being
  retrieved by the reduce task" (Section 6.1.7).

Everything runs for real (map functions, partitioning, sort, reduce); only
time is simulated.
"""

from repro.mapreduce.hdfs import Hdfs, HdfsFile
from repro.mapreduce.job import InputSplit, JobResult, MapReduceJob, SplitData
from repro.mapreduce.engine import MapReduceConfig, MapReduceEngine

__all__ = [
    "Hdfs",
    "HdfsFile",
    "InputSplit",
    "SplitData",
    "MapReduceJob",
    "JobResult",
    "MapReduceConfig",
    "MapReduceEngine",
]
