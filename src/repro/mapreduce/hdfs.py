"""Simulated HDFS: a replicated block store over the simulated network.

Matches the configuration the paper uses for HadoopDB (Section 6.1.3):
256 MB blocks, replication factor 3.  Reads prefer a local replica; writes
pipeline each block to ``replication`` datanodes and pay the network cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HdfsError
from repro.sim.network import SimNetwork

DEFAULT_BLOCK_SIZE = 256 * 1024 * 1024
DEFAULT_REPLICATION = 3


@dataclass
class HdfsBlock:
    """One block of a file: a slice of records plus its replica placement."""

    size_bytes: int
    records: List[object]
    replica_hosts: Tuple[str, ...]


@dataclass
class HdfsFile:
    """A write-once file made of replicated blocks."""

    path: str
    blocks: List[HdfsBlock] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return sum(block.size_bytes for block in self.blocks)

    @property
    def records(self) -> List[object]:
        collected: List[object] = []
        for block in self.blocks:
            collected.extend(block.records)
        return collected


class Hdfs:
    """The namenode + datanode ensemble, simulated in one object."""

    def __init__(
        self,
        network: SimNetwork,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = DEFAULT_REPLICATION,
    ) -> None:
        if block_size <= 0:
            raise HdfsError(f"block size must be positive: {block_size}")
        if replication < 1:
            raise HdfsError(f"replication must be >= 1: {replication}")
        self.network = network
        self.block_size = block_size
        self.replication = replication
        self._datanodes: List[str] = []
        self._files: Dict[str, HdfsFile] = {}
        self._placement_cursor = itertools.count()

    # ------------------------------------------------------------------
    # Cluster membership
    # ------------------------------------------------------------------
    def register_datanode(self, host: str) -> None:
        if host in self._datanodes:
            raise HdfsError(f"datanode already registered: {host!r}")
        if not self.network.has_host(host):
            raise HdfsError(f"datanode is not a network host: {host!r}")
        self._datanodes.append(host)

    @property
    def datanodes(self) -> List[str]:
        return list(self._datanodes)

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise HdfsError(f"no such file: {path!r}")
        del self._files[path]

    def list_files(self) -> List[str]:
        return sorted(self._files)

    def file(self, path: str) -> HdfsFile:
        hdfs_file = self._files.get(path)
        if hdfs_file is None:
            raise HdfsError(f"no such file: {path!r}")
        return hdfs_file

    def write(
        self,
        path: str,
        records: Sequence[object],
        size_bytes: int,
        writer_host: str,
    ) -> float:
        """Write a file from ``writer_host``; returns the simulated duration.

        The record list is split into blocks by byte proportion; each block
        is pipelined to ``replication`` datanodes (the first replica prefers
        the writer itself, as real HDFS does).
        """
        if not self._datanodes:
            raise HdfsError("no datanodes registered")
        if path in self._files:
            raise HdfsError(f"file already exists (HDFS is write-once): {path!r}")
        if size_bytes < 0:
            raise HdfsError(f"negative file size: {size_bytes}")

        records = list(records)
        block_count = max(1, -(-size_bytes // self.block_size))  # ceil div
        per_block = max(1, -(-len(records) // block_count)) if records else 0
        blocks: List[HdfsBlock] = []
        duration = 0.0
        for block_index in range(block_count):
            if records:
                chunk = records[
                    block_index * per_block : (block_index + 1) * per_block
                ]
            else:
                chunk = []
            chunk_bytes = (
                size_bytes // block_count
                if block_index < block_count - 1
                else size_bytes - (size_bytes // block_count) * (block_count - 1)
            )
            replicas = self._place_replicas(writer_host)
            # The write pipeline forwards the block replica-to-replica.
            source = writer_host
            for replica in replicas:
                duration += self.network.transfer(source, replica, chunk_bytes)
                source = replica
            blocks.append(HdfsBlock(chunk_bytes, list(chunk), tuple(replicas)))
        self._files[path] = HdfsFile(path, blocks)
        return duration

    def read(self, path: str, reader_host: str) -> Tuple[List[object], float]:
        """Read a whole file at ``reader_host``; returns (records, duration)."""
        hdfs_file = self.file(path)
        records: List[object] = []
        duration = 0.0
        for block in hdfs_file.blocks:
            if reader_host in block.replica_hosts:
                source = reader_host  # local read, loopback pricing
            else:
                source = block.replica_hosts[0]
            duration += self.network.transfer(source, reader_host, block.size_bytes)
            records.extend(block.records)
        return records, duration

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _place_replicas(self, writer_host: str) -> List[str]:
        """First replica on the writer when possible, rest round-robin."""
        count = min(self.replication, len(self._datanodes))
        replicas: List[str] = []
        if writer_host in self._datanodes:
            replicas.append(writer_host)
        while len(replicas) < count:
            candidate = self._datanodes[
                next(self._placement_cursor) % len(self._datanodes)
            ]
            if candidate not in replicas:
                replicas.append(candidate)
        return replicas
