"""The MapReduce engine: job tracker, task scheduling, shuffle, reduce.

The engine actually executes the user's map and reduce functions (results
are real); the *time* each phase takes is simulated from the cost model
below.  The two constants that decide the paper's benchmark outcomes are
``job_startup_s`` (Hadoop's task-launch overhead, §6.1.6) and
``shuffle_notification_delay_s`` (the pull-based map-completion polling
delay, §6.1.7).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MapReduceError
from repro.mapreduce.hdfs import Hdfs
from repro.mapreduce.job import (
    InputSplit,
    JobResult,
    MapReduceJob,
    PhaseTimings,
    SplitData,
)
from repro.sim.clock import parallel_duration
from repro.sim.network import SimNetwork
from repro.sqlengine.types import value_byte_size


@dataclass(frozen=True)
class MapReduceConfig:
    """Engine cost parameters.

    Defaults reflect the paper's observations: ~12 s job startup (within the
    10-15 s range of §6.1.6), a per-task scheduling cost on the job tracker,
    a ~1 s pull-based shuffle notification delay (§6.1.7), and a JVM-level
    per-record processing cost.
    """

    job_startup_s: float = 12.0
    per_task_schedule_s: float = 0.05
    shuffle_notification_delay_s: float = 1.0
    map_cpu_per_record_s: float = 4e-6
    reduce_cpu_per_record_s: float = 4e-6
    # One map slot and one reduce slot per worker, as configured in §6.1.3.
    map_slots_per_host: int = 1

    def __post_init__(self) -> None:
        if self.job_startup_s < 0 or self.per_task_schedule_s < 0:
            raise MapReduceError("startup costs must be non-negative")
        if self.map_slots_per_host < 1:
            raise MapReduceError("need at least one map slot per host")


def records_byte_size(records: Sequence[object]) -> int:
    """Approximate wire size of a record batch (tuples or scalars)."""
    total = 0
    for record in records:
        if isinstance(record, tuple):
            total += sum(value_byte_size(value) for value in record)
        else:
            total += value_byte_size(record)
    return total


class MapReduceEngine:
    """Runs jobs over a set of worker hosts on the simulated network."""

    def __init__(
        self,
        hosts: Sequence[str],
        network: SimNetwork,
        hdfs: Optional[Hdfs] = None,
        config: Optional[MapReduceConfig] = None,
    ) -> None:
        if not hosts:
            raise MapReduceError("a MapReduce cluster needs at least one host")
        self.hosts = list(hosts)
        self.network = network
        self.hdfs = hdfs
        self.config = config or MapReduceConfig()

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    def run_job(self, job: MapReduceJob) -> JobResult:
        """Execute one job; returns real output with simulated timings."""
        timings = PhaseTimings()
        timings.startup_s = (
            self.config.job_startup_s
            + self.config.per_task_schedule_s
            * (len(job.splits) + (job.num_reducers if job.reduce_fn else 0))
        )

        map_outputs, timings.map_s = self._run_map_phase(job)

        if job.reduce_fn is None:
            records = [value for _, outputs in map_outputs for _, value in outputs]
            bytes_shuffled = 0
            reduce_tasks = 0
        else:
            partitions, bytes_shuffled, timings.shuffle_s = self._shuffle(
                job, map_outputs
            )
            records, timings.reduce_s = self._run_reduce_phase(job, partitions)
            reduce_tasks = job.num_reducers

        if job.output_path is not None:
            if self.hdfs is None:
                raise MapReduceError(
                    f"job {job.name!r} writes to HDFS but none is mounted"
                )
            writer = self._reducer_host(0)
            timings.hdfs_write_s = self.hdfs.write(
                job.output_path, records, records_byte_size(records), writer
            )

        return JobResult(
            job_name=job.name,
            records=records,
            timings=timings,
            bytes_shuffled=bytes_shuffled,
            map_tasks=len(job.splits),
            reduce_tasks=reduce_tasks,
        )

    def run_chain(self, jobs: Sequence[MapReduceJob]) -> List[JobResult]:
        """Run jobs sequentially ("processed sequentially", Section 7)."""
        return [self.run_job(job) for job in jobs]

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _run_map_phase(self, job: MapReduceJob):
        """Run every map task; returns ([(host, [(k, v)])], phase duration).

        Tasks on different hosts run in parallel; multiple splits landing on
        the same host queue behind its map slots.
        """
        per_host_seconds: Dict[str, float] = {}
        outputs: List[Tuple[str, List[Tuple[object, object]]]] = []
        for split in job.splits:
            data = split.fetch()
            pairs: List[Tuple[object, object]] = []
            for record in data.records:
                pairs.extend(job.map_fn(record))
            task_seconds = (
                data.local_seconds
                + len(data.records) * self.config.map_cpu_per_record_s
            )
            per_host_seconds[split.host] = (
                per_host_seconds.get(split.host, 0.0) + task_seconds
            )
            outputs.append((split.host, pairs))
        slots = self.config.map_slots_per_host
        duration = parallel_duration(
            *(seconds / slots for seconds in per_host_seconds.values())
        )
        return outputs, duration

    def _shuffle(self, job: MapReduceJob, map_outputs):
        """Partition intermediate pairs to reducers over the network."""
        partitions: List[Dict[object, List[object]]] = [
            {} for _ in range(job.num_reducers)
        ]
        # Group the wire transfers as (mapper host, reducer index) batches.
        batch_bytes: Dict[Tuple[str, int], int] = {}
        total_bytes = 0
        for host, pairs in map_outputs:
            for key, value in pairs:
                reducer = self._partition_of(key, job.num_reducers)
                partitions[reducer].setdefault(key, []).append(value)
                pair_bytes = value_byte_size(key) + (
                    records_byte_size([value])
                )
                batch_bytes[(host, reducer)] = (
                    batch_bytes.get((host, reducer), 0) + pair_bytes
                )
                total_bytes += pair_bytes

        per_reducer_seconds = [0.0] * job.num_reducers
        for (host, reducer), nbytes in sorted(batch_bytes.items()):
            per_reducer_seconds[reducer] += self.network.transfer(
                host, self._reducer_host(reducer), nbytes
            )
        duration = (
            self.config.shuffle_notification_delay_s
            + parallel_duration(*per_reducer_seconds)
        )
        return partitions, total_bytes, duration

    def _run_reduce_phase(self, job: MapReduceJob, partitions):
        records: List[object] = []
        per_reducer_seconds: List[float] = []
        for partition in partitions:
            input_count = sum(len(values) for values in partition.values())
            reducer_records: List[object] = []
            # Hadoop merge-sorts keys before reducing; keep that ordering
            # (it makes merge-join reducers and test output deterministic).
            for key in sorted(partition, key=_sortable):
                reducer_records.extend(job.reduce_fn(key, partition[key]))
            per_reducer_seconds.append(
                (input_count + len(reducer_records))
                * self.config.reduce_cpu_per_record_s
            )
            records.extend(reducer_records)
        return records, parallel_duration(*per_reducer_seconds)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _reducer_host(self, reducer_index: int) -> str:
        return self.hosts[reducer_index % len(self.hosts)]

    @staticmethod
    def _partition_of(key: object, num_reducers: int) -> int:
        # A deterministic, process-stable partitioner (Python's built-in
        # ``hash`` is salted for strings, so CRC32 over repr is used instead).
        return zlib.crc32(repr(key).encode("utf-8")) % num_reducers


def _sortable(key: object):
    """Total order over heterogeneous keys for deterministic reducers."""
    return (type(key).__name__, repr(key))
