"""Pull-based plan executor.

Each plan node executes to a ``(RowLayout, rows)`` pair; rows are tuples.
Execution gathers :class:`ExecStats` (base-table rows scanned, rows produced,
index probes) which the distributed engines turn into simulated processing
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SqlExecutionError
from repro.sqlengine.compile import (
    compile_evaluator,
    compile_predicate,
    interpreted_evaluator,
)
from repro.sqlengine.expr import (
    ColumnRef,
    Expr,
    FuncCall,
    RowLayout,
)
from repro.sqlengine.parser import OrderItem, SelectItem
from repro.sqlengine.planner import (
    DistinctNode,
    FilterNode,
    GroupByNode,
    IndexAccess,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.sqlengine.table import Table


@dataclass
class ExecStats:
    """Work counters accumulated during plan execution."""

    rows_scanned: int = 0
    rows_output: int = 0
    index_probes: int = 0
    join_build_rows: int = 0
    join_probe_rows: int = 0

    def merge(self, other: "ExecStats") -> None:
        self.rows_scanned += other.rows_scanned
        self.rows_output += other.rows_output
        self.index_probes += other.index_probes
        self.join_build_rows += other.join_build_rows
        self.join_probe_rows += other.join_probe_rows


class Executor:
    """Executes plan trees against a table catalogue.

    With ``use_compiled`` (the default) every expression is lowered once
    per plan node via :mod:`repro.sqlengine.compile`; with it off, the
    row-at-a-time interpreted ``Expr.evaluate`` reference path runs
    instead.  Both paths produce identical rows and identical
    :class:`ExecStats` — the microbench and the equivalence tests assert
    it — so simulated costs never depend on the switch.
    """

    def __init__(self, catalog: Dict[str, Table], use_compiled: bool = True) -> None:
        self._catalog = catalog
        self._use_compiled = use_compiled

    # Expression lowering helpers: one closure per plan node, never per row.
    def _evaluator(self, expr: Expr, layout: RowLayout):
        if self._use_compiled:
            return compile_evaluator(expr, layout)
        return interpreted_evaluator(expr, layout)

    def _predicate(self, expr: Expr, layout: RowLayout):
        if self._use_compiled:
            return compile_predicate(expr, layout)
        return lambda row: expr.evaluate(row, layout) is True

    def execute(self, plan: object, stats: Optional[ExecStats] = None):
        """Run ``plan``; returns ``(layout, rows, stats)``."""
        stats = stats if stats is not None else ExecStats()
        layout, rows = self._execute(plan, stats)
        stats.rows_output = len(rows)
        return layout, rows, stats

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _execute(self, plan: object, stats: ExecStats):
        if isinstance(plan, ScanNode):
            return self._execute_scan(plan, stats)
        if isinstance(plan, FilterNode):
            return self._execute_filter(plan, stats)
        if isinstance(plan, JoinNode):
            return self._execute_join(plan, stats)
        if isinstance(plan, GroupByNode):
            return self._execute_group_by(plan, stats)
        if isinstance(plan, ProjectNode):
            return self._execute_project(plan, stats)
        if isinstance(plan, DistinctNode):
            return self._execute_distinct(plan, stats)
        if isinstance(plan, SortNode):
            return self._execute_sort(plan, stats)
        if isinstance(plan, LimitNode):
            return self._execute_limit(plan, stats)
        raise SqlExecutionError(f"unknown plan node: {type(plan).__name__}")

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def _execute_scan(self, node: ScanNode, stats: ExecStats):
        table = self._catalog[node.table]
        layout = RowLayout(
            [f"{node.binding}.{column}" for column in table.schema.column_names]
        )
        rows: List[Tuple[object, ...]]
        if node.index_access is not None:
            rows = self._index_rows(table, node.index_access, stats)
        else:
            rows = list(table.rows())
            stats.rows_scanned += len(table)
        if node.predicate is not None:
            predicate = self._predicate(node.predicate, layout)
            rows = [row for row in rows if predicate(row)]
        return layout, rows

    def _index_rows(
        self, table: Table, access: IndexAccess, stats: ExecStats
    ) -> List[Tuple[object, ...]]:
        row_ids = index_row_ids(table, access, stats)
        return [table.row_by_id(row_id) for row_id in row_ids]

    # ------------------------------------------------------------------
    # Filter / Join
    # ------------------------------------------------------------------
    def _execute_filter(self, node: FilterNode, stats: ExecStats):
        layout, rows = self._execute(node.child, stats)
        predicate = self._predicate(node.predicate, layout)
        return layout, [row for row in rows if predicate(row)]

    def _execute_join(self, node: JoinNode, stats: ExecStats):
        left_layout, left_rows = self._execute(node.left, stats)
        right_layout, right_rows = self._execute(node.right, stats)
        layout = left_layout.concat(right_layout)

        if node.equi_keys:
            rows = self._hash_join(
                node, left_layout, left_rows, right_layout, right_rows,
                layout, stats,
            )
        else:
            rows = self._nested_loop_join(
                node, left_rows, right_layout, right_rows, layout, stats
            )
        return layout, rows

    def _hash_join(
        self, node, left_layout, left_rows, right_layout, right_rows,
        layout, stats,
    ):
        left_positions = [
            left_layout.resolve(left_key) for left_key, _ in node.equi_keys
        ]
        right_positions = [
            right_layout.resolve(right_key) for _, right_key in node.equi_keys
        ]
        # Build on the right side (explicit JOIN order puts the new table on
        # the right; for TPC-H style plans that is usually the smaller side).
        buckets: Dict[Tuple[object, ...], List[Tuple[object, ...]]] = {}
        for row in right_rows:
            key = tuple(row[position] for position in right_positions)
            if any(part is None for part in key):
                continue
            buckets.setdefault(key, []).append(row)
        stats.join_build_rows += len(right_rows)

        condition = (
            None
            if node.condition is None
            else self._predicate(node.condition, layout)
        )
        results: List[Tuple[object, ...]] = []
        null_pad = (None,) * len(right_layout)
        for left_row in left_rows:
            stats.join_probe_rows += 1
            key = tuple(left_row[position] for position in left_positions)
            matched = False
            if not any(part is None for part in key):
                for right_row in buckets.get(key, ()):
                    combined = left_row + right_row
                    if condition is None or condition(combined):
                        results.append(combined)
                        matched = True
            if not matched and node.kind == "left":
                results.append(left_row + null_pad)
        return results

    def _nested_loop_join(
        self, node, left_rows, right_layout, right_rows, layout, stats
    ):
        condition = (
            None
            if node.condition is None
            else self._predicate(node.condition, layout)
        )
        results: List[Tuple[object, ...]] = []
        null_pad = (None,) * len(right_layout)
        for left_row in left_rows:
            matched = False
            for right_row in right_rows:
                stats.join_probe_rows += 1
                combined = left_row + right_row
                if condition is None or condition(combined):
                    results.append(combined)
                    matched = True
            if not matched and node.kind == "left":
                results.append(left_row + null_pad)
        return results

    # ------------------------------------------------------------------
    # Group by / aggregation
    # ------------------------------------------------------------------
    def _execute_group_by(self, node: GroupByNode, stats: ExecStats):
        child_layout, child_rows = self._execute(node.child, stats)
        return group_rows_reference(node, child_layout, child_rows, self._evaluator)

    # ------------------------------------------------------------------
    # Project / distinct / sort / limit
    # ------------------------------------------------------------------
    def _execute_project(self, node: ProjectNode, stats: ExecStats):
        child_layout, child_rows = self._execute(node.child, stats)

        output_names: List[str] = []
        evaluators: List[Callable[[Tuple[object, ...]], object]] = []
        for item in node.items:
            if item.is_star:
                for position, column in enumerate(child_layout.columns):
                    if item.star_qualifier is not None and not column.startswith(
                        item.star_qualifier + "."
                    ):
                        continue
                    output_names.append(column)
                    evaluators.append(_position_getter(position))
                continue
            output_names.append(item.output_name().lower())
            evaluators.append(self._evaluator(item.expr, child_layout))

        layout = RowLayout(output_names)
        rows = [
            tuple(evaluate(row) for evaluate in evaluators) for row in child_rows
        ]
        return layout, rows

    def _execute_distinct(self, node: DistinctNode, stats: ExecStats):
        layout, rows = self._execute(node.child, stats)
        # The whole row tuple is the distinct key; dict.fromkeys dedups in
        # one pass while keeping first-occurrence order.
        return layout, list(dict.fromkeys(rows))

    def _execute_sort(self, node: SortNode, stats: ExecStats):
        layout, rows = self._execute(node.child, stats)
        # One precompiled key tuple per row (each OrderItem expression is
        # evaluated exactly once), then stable sorts applied last-to-first
        # exactly as before — composition of stable sorts preserves the
        # reference ordering for mixed ASC/DESC.
        items = node.order_items
        evaluators = [self._evaluator(item.expr, layout) for item in items]
        decorated = [
            (tuple(_sort_key(evaluate(row)) for evaluate in evaluators), row)
            for row in rows
        ]
        for index in range(len(items) - 1, -1, -1):
            decorated.sort(
                key=lambda pair, index=index: pair[0][index],
                reverse=not items[index].ascending,
            )
        return layout, [row for _, row in decorated]

    def _execute_limit(self, node: LimitNode, stats: ExecStats):
        layout, rows = self._execute(node.child, stats)
        return layout, rows[: node.limit]


def _position_getter(position: int) -> Callable[[Tuple[object, ...]], object]:
    return lambda row: row[position]


def index_row_ids(table: Table, access: IndexAccess, stats: ExecStats) -> List[int]:
    """Resolve an :class:`IndexAccess` to row ids, charging ``stats``.

    Shared by the row executor and the vectorized executor so both charge
    identical probe/scan counts for identical plans.
    """
    index = table.index_on(access.column)
    if index is None:
        raise SqlExecutionError(
            f"planner chose a missing index on {access.column!r}"
        )
    if access.is_equality:
        row_ids = index.lookup(access.eq_value)
    else:
        row_ids = list(
            index.range_scan(
                access.low,
                access.high,
                access.low_inclusive,
                access.high_inclusive,
            )
        )
    stats.index_probes += 1
    stats.rows_scanned += len(row_ids)
    return row_ids


def group_output_layout(node: GroupByNode, child_layout: RowLayout) -> RowLayout:
    """The output layout of a GROUP BY: group columns then aggregate columns."""
    group_names = []
    for expr in node.group_exprs:
        if isinstance(expr, ColumnRef):
            group_names.append(
                child_layout.columns[child_layout.resolve(expr.name)]
            )
        else:
            group_names.append(expr.to_sql().lower())
    agg_names = [aggregate.to_sql().lower() for aggregate in node.aggregates]
    return RowLayout(group_names + agg_names)


def group_rows_reference(
    node: GroupByNode,
    child_layout: RowLayout,
    child_rows: Sequence[Tuple[object, ...]],
    evaluator_factory: Callable[[Expr, RowLayout], Callable],
):
    """The reference row-at-a-time GROUP BY loop.

    Shared by :class:`Executor` (its only group-by implementation) and the
    vectorized executor, whose columnar fast path falls back here whenever
    any evaluation errors so the surfaced exception matches the reference
    row-visit order exactly.
    """
    layout = group_output_layout(node, child_layout)
    key_evaluators = [
        evaluator_factory(expr, child_layout) for expr in node.group_exprs
    ]
    # Precompile each aggregate's single argument, if it has one. COUNT(*)
    # and malformed calls get None; _AggState keeps its per-row arity error
    # for the latter, matching the reference path.
    arg_getters = [
        None
        if aggregate.star or len(aggregate.args) != 1
        else evaluator_factory(aggregate.args[0], child_layout)
        for aggregate in node.aggregates
    ]

    def make_states() -> List[_AggState]:
        return [
            _AggState(aggregate, arg_getter)
            for aggregate, arg_getter in zip(node.aggregates, arg_getters)
        ]

    groups: Dict[Tuple[object, ...], List[_AggState]] = {}
    group_order: List[Tuple[object, ...]] = []
    for row in child_rows:
        key = tuple(evaluate(row) for evaluate in key_evaluators)
        states = groups.get(key)
        if states is None:
            states = make_states()
            groups[key] = states
            group_order.append(key)
        for state in states:
            state.accumulate(row, child_layout)

    # A scalar aggregate over an empty input still yields one row.
    if not groups and not node.group_exprs:
        groups[()] = make_states()
        group_order.append(())

    rows = [
        key + tuple(state.result() for state in groups[key])
        for key in group_order
    ]
    return layout, rows


class _MinType:
    """Sorts before every other value; stands in for NULL (NULLS FIRST)."""

    def __lt__(self, other) -> bool:
        return not isinstance(other, _MinType)

    def __gt__(self, other) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, _MinType)

    def __hash__(self) -> int:
        return 0


_NULL_SORTS_FIRST = _MinType()


def _sort_key(value: object):
    return _NULL_SORTS_FIRST if value is None else value


def compute_aggregates(
    aggregates: Sequence[FuncCall],
    rows: Sequence[Tuple[object, ...]],
    layout: RowLayout,
) -> Tuple[object, ...]:
    """Evaluate aggregate calls over a group of rows.

    Exposed for the distributed engines (BestPeer++'s MapReduce engine and
    HadoopDB's SMS-generated reducers), which aggregate outside a local
    GroupBy plan node.  Argument expressions are compiled once per call —
    the compiled closures are value-identical to the interpreted path.
    """
    states = [
        _AggState(
            aggregate,
            None
            if aggregate.star or len(aggregate.args) != 1
            else compile_evaluator(aggregate.args[0], layout),
        )
        for aggregate in aggregates
    ]
    for row in rows:
        for state in states:
            state.accumulate(row, layout)
    return tuple(state.result() for state in states)


class _AggState:
    """Incremental state for one aggregate function.

    ``arg_getter`` is an optional precompiled evaluator for the aggregate's
    single argument; without it the argument is interpreted per row.
    """

    def __init__(self, call: FuncCall, arg_getter=None) -> None:
        self.call = call
        self.name = call.name.lower()
        self.count = 0
        self.total: object = None
        self.minimum: object = None
        self.maximum: object = None
        self.distinct_values: Optional[set] = set() if call.distinct else None
        self._arg_getter = arg_getter

    def accumulate(self, row: Tuple[object, ...], layout: RowLayout) -> None:
        if self.call.star:
            self.count += 1
            return
        if len(self.call.args) != 1:
            raise SqlExecutionError(
                f"{self.call.name.upper()} takes exactly one argument"
            )
        if self._arg_getter is not None:
            value = self._arg_getter(row)
        else:
            value = self.call.args[0].evaluate(row, layout)
        if value is None:
            return
        if self.distinct_values is not None:
            if value in self.distinct_values:
                return
            self.distinct_values.add(value)
        self.count += 1
        if self.name in ("sum", "avg"):
            if not isinstance(value, (int, float)):
                raise SqlExecutionError(
                    f"{self.name.upper()} over non-numeric value {value!r}"
                )
            self.total = value if self.total is None else self.total + value
        elif self.name == "min":
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif self.name == "max":
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def result(self) -> object:
        if self.name == "count":
            return self.count
        if self.name == "sum":
            return self.total
        if self.name == "avg":
            return None if self.count == 0 else self.total / self.count
        if self.name == "min":
            return self.minimum
        if self.name == "max":
            return self.maximum
        raise SqlExecutionError(f"unknown aggregate: {self.name!r}")
