"""Pull-based plan executor.

Each plan node executes to a ``(RowLayout, rows)`` pair; rows are tuples.
Execution gathers :class:`ExecStats` (base-table rows scanned, rows produced,
index probes) which the distributed engines turn into simulated processing
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SqlExecutionError
from repro.sqlengine.expr import (
    ColumnRef,
    Expr,
    FuncCall,
    RowLayout,
)
from repro.sqlengine.parser import OrderItem, SelectItem
from repro.sqlengine.planner import (
    DistinctNode,
    FilterNode,
    GroupByNode,
    IndexAccess,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.sqlengine.table import Table


@dataclass
class ExecStats:
    """Work counters accumulated during plan execution."""

    rows_scanned: int = 0
    rows_output: int = 0
    index_probes: int = 0
    join_build_rows: int = 0
    join_probe_rows: int = 0

    def merge(self, other: "ExecStats") -> None:
        self.rows_scanned += other.rows_scanned
        self.rows_output += other.rows_output
        self.index_probes += other.index_probes
        self.join_build_rows += other.join_build_rows
        self.join_probe_rows += other.join_probe_rows


class Executor:
    """Executes plan trees against a table catalogue."""

    def __init__(self, catalog: Dict[str, Table]) -> None:
        self._catalog = catalog

    def execute(self, plan: object, stats: Optional[ExecStats] = None):
        """Run ``plan``; returns ``(layout, rows, stats)``."""
        stats = stats if stats is not None else ExecStats()
        layout, rows = self._execute(plan, stats)
        stats.rows_output = len(rows)
        return layout, rows, stats

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _execute(self, plan: object, stats: ExecStats):
        if isinstance(plan, ScanNode):
            return self._execute_scan(plan, stats)
        if isinstance(plan, FilterNode):
            return self._execute_filter(plan, stats)
        if isinstance(plan, JoinNode):
            return self._execute_join(plan, stats)
        if isinstance(plan, GroupByNode):
            return self._execute_group_by(plan, stats)
        if isinstance(plan, ProjectNode):
            return self._execute_project(plan, stats)
        if isinstance(plan, DistinctNode):
            return self._execute_distinct(plan, stats)
        if isinstance(plan, SortNode):
            return self._execute_sort(plan, stats)
        if isinstance(plan, LimitNode):
            return self._execute_limit(plan, stats)
        raise SqlExecutionError(f"unknown plan node: {type(plan).__name__}")

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def _execute_scan(self, node: ScanNode, stats: ExecStats):
        table = self._catalog[node.table]
        layout = RowLayout(
            [f"{node.binding}.{column}" for column in table.schema.column_names]
        )
        rows: List[Tuple[object, ...]]
        if node.index_access is not None:
            rows = self._index_rows(table, node.index_access, stats)
        else:
            rows = list(table.rows())
            stats.rows_scanned += len(table)
        if node.predicate is not None:
            predicate = node.predicate
            rows = [
                row for row in rows if predicate.evaluate(row, layout) is True
            ]
        return layout, rows

    def _index_rows(
        self, table: Table, access: IndexAccess, stats: ExecStats
    ) -> List[Tuple[object, ...]]:
        index = table.index_on(access.column)
        if index is None:
            raise SqlExecutionError(
                f"planner chose a missing index on {access.column!r}"
            )
        if access.is_equality:
            row_ids = index.lookup(access.eq_value)
        else:
            row_ids = list(
                index.range_scan(
                    access.low,
                    access.high,
                    access.low_inclusive,
                    access.high_inclusive,
                )
            )
        stats.index_probes += 1
        stats.rows_scanned += len(row_ids)
        return [table.row_by_id(row_id) for row_id in row_ids]

    # ------------------------------------------------------------------
    # Filter / Join
    # ------------------------------------------------------------------
    def _execute_filter(self, node: FilterNode, stats: ExecStats):
        layout, rows = self._execute(node.child, stats)
        predicate = node.predicate
        return layout, [
            row for row in rows if predicate.evaluate(row, layout) is True
        ]

    def _execute_join(self, node: JoinNode, stats: ExecStats):
        left_layout, left_rows = self._execute(node.left, stats)
        right_layout, right_rows = self._execute(node.right, stats)
        layout = left_layout.concat(right_layout)

        if node.equi_keys:
            rows = self._hash_join(
                node, left_layout, left_rows, right_layout, right_rows,
                layout, stats,
            )
        else:
            rows = self._nested_loop_join(
                node, left_rows, right_layout, right_rows, layout, stats
            )
        return layout, rows

    def _hash_join(
        self, node, left_layout, left_rows, right_layout, right_rows,
        layout, stats,
    ):
        left_positions = [
            left_layout.resolve(left_key) for left_key, _ in node.equi_keys
        ]
        right_positions = [
            right_layout.resolve(right_key) for _, right_key in node.equi_keys
        ]
        # Build on the right side (explicit JOIN order puts the new table on
        # the right; for TPC-H style plans that is usually the smaller side).
        buckets: Dict[Tuple[object, ...], List[Tuple[object, ...]]] = {}
        for row in right_rows:
            key = tuple(row[position] for position in right_positions)
            if any(part is None for part in key):
                continue
            buckets.setdefault(key, []).append(row)
        stats.join_build_rows += len(right_rows)

        condition = node.condition
        results: List[Tuple[object, ...]] = []
        null_pad = (None,) * len(right_layout)
        for left_row in left_rows:
            stats.join_probe_rows += 1
            key = tuple(left_row[position] for position in left_positions)
            matched = False
            if not any(part is None for part in key):
                for right_row in buckets.get(key, ()):
                    combined = left_row + right_row
                    if condition is None or condition.evaluate(combined, layout) is True:
                        results.append(combined)
                        matched = True
            if not matched and node.kind == "left":
                results.append(left_row + null_pad)
        return results

    def _nested_loop_join(
        self, node, left_rows, right_layout, right_rows, layout, stats
    ):
        condition = node.condition
        results: List[Tuple[object, ...]] = []
        null_pad = (None,) * len(right_layout)
        for left_row in left_rows:
            matched = False
            for right_row in right_rows:
                stats.join_probe_rows += 1
                combined = left_row + right_row
                if condition is None or condition.evaluate(combined, layout) is True:
                    results.append(combined)
                    matched = True
            if not matched and node.kind == "left":
                results.append(left_row + null_pad)
        return results

    # ------------------------------------------------------------------
    # Group by / aggregation
    # ------------------------------------------------------------------
    def _execute_group_by(self, node: GroupByNode, stats: ExecStats):
        child_layout, child_rows = self._execute(node.child, stats)

        group_names = []
        for expr in node.group_exprs:
            if isinstance(expr, ColumnRef):
                group_names.append(
                    child_layout.columns[child_layout.resolve(expr.name)]
                )
            else:
                group_names.append(expr.to_sql().lower())
        agg_names = [aggregate.to_sql().lower() for aggregate in node.aggregates]
        layout = RowLayout(group_names + agg_names)

        groups: Dict[Tuple[object, ...], List[_AggState]] = {}
        group_order: List[Tuple[object, ...]] = []
        for row in child_rows:
            key = tuple(
                expr.evaluate(row, child_layout) for expr in node.group_exprs
            )
            states = groups.get(key)
            if states is None:
                states = [_AggState(aggregate) for aggregate in node.aggregates]
                groups[key] = states
                group_order.append(key)
            for state in states:
                state.accumulate(row, child_layout)

        # A scalar aggregate over an empty input still yields one row.
        if not groups and not node.group_exprs:
            states = [_AggState(aggregate) for aggregate in node.aggregates]
            groups[()] = states
            group_order.append(())

        rows = [
            key + tuple(state.result() for state in groups[key])
            for key in group_order
        ]
        return layout, rows

    # ------------------------------------------------------------------
    # Project / distinct / sort / limit
    # ------------------------------------------------------------------
    def _execute_project(self, node: ProjectNode, stats: ExecStats):
        child_layout, child_rows = self._execute(node.child, stats)

        output_names: List[str] = []
        evaluators: List[Callable[[Tuple[object, ...]], object]] = []
        for item in node.items:
            if item.is_star:
                for position, column in enumerate(child_layout.columns):
                    if item.star_qualifier is not None and not column.startswith(
                        item.star_qualifier + "."
                    ):
                        continue
                    output_names.append(column)
                    evaluators.append(_position_getter(position))
                continue
            expr = item.expr
            output_names.append(item.output_name().lower())
            evaluators.append(
                lambda row, expr=expr: expr.evaluate(row, child_layout)
            )

        layout = RowLayout(output_names)
        rows = [
            tuple(evaluate(row) for evaluate in evaluators) for row in child_rows
        ]
        return layout, rows

    def _execute_distinct(self, node: DistinctNode, stats: ExecStats):
        layout, rows = self._execute(node.child, stats)
        seen = set()
        unique: List[Tuple[object, ...]] = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return layout, unique

    def _execute_sort(self, node: SortNode, stats: ExecStats):
        layout, rows = self._execute(node.child, stats)
        # Stable multi-key sort: apply keys last-to-first.
        for item in reversed(node.order_items):
            expr = item.expr
            rows = sorted(
                rows,
                key=lambda row: _sort_key(expr.evaluate(row, layout)),
                reverse=not item.ascending,
            )
        return layout, rows

    def _execute_limit(self, node: LimitNode, stats: ExecStats):
        layout, rows = self._execute(node.child, stats)
        return layout, rows[: node.limit]


def _position_getter(position: int) -> Callable[[Tuple[object, ...]], object]:
    return lambda row: row[position]


class _MinType:
    """Sorts before every other value; stands in for NULL (NULLS FIRST)."""

    def __lt__(self, other) -> bool:
        return not isinstance(other, _MinType)

    def __gt__(self, other) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, _MinType)

    def __hash__(self) -> int:
        return 0


_NULL_SORTS_FIRST = _MinType()


def _sort_key(value: object):
    return _NULL_SORTS_FIRST if value is None else value


def compute_aggregates(
    aggregates: Sequence[FuncCall],
    rows: Sequence[Tuple[object, ...]],
    layout: RowLayout,
) -> Tuple[object, ...]:
    """Evaluate aggregate calls over a group of rows.

    Exposed for the distributed engines (BestPeer++'s MapReduce engine and
    HadoopDB's SMS-generated reducers), which aggregate outside a local
    GroupBy plan node.
    """
    states = [_AggState(aggregate) for aggregate in aggregates]
    for row in rows:
        for state in states:
            state.accumulate(row, layout)
    return tuple(state.result() for state in states)


class _AggState:
    """Incremental state for one aggregate function."""

    def __init__(self, call: FuncCall) -> None:
        self.call = call
        self.name = call.name.lower()
        self.count = 0
        self.total: object = None
        self.minimum: object = None
        self.maximum: object = None
        self.distinct_values: Optional[set] = set() if call.distinct else None

    def accumulate(self, row: Tuple[object, ...], layout: RowLayout) -> None:
        if self.call.star:
            self.count += 1
            return
        if len(self.call.args) != 1:
            raise SqlExecutionError(
                f"{self.call.name.upper()} takes exactly one argument"
            )
        value = self.call.args[0].evaluate(row, layout)
        if value is None:
            return
        if self.distinct_values is not None:
            if value in self.distinct_values:
                return
            self.distinct_values.add(value)
        self.count += 1
        if self.name in ("sum", "avg"):
            if not isinstance(value, (int, float)):
                raise SqlExecutionError(
                    f"{self.name.upper()} over non-numeric value {value!r}"
                )
            self.total = value if self.total is None else self.total + value
        elif self.name == "min":
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif self.name == "max":
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def result(self) -> object:
        if self.name == "count":
            return self.count
        if self.name == "sum":
            return self.total
        if self.name == "avg":
            return None if self.count == 0 else self.total / self.count
        if self.name == "min":
            return self.minimum
        if self.name == "max":
            return self.maximum
        raise SqlExecutionError(f"unknown aggregate: {self.name!r}")
