"""Table schemas and column definitions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SqlCatalogError
from repro.sqlengine.types import ColumnType


@dataclass(frozen=True)
class Column:
    """A column definition."""

    name: str
    column_type: ColumnType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SqlCatalogError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class TableSchema:
    """A table definition: ordered columns plus an optional primary key."""

    name: str
    columns: Tuple[Column, ...]
    primary_key: Optional[str] = None

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[str] = None,
    ) -> None:
        if not name or not name.isidentifier():
            raise SqlCatalogError(f"invalid table name: {name!r}")
        columns = tuple(columns)
        if not columns:
            raise SqlCatalogError(f"table {name!r} needs at least one column")
        seen = set()
        for column in columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SqlCatalogError(
                    f"duplicate column {column.name!r} in table {name!r}"
                )
            seen.add(lowered)
        if primary_key is not None and primary_key.lower() not in seen:
            raise SqlCatalogError(
                f"primary key {primary_key!r} is not a column of {name!r}"
            )
        object.__setattr__(self, "name", name.lower())
        object.__setattr__(self, "columns", columns)
        object.__setattr__(
            self,
            "primary_key",
            primary_key.lower() if primary_key is not None else None,
        )

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        raise SqlCatalogError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for position, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return position
        raise SqlCatalogError(f"no column {name!r} in table {self.name!r}")

    def coerce_row(self, values: Sequence[object]) -> Tuple[object, ...]:
        """Validate one row of values against the schema."""
        if len(values) != len(self.columns):
            raise SqlCatalogError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        coerced = []
        for column, value in zip(self.columns, values):
            if value is None and not column.nullable:
                raise SqlCatalogError(
                    f"column {column.name!r} of {self.name!r} is NOT NULL"
                )
            coerced.append(column.column_type.coerce(value))
        return tuple(coerced)
