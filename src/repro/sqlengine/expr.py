"""Expression AST and evaluation.

Expressions evaluate against a row tuple plus a :class:`RowLayout` that maps
column names (qualified like ``lineitem.l_shipdate`` or bare) to positions.
SQL three-valued logic is honoured: comparisons involving NULL yield NULL,
``AND``/``OR`` propagate unknowns, and ``WHERE`` treats NULL as false.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SqlExecutionError


class RowLayout:
    """Resolves column names to positions in a row tuple.

    Column names are stored qualified (``alias.column``).  A bare name
    resolves if exactly one column carries it; an ambiguous bare name is an
    error, matching SQL semantics.
    """

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns: Tuple[str, ...] = tuple(column.lower() for column in columns)
        self._by_qualified: Dict[str, int] = {}
        self._by_bare: Dict[str, List[int]] = {}
        for position, column in enumerate(self.columns):
            self._by_qualified[column] = position
            bare = column.rsplit(".", 1)[-1]
            self._by_bare.setdefault(bare, []).append(position)

    def __len__(self) -> int:
        return len(self.columns)

    def resolve(self, name: str) -> int:
        lowered = name.lower()
        if lowered in self._by_qualified:
            return self._by_qualified[lowered]
        # Fall back to bare-name matching.  For a qualified name this fires
        # only when the qualifier is gone from the layout (e.g. ordering the
        # output of a projection by ``d.dname``); a unique bare match is
        # unambiguous, anything else is an error.
        candidates = self._by_bare.get(lowered.rsplit(".", 1)[-1], [])
        if len(candidates) == 1:
            return candidates[0]
        if len(candidates) > 1:
            raise SqlExecutionError(f"ambiguous column name: {name!r}")
        raise SqlExecutionError(f"unknown column: {name!r}")

    def has(self, name: str) -> bool:
        try:
            self.resolve(name)
            return True
        except SqlExecutionError:
            return False

    def concat(self, other: "RowLayout") -> "RowLayout":
        return RowLayout(self.columns + other.columns)


class Expr:
    """Base class for expression nodes."""

    def evaluate(self, row: Tuple[object, ...], layout: RowLayout) -> object:
        raise NotImplementedError

    def referenced_columns(self) -> List[str]:
        """All column names this expression reads (possibly qualified)."""
        return []

    def to_sql(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_sql()})"


@dataclass(frozen=True, repr=False)
class Literal(Expr):
    value: object

    def evaluate(self, row, layout):
        return self.value

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True, repr=False)
class ColumnRef(Expr):
    name: str

    def evaluate(self, row, layout):
        return row[layout.resolve(self.name)]

    def referenced_columns(self) -> List[str]:
        return [self.name]

    def to_sql(self) -> str:
        return self.name


_ARITHMETIC = {"+", "-", "*", "/", "%"}
_COMPARISON = {"=", "!=", "<", "<=", ">", ">="}
_LOGICAL = {"and", "or"}


@dataclass(frozen=True, repr=False)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr

    def evaluate(self, row, layout):
        op = self.op
        if op in _LOGICAL:
            return self._evaluate_logical(row, layout)
        lhs = self.left.evaluate(row, layout)
        rhs = self.right.evaluate(row, layout)
        if lhs is None or rhs is None:
            return None
        if op in _COMPARISON:
            return self._compare(op, lhs, rhs)
        if op in _ARITHMETIC:
            return self._arithmetic(op, lhs, rhs)
        raise SqlExecutionError(f"unknown operator: {op!r}")

    def _evaluate_logical(self, row, layout):
        lhs = _as_bool(self.left.evaluate(row, layout))
        # Short-circuit respecting three-valued logic.
        if self.op == "and":
            if lhs is False:
                return False
            rhs = _as_bool(self.right.evaluate(row, layout))
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return True
        if lhs is True:
            return True
        rhs = _as_bool(self.right.evaluate(row, layout))
        if rhs is True:
            return True
        if lhs is None or rhs is None:
            return None
        return False

    @staticmethod
    def _compare(op: str, lhs: object, rhs: object) -> bool:
        try:
            if op == "=":
                return lhs == rhs
            if op == "!=":
                return lhs != rhs
            if op == "<":
                return lhs < rhs
            if op == "<=":
                return lhs <= rhs
            if op == ">":
                return lhs > rhs
            return lhs >= rhs
        except TypeError:
            raise SqlExecutionError(
                f"cannot compare {lhs!r} {op} {rhs!r}"
            ) from None

    @staticmethod
    def _arithmetic(op: str, lhs: object, rhs: object) -> object:
        if not isinstance(lhs, (int, float)) or not isinstance(rhs, (int, float)):
            raise SqlExecutionError(f"non-numeric arithmetic: {lhs!r} {op} {rhs!r}")
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0:
                raise SqlExecutionError("division by zero")
            return lhs / rhs
        if rhs == 0:
            raise SqlExecutionError("modulo by zero")
        return lhs % rhs

    def referenced_columns(self) -> List[str]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op.upper()} {self.right.to_sql()})"


@dataclass(frozen=True, repr=False)
class UnaryOp(Expr):
    op: str  # "not" or "-"
    operand: Expr

    def evaluate(self, row, layout):
        value = self.operand.evaluate(row, layout)
        if self.op == "not":
            as_bool = _as_bool(value)
            return None if as_bool is None else not as_bool
        if value is None:
            return None
        if not isinstance(value, (int, float)):
            raise SqlExecutionError(f"cannot negate {value!r}")
        return -value

    def referenced_columns(self) -> List[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.op.upper()} {self.operand.to_sql()})"


@dataclass(frozen=True, repr=False)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def evaluate(self, row, layout):
        value = self.operand.evaluate(row, layout)
        low = self.low.evaluate(row, layout)
        high = self.high.evaluate(row, layout)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return not result if self.negated else result

    def referenced_columns(self) -> List[str]:
        return (
            self.operand.referenced_columns()
            + self.low.referenced_columns()
            + self.high.referenced_columns()
        )

    def to_sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.to_sql()} {keyword} "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )


@dataclass(frozen=True, repr=False)
class InList(Expr):
    operand: Expr
    items: Tuple[Expr, ...]
    negated: bool = False

    def evaluate(self, row, layout):
        value = self.operand.evaluate(row, layout)
        if value is None:
            return None
        saw_null = False
        for item in self.items:
            candidate = item.evaluate(row, layout)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return not self.negated
        if saw_null:
            return None
        return self.negated

    def referenced_columns(self) -> List[str]:
        columns = self.operand.referenced_columns()
        for item in self.items:
            columns.extend(item.referenced_columns())
        return columns

    def to_sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        items = ", ".join(item.to_sql() for item in self.items)
        return f"({self.operand.to_sql()} {keyword} ({items}))"


@dataclass(frozen=True, repr=False)
class Like(Expr):
    operand: Expr
    pattern: str
    negated: bool = False

    def evaluate(self, row, layout):
        value = self.operand.evaluate(row, layout)
        if value is None:
            return None
        if not isinstance(value, str):
            value = str(value)
        matched = _like_regex(self.pattern).match(value) is not None
        return not matched if self.negated else matched

    def referenced_columns(self) -> List[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        escaped = self.pattern.replace("'", "''")
        return f"({self.operand.to_sql()} {keyword} '{escaped}')"


@dataclass(frozen=True, repr=False)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def evaluate(self, row, layout):
        value = self.operand.evaluate(row, layout)
        return (value is not None) if self.negated else (value is None)

    def referenced_columns(self) -> List[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {keyword})"


@dataclass(frozen=True, repr=False)
class CaseWhen(Expr):
    """A searched CASE expression: WHEN cond THEN result ... ELSE default."""

    whens: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr] = None

    def evaluate(self, row, layout):
        for condition, result in self.whens:
            if _as_bool(condition.evaluate(row, layout)) is True:
                return result.evaluate(row, layout)
        if self.default is not None:
            return self.default.evaluate(row, layout)
        return None

    def referenced_columns(self) -> List[str]:
        columns: List[str] = []
        for condition, result in self.whens:
            columns.extend(condition.referenced_columns())
            columns.extend(result.referenced_columns())
        if self.default is not None:
            columns.extend(self.default.referenced_columns())
        return columns

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, result in self.whens:
            parts.append(f"WHEN {condition.to_sql()} THEN {result.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True, repr=False)
class InSubquery(Expr):
    """``expr IN (SELECT ...)`` with an uncorrelated subquery.

    The planner resolves the subquery into a plain :class:`InList` before
    execution (see ``repro.sqlengine.subquery``); evaluating an unresolved
    node is a planning bug.
    """

    operand: Expr
    subquery: object  # a parser.SelectStmt; typed loosely to avoid a cycle
    negated: bool = False

    def evaluate(self, row, layout):
        raise SqlExecutionError(
            "IN (SELECT ...) must be resolved by the planner before execution"
        )

    def referenced_columns(self) -> List[str]:
        # The subquery is self-contained (uncorrelated); only the operand's
        # columns belong to the outer query.
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {keyword} (<subquery>))"


AGGREGATE_FUNCTIONS = {"count", "sum", "avg", "min", "max"}
_SCALAR_FUNCTIONS = {
    "upper": lambda v: None if v is None else str(v).upper(),
    "lower": lambda v: None if v is None else str(v).lower(),
    "abs": lambda v: None if v is None else abs(v),
    "length": lambda v: None if v is None else len(str(v)),
}


@dataclass(frozen=True, repr=False)
class FuncCall(Expr):
    name: str
    args: Tuple[Expr, ...]
    star: bool = False  # COUNT(*)
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name.lower() in AGGREGATE_FUNCTIONS

    def evaluate(self, row, layout):
        name = self.name.lower()
        if self.is_aggregate:
            # Aggregates are computed by the GroupBy operator; by the time a
            # projection evaluates, the value is already materialized in the
            # row under the function's SQL text.
            return row[layout.resolve(self.to_sql())]
        function = _SCALAR_FUNCTIONS.get(name)
        if function is None:
            raise SqlExecutionError(f"unknown function: {self.name!r}")
        if len(self.args) != 1:
            raise SqlExecutionError(f"{self.name} takes exactly one argument")
        return function(self.args[0].evaluate(row, layout))

    def referenced_columns(self) -> List[str]:
        columns = []
        for arg in self.args:
            columns.extend(arg.referenced_columns())
        return columns

    def to_sql(self) -> str:
        if self.star:
            return f"{self.name.upper()}(*)"
        inner = ", ".join(arg.to_sql() for arg in self.args)
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.name.upper()}({distinct}{inner})"


def _as_bool(value: object) -> Optional[bool]:
    """Convert an evaluation result to three-valued boolean."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    raise SqlExecutionError(f"expected a boolean, got {value!r}")


_LIKE_CACHE: Dict[str, "re.Pattern[str]"] = {}


def _like_regex(pattern: str) -> "re.Pattern[str]":
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = "".join(
            ".*" if char == "%" else "." if char == "_" else re.escape(char)
            for char in pattern
        )
        compiled = re.compile(f"^{regex}$", re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


def find_aggregates(expr: Expr) -> List[FuncCall]:
    """All aggregate function calls appearing in ``expr``."""
    found: List[FuncCall] = []
    _walk_aggregates(expr, found)
    return found


def _walk_aggregates(expr: Expr, found: List[FuncCall]) -> None:
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            found.append(expr)
            return
        for arg in expr.args:
            _walk_aggregates(arg, found)
    elif isinstance(expr, BinaryOp):
        _walk_aggregates(expr.left, found)
        _walk_aggregates(expr.right, found)
    elif isinstance(expr, UnaryOp):
        _walk_aggregates(expr.operand, found)
    elif isinstance(expr, Between):
        _walk_aggregates(expr.operand, found)
        _walk_aggregates(expr.low, found)
        _walk_aggregates(expr.high, found)
    elif isinstance(expr, InList):
        _walk_aggregates(expr.operand, found)
        for item in expr.items:
            _walk_aggregates(item, found)
    elif isinstance(expr, (Like, IsNull, InSubquery)):
        _walk_aggregates(expr.operand, found)
    elif isinstance(expr, CaseWhen):
        for condition, result in expr.whens:
            _walk_aggregates(condition, found)
            _walk_aggregates(result, found)
        if expr.default is not None:
            _walk_aggregates(expr.default, found)
