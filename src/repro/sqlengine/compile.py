"""Expression compilation: lower :class:`Expr` trees into flat closures.

The interpreted path (:meth:`Expr.evaluate`) re-resolves every column name
against the :class:`RowLayout` and re-dispatches on node types *per row*.
For the hot query path — the same subquery interpreted at every data-owner
peer over thousands of rows — that tree walk dominates wall-clock time.

This module compiles an expression **once** against a fixed layout into a
nest of plain Python closures: column references become tuple indexing with
positions resolved at compile time, operators become specialized closures,
LIKE patterns become pre-built regexes.  The compiled closure is a drop-in
replacement for ``expr.evaluate(row, layout)``:

* identical values, including SQL three-valued NULL semantics,
* identical errors (``SqlExecutionError`` with matching behaviour for type
  mismatches, division by zero, unknown functions),
* identical :class:`~repro.sqlengine.executor.ExecStats` when used by the
  executor — compilation changes *how* expressions are evaluated, never how
  many rows flow through the plan — so simulated costs are provably
  unchanged.

Anything the compiler cannot lower (or whose lowering raises, e.g. a column
missing from the layout so the interpreted path would raise per row) falls
back to a closure over ``expr.evaluate`` itself, keeping the interpreted
path as the reference semantics.
"""

from __future__ import annotations

import operator
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import SqlExecutionError
from repro.sqlengine.expr import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    RowLayout,
    UnaryOp,
    _SCALAR_FUNCTIONS,
    _as_bool,
    _like_regex,
)

#: A compiled evaluator: row tuple -> value (same contract as Expr.evaluate).
Evaluator = Callable[[Tuple[object, ...]], object]

_COMPARISON_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def compile_evaluator(expr: Expr, layout: RowLayout) -> Evaluator:
    """Compile ``expr`` into a closure equivalent to ``expr.evaluate``.

    Column positions are resolved once, here, instead of per row.  On any
    lowering failure the interpreted evaluator is returned instead, so the
    result is always callable and always agrees with the reference path.
    """
    try:
        return _lower(expr, layout)
    except SqlExecutionError:
        # e.g. a column the layout cannot resolve: the interpreted path
        # raises per row, so the fallback preserves exact behaviour.
        return lambda row: expr.evaluate(row, layout)


def compile_predicate(expr: Expr, layout: RowLayout) -> Callable[[Tuple[object, ...]], bool]:
    """Compile a WHERE/ON predicate into a boolean row test.

    SQL semantics: NULL (and anything not ``True``) rejects the row, exactly
    like the executor's ``evaluate(...) is True`` checks.
    """
    evaluator = compile_evaluator(expr, layout)
    return lambda row: evaluator(row) is True


def compile_key(
    exprs: Sequence[Expr], layout: RowLayout
) -> Callable[[Tuple[object, ...]], Tuple[object, ...]]:
    """Compile a list of expressions into one tuple-key builder.

    Used for group-by keys and sort/distinct keys: the per-item expressions
    are lowered once, and each row pays only the closure calls.
    """
    evaluators = [compile_evaluator(expr, layout) for expr in exprs]
    if len(evaluators) == 1:
        first = evaluators[0]
        return lambda row: (first(row),)
    return lambda row: tuple(evaluator(row) for evaluator in evaluators)


def interpreted_evaluator(expr: Expr, layout: RowLayout) -> Evaluator:
    """The reference path as an evaluator: a closure over ``Expr.evaluate``."""
    return lambda row: expr.evaluate(row, layout)


# ----------------------------------------------------------------------
# Lowering (one function per node type)
# ----------------------------------------------------------------------
def _lower(expr: Expr, layout: RowLayout) -> Evaluator:
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ColumnRef):
        position = layout.resolve(expr.name)
        return lambda row: row[position]
    if isinstance(expr, BinaryOp):
        return _lower_binary(expr, layout)
    if isinstance(expr, UnaryOp):
        return _lower_unary(expr, layout)
    if isinstance(expr, Between):
        return _lower_between(expr, layout)
    if isinstance(expr, InList):
        return _lower_in_list(expr, layout)
    if isinstance(expr, Like):
        return _lower_like(expr, layout)
    if isinstance(expr, IsNull):
        return _lower_is_null(expr, layout)
    if isinstance(expr, CaseWhen):
        return _lower_case(expr, layout)
    if isinstance(expr, InSubquery):
        # Unresolved subqueries are a planning bug; the interpreted path
        # raises at evaluation time, so the compiled closure does too.
        return lambda row: expr.evaluate(row, layout)
    if isinstance(expr, FuncCall):
        return _lower_func(expr, layout)
    # Unknown node type (a future Expr subclass): interpret it.
    return lambda row: expr.evaluate(row, layout)


def _lower_binary(expr: BinaryOp, layout: RowLayout) -> Evaluator:
    op = expr.op
    if op in ("and", "or"):
        return _lower_logical(expr, layout)
    left = _lower(expr.left, layout)
    right = _lower(expr.right, layout)
    compare = _COMPARISON_OPS.get(op)
    if compare is not None:

        def run_compare(row):
            # Both sides evaluate before the NULL check, exactly like the
            # interpreted path: an error on the right must surface even
            # when the left is NULL.
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            try:
                return compare(lhs, rhs)
            except TypeError:
                raise SqlExecutionError(
                    f"cannot compare {lhs!r} {op} {rhs!r}"
                ) from None

        return run_compare
    if op in ("+", "-", "*", "/", "%"):
        return _lower_arithmetic(op, left, right)
    raise SqlExecutionError(f"unknown operator: {op!r}")


def _lower_logical(expr: BinaryOp, layout: RowLayout) -> Evaluator:
    left = _lower(expr.left, layout)
    right = _lower(expr.right, layout)
    if expr.op == "and":

        def run_and(row):
            lhs = _as_bool(left(row))
            if lhs is False:
                return False
            rhs = _as_bool(right(row))
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return True

        return run_and

    def run_or(row):
        lhs = _as_bool(left(row))
        if lhs is True:
            return True
        rhs = _as_bool(right(row))
        if rhs is True:
            return True
        if lhs is None or rhs is None:
            return None
        return False

    return run_or


def _lower_arithmetic(op: str, left: Evaluator, right: Evaluator) -> Evaluator:
    arithmetic = {
        "+": operator.add,
        "-": operator.sub,
        "*": operator.mul,
    }.get(op)

    if arithmetic is not None:

        def run_plain(row):
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            if not isinstance(lhs, (int, float)) or not isinstance(rhs, (int, float)):
                raise SqlExecutionError(
                    f"non-numeric arithmetic: {lhs!r} {op} {rhs!r}"
                )
            return arithmetic(lhs, rhs)

        return run_plain

    def run_division(row):
        lhs = left(row)
        rhs = right(row)
        if lhs is None or rhs is None:
            return None
        if not isinstance(lhs, (int, float)) or not isinstance(rhs, (int, float)):
            raise SqlExecutionError(
                f"non-numeric arithmetic: {lhs!r} {op} {rhs!r}"
            )
        if rhs == 0:
            raise SqlExecutionError(
                "division by zero" if op == "/" else "modulo by zero"
            )
        return lhs / rhs if op == "/" else lhs % rhs

    return run_division


def _lower_unary(expr: UnaryOp, layout: RowLayout) -> Evaluator:
    operand = _lower(expr.operand, layout)
    if expr.op == "not":

        def run_not(row):
            as_bool = _as_bool(operand(row))
            return None if as_bool is None else not as_bool

        return run_not

    def run_neg(row):
        value = operand(row)
        if value is None:
            return None
        if not isinstance(value, (int, float)):
            raise SqlExecutionError(f"cannot negate {value!r}")
        return -value

    return run_neg


def _lower_between(expr: Between, layout: RowLayout) -> Evaluator:
    operand = _lower(expr.operand, layout)
    low = _lower(expr.low, layout)
    high = _lower(expr.high, layout)
    negated = expr.negated

    def run(row):
        value = operand(row)
        low_value = low(row)
        high_value = high(row)
        if value is None or low_value is None or high_value is None:
            return None
        result = low_value <= value <= high_value
        return not result if negated else result

    return run


def _lower_in_list(expr: InList, layout: RowLayout) -> Evaluator:
    operand = _lower(expr.operand, layout)
    negated = expr.negated
    if all(isinstance(item, Literal) for item in expr.items):
        values = [item.value for item in expr.items]
        saw_null = any(value is None for value in values)
        try:
            members = frozenset(value for value in values if value is not None)
        except TypeError:
            members = None  # unhashable literal: fall through to scan
        if members is not None:

            def run_set(row):
                value = operand(row)
                if value is None:
                    return None
                try:
                    matched = value in members
                except TypeError:
                    matched = False
                if matched:
                    return not negated
                if saw_null:
                    return None
                return negated

            return run_set
    items = [_lower(item, layout) for item in expr.items]

    def run_scan(row):
        value = operand(row)
        if value is None:
            return None
        saw_null = False
        for item in items:
            candidate = item(row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return not negated
        if saw_null:
            return None
        return negated

    return run_scan


def _lower_like(expr: Like, layout: RowLayout) -> Evaluator:
    operand = _lower(expr.operand, layout)
    match = _like_regex(expr.pattern).match
    negated = expr.negated

    def run(row):
        value = operand(row)
        if value is None:
            return None
        if not isinstance(value, str):
            value = str(value)
        matched = match(value) is not None
        return not matched if negated else matched

    return run


def _lower_is_null(expr: IsNull, layout: RowLayout) -> Evaluator:
    operand = _lower(expr.operand, layout)
    if expr.negated:
        return lambda row: operand(row) is not None
    return lambda row: operand(row) is None


def _lower_case(expr: CaseWhen, layout: RowLayout) -> Evaluator:
    whens: List[Tuple[Evaluator, Evaluator]] = [
        (_lower(condition, layout), _lower(result, layout))
        for condition, result in expr.whens
    ]
    default: Optional[Evaluator] = (
        _lower(expr.default, layout) if expr.default is not None else None
    )

    def run(row):
        for condition, result in whens:
            if _as_bool(condition(row)) is True:
                return result(row)
        if default is not None:
            return default(row)
        return None

    return run


def _lower_func(expr: FuncCall, layout: RowLayout) -> Evaluator:
    if expr.is_aggregate:
        # By the time a projection evaluates, the GroupBy operator has
        # materialized the aggregate under its SQL text; resolve it once.
        position = layout.resolve(expr.to_sql())
        return lambda row: row[position]
    function = _SCALAR_FUNCTIONS.get(expr.name.lower())
    if function is None or len(expr.args) != 1:
        # Unknown function / wrong arity: the interpreted path raises at
        # evaluation time, so defer to it for the identical error.
        return lambda row: expr.evaluate(row, layout)
    argument = _lower(expr.args[0], layout)
    return lambda row: function(argument(row))
