"""Batch-at-a-time plan executor over column-major data.

Mirrors :class:`repro.sqlengine.executor.Executor` node for node, but every
operator consumes and produces ``(RowLayout, columns, row_count)`` — a list
of column vectors instead of a list of row tuples.  Dense base-table scans
read :meth:`Table.column_data` straight out of storage with zero copying;
predicates narrow selection vectors in ``batch_size`` chunks via
:mod:`repro.sqlengine.vectorize` kernels; joins build and probe over key
vectors and carry ``(left, right)`` index pairs instead of materialized
tuples; aggregation runs tight per-column accumulation loops.  Row tuples
exist only at plan boundaries (:meth:`execute` output, and inside the two
inherently tuple-keyed operators, DISTINCT and the group-by fallback).

Equivalence contract: identical rows, identical :class:`ExecStats`, and the
identical first exception (vector kernels defer per-row errors, and every
operator re-raises the earliest one in reference row-visit order; the
group-by fast path goes further and re-runs the reference loop on any
error, since interleaved key/aggregate evaluation makes deferred ordering
subtle).  One knowing exception: when a query *raises*, the partially
accumulated counters in a caller-supplied ``stats`` object may differ from
the reference path's partial counts — counters are only defined on
success, and both equivalence suites assert them there.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SqlExecutionError
from repro.sqlengine.compile import compile_evaluator
from repro.sqlengine.executor import (
    ExecStats,
    _sort_key,
    group_output_layout,
    group_rows_reference,
    index_row_ids,
)
from repro.sqlengine.expr import ColumnRef, RowLayout
from repro.sqlengine.planner import (
    DistinctNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.sqlengine.table import Table
from repro.sqlengine.vectorize import (
    compile_vector_evaluator,
    compile_vector_filter,
)


class _FallbackToReference(Exception):
    """Internal: the group-by fast path punts to the reference loop."""


def _rows_from_columns(cols: Sequence[Sequence[object]], n: int) -> List[Tuple[object, ...]]:
    if not cols:
        return [()] * n
    return list(zip(*cols)) if n else []


def _columns_from_rows(
    rows: Sequence[Tuple[object, ...]], ncols: int
) -> List[List[object]]:
    if not rows:
        return [[] for _ in range(ncols)]
    return [list(col) for col in zip(*rows)]


def _passthrough_position(expr, layout: RowLayout) -> Optional[int]:
    """The column position for a bare column reference, else None.

    Bare references are the overwhelmingly common projection/sort/group
    key, and resolving them once lets the existing column vector pass
    through with no copy and no kernel.  Unresolvable names return None so
    the kernel path can defer the error in reference row order.
    """
    if isinstance(expr, ColumnRef):
        try:
            return layout.resolve(expr.name)
        except SqlExecutionError:
            return None
    return None


class VectorizedExecutor:
    """Executes plan trees batch-at-a-time against a table catalogue."""

    #: Rows per predicate-evaluation chunk.  Large enough to amortize the
    #: per-batch kernel dispatch, small enough that selection vectors and
    #: intermediate value vectors stay cache-resident.
    DEFAULT_BATCH_SIZE = 1024

    def __init__(
        self, catalog: Dict[str, Table], batch_size: int = DEFAULT_BATCH_SIZE
    ) -> None:
        if batch_size <= 0:
            raise SqlExecutionError(f"batch size must be positive: {batch_size}")
        self._catalog = catalog
        self._batch_size = batch_size

    def execute(self, plan: object, stats: Optional[ExecStats] = None):
        """Run ``plan``; returns ``(layout, rows, stats)``.

        Tuples materialize here, at the plan boundary, in one transpose.
        """
        stats = stats if stats is not None else ExecStats()
        layout, cols, n = self._execute(plan, stats)
        stats.rows_output = n
        return layout, _rows_from_columns(cols, n), stats

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _execute(self, plan: object, stats: ExecStats):
        if isinstance(plan, ScanNode):
            return self._execute_scan(plan, stats)
        if isinstance(plan, FilterNode):
            return self._execute_filter(plan, stats)
        if isinstance(plan, JoinNode):
            return self._execute_join(plan, stats)
        if isinstance(plan, GroupByNode):
            return self._execute_group_by(plan, stats)
        if isinstance(plan, ProjectNode):
            return self._execute_project(plan, stats)
        if isinstance(plan, DistinctNode):
            return self._execute_distinct(plan, stats)
        if isinstance(plan, SortNode):
            return self._execute_sort(plan, stats)
        if isinstance(plan, LimitNode):
            return self._execute_limit(plan, stats)
        raise SqlExecutionError(f"unknown plan node: {type(plan).__name__}")

    # ------------------------------------------------------------------
    # Scans / filter
    # ------------------------------------------------------------------
    def _execute_scan(self, node: ScanNode, stats: ExecStats):
        table = self._catalog[node.table]
        layout = RowLayout(
            [f"{node.binding}.{column}" for column in table.schema.column_names]
        )
        if node.index_access is not None:
            row_ids = index_row_ids(table, node.index_access, stats)
            gathered = [table.row_by_id(row_id) for row_id in row_ids]
            cols: Sequence[Sequence[object]] = _columns_from_rows(
                gathered, len(layout)
            )
            n = len(gathered)
        else:
            # The dense path reads the table's columnar mirror directly;
            # downstream operators never mutate input columns.
            cols = table.column_data()
            n = len(table)
            stats.rows_scanned += n
        if node.predicate is not None:
            cols, n = self._filter_columns(node.predicate, layout, cols, n)
        return layout, cols, n

    def _execute_filter(self, node: FilterNode, stats: ExecStats):
        layout, cols, n = self._execute(node.child, stats)
        cols, n = self._filter_columns(node.predicate, layout, cols, n)
        return layout, cols, n

    def _filter_columns(self, predicate, layout: RowLayout, cols, n: int):
        kernel = compile_vector_filter(predicate, layout)
        batch = self._batch_size
        kept: List[int] = []
        for start in range(0, n, batch):
            passing, errs = kernel(cols, range(start, min(start + batch, n)))
            if errs:
                # The earliest error in row order: exactly what the
                # reference row loop raises (rows past it never evaluate
                # there, but kernels are pure, so that is unobservable).
                raise errs[0][1]
            kept.extend(passing)
        if len(kept) == n:
            return cols, n
        return [[col[i] for i in kept] for col in cols], len(kept)

    def _run_kernel_chunked(self, kernel, cols, n: int):
        """Evaluate a value kernel over all ``n`` rows in batch-size chunks.

        Returns ``(values, first_error)`` where ``first_error`` is the
        earliest deferred ``(row, exception)`` or None.
        """
        batch = self._batch_size
        if n <= batch:
            values, errs = kernel(cols, range(n))
            return values, (errs[0] if errs else None)
        values: List[object] = []
        first_err = None
        for start in range(0, n, batch):
            chunk_values, errs = kernel(cols, range(start, min(start + batch, n)))
            values.extend(chunk_values)
            if errs and first_err is None:
                first_err = errs[0]
        return values, first_err

    def _value_vector(self, expr, layout: RowLayout, cols, n: int):
        """A value vector for ``expr``: column passthrough or kernel run."""
        position = _passthrough_position(expr, layout)
        if position is not None:
            return cols[position], None
        return self._run_kernel_chunked(
            compile_vector_evaluator(expr, layout), cols, n
        )

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _execute_join(self, node: JoinNode, stats: ExecStats):
        left_layout, left_cols, ln = self._execute(node.left, stats)
        right_layout, right_cols, rn = self._execute(node.right, stats)
        layout = left_layout.concat(right_layout)
        if node.equi_keys:
            left_idx, right_idx = self._hash_join_pairs(
                node, left_layout, left_cols, ln,
                right_layout, right_cols, rn, layout, stats,
            )
        else:
            left_idx, right_idx = self._nested_loop_pairs(
                node, left_cols, ln, right_cols, rn, layout, stats
            )
        if node.kind == "left":
            # Interleave null-padded unmatched left rows in probe order,
            # like the reference loop.  Matched pair lists are sorted by
            # left index by construction.
            padded_left: List[int] = []
            padded_right: List[int] = []
            p, npairs = 0, len(left_idx)
            for i in range(ln):
                matched = False
                while p < npairs and left_idx[p] == i:
                    padded_left.append(i)
                    padded_right.append(right_idx[p])
                    p += 1
                    matched = True
                if not matched:
                    padded_left.append(i)
                    padded_right.append(-1)  # null pad marker
            left_idx, right_idx = padded_left, padded_right
            out_cols = [[col[i] for i in left_idx] for col in left_cols]
            for col in right_cols:
                out_cols.append(
                    [None if j < 0 else col[j] for j in right_idx]
                )
        else:
            out_cols = [[col[i] for i in left_idx] for col in left_cols]
            out_cols.extend([col[j] for j in right_idx] for col in right_cols)
        return layout, out_cols, len(left_idx)

    def _hash_join_pairs(
        self, node, left_layout, left_cols, ln,
        right_layout, right_cols, rn, layout, stats,
    ):
        left_positions = [
            left_layout.resolve(left_key) for left_key, _ in node.equi_keys
        ]
        right_positions = [
            right_layout.resolve(right_key) for _, right_key in node.equi_keys
        ]
        # Build on the right side, like the reference executor.
        buckets: Dict[object, List[int]] = {}
        if len(right_positions) == 1:
            key_col = right_cols[right_positions[0]]
            for j in range(rn):
                key = key_col[j]
                if key is not None:
                    buckets.setdefault(key, []).append(j)
        else:
            key_cols = [right_cols[position] for position in right_positions]
            for j in range(rn):
                key = tuple(col[j] for col in key_cols)
                if any(part is None for part in key):
                    continue
                buckets.setdefault(key, []).append(j)
        stats.join_build_rows += rn

        left_idx: List[int] = []
        right_idx: List[int] = []
        get = buckets.get
        if len(left_positions) == 1:
            key_col = left_cols[left_positions[0]]
            for i in range(ln):
                key = key_col[i]
                if key is None:
                    continue
                matches = get(key)
                if matches:
                    for j in matches:
                        left_idx.append(i)
                        right_idx.append(j)
        else:
            key_cols = [left_cols[position] for position in left_positions]
            for i in range(ln):
                key = tuple(col[i] for col in key_cols)
                if any(part is None for part in key):
                    continue
                matches = get(key)
                if matches:
                    for j in matches:
                        left_idx.append(i)
                        right_idx.append(j)
        stats.join_probe_rows += ln
        if node.condition is not None and left_idx:
            left_idx, right_idx = self._filter_pairs(
                node.condition, layout, left_cols, right_cols, left_idx, right_idx
            )
        return left_idx, right_idx

    def _nested_loop_pairs(
        self, node, left_cols, ln, right_cols, rn, layout, stats
    ):
        condition = (
            None
            if node.condition is None
            else compile_vector_filter(node.condition, layout)
        )
        left_idx: List[int] = []
        right_idx: List[int] = []
        batch = self._batch_size
        for i in range(ln):
            stats.join_probe_rows += rn
            if rn == 0:
                continue
            if condition is None:
                left_idx.extend([i] * rn)
                right_idx.extend(range(rn))
                continue
            # One left row against the whole right side: broadcast the left
            # values, pass the right columns through untouched.
            combined = [[col[i]] * rn for col in left_cols]
            combined.extend(right_cols)
            matches: List[int] = []
            for start in range(0, rn, batch):
                passing, errs = condition(
                    combined, range(start, min(start + batch, rn))
                )
                if errs:
                    raise errs[0][1]
                matches.extend(passing)
            left_idx.extend([i] * len(matches))
            right_idx.extend(matches)
        return left_idx, right_idx

    def _filter_pairs(
        self, condition, layout, left_cols, right_cols, left_idx, right_idx
    ):
        """Apply a residual join condition over candidate pairs."""
        npairs = len(left_idx)
        pair_cols = [[col[i] for i in left_idx] for col in left_cols]
        pair_cols.extend([col[j] for j in right_idx] for col in right_cols)
        kernel = compile_vector_filter(condition, layout)
        batch = self._batch_size
        survivors: List[int] = []
        for start in range(0, npairs, batch):
            passing, errs = kernel(
                pair_cols, range(start, min(start + batch, npairs))
            )
            if errs:
                raise errs[0][1]
            survivors.extend(passing)
        if len(survivors) == npairs:
            return left_idx, right_idx
        return (
            [left_idx[p] for p in survivors],
            [right_idx[p] for p in survivors],
        )

    # ------------------------------------------------------------------
    # Group by / aggregation
    # ------------------------------------------------------------------
    def _execute_group_by(self, node: GroupByNode, stats: ExecStats):
        child_layout, cols, n = self._execute(node.child, stats)
        try:
            return self._group_by_fast(node, child_layout, cols, n)
        except Exception:
            # Any trouble on the fast path — a deferred evaluation error,
            # an unhashable key, a non-numeric SUM, mixed-type MIN/MAX —
            # re-runs the reference row-at-a-time loop, which visits rows
            # in the exact interpreted order and therefore raises the
            # exact reference exception (or, for recoverable cases the
            # fast path doesn't model, produces the reference result).
            rows = _rows_from_columns(cols, n)
            layout, out_rows = group_rows_reference(
                node, child_layout, rows, compile_evaluator
            )
            return layout, _columns_from_rows(out_rows, len(layout)), len(out_rows)

    def _group_by_fast(self, node: GroupByNode, child_layout, cols, n: int):
        layout = group_output_layout(node, child_layout)
        for aggregate in node.aggregates:
            if not aggregate.star and len(aggregate.args) != 1 and n:
                raise _FallbackToReference  # per-row arity error
        key_vectors: List[List[object]] = []
        for expr in node.group_exprs:
            values, first_err = self._value_vector(expr, child_layout, cols, n)
            if first_err is not None:
                raise _FallbackToReference
            key_vectors.append(values)
        arg_vectors: List[Optional[List[object]]] = []
        for aggregate in node.aggregates:
            if aggregate.star or len(aggregate.args) != 1:
                arg_vectors.append(None)
                continue
            values, first_err = self._value_vector(
                aggregate.args[0], child_layout, cols, n
            )
            if first_err is not None:
                raise _FallbackToReference
            arg_vectors.append(values)

        # Assign a dense group id per row, first-occurrence order.
        if node.group_exprs:
            if len(key_vectors) == 1:
                keys: Sequence[object] = key_vectors[0]
            else:
                keys = list(zip(*key_vectors))
            group_index: Dict[object, int] = {}
            group_ids = [0] * n
            first_rows: List[int] = []
            for k in range(n):
                key = keys[k]
                gid = group_index.get(key, -1)
                if gid < 0:
                    gid = len(first_rows)
                    group_index[key] = gid
                    first_rows.append(k)
                group_ids[k] = gid
            ngroups = len(first_rows)
            key_columns = [
                [vector[row] for row in first_rows] for vector in key_vectors
            ]
        else:
            # A scalar aggregate: one group, even over empty input.
            group_ids = [0] * n
            ngroups = 1
            key_columns = []

        agg_columns = [
            self._accumulate(aggregate, arg, group_ids, ngroups)
            for aggregate, arg in zip(node.aggregates, arg_vectors)
        ]
        return layout, key_columns + agg_columns, ngroups

    @staticmethod
    def _accumulate(aggregate, arg, group_ids, ngroups: int) -> List[object]:
        """One aggregate over all groups in a single tight pass.

        Accumulation visits rows in order, so float SUM/AVG reproduce the
        reference path's addition sequence bit for bit.
        """
        name = aggregate.name.lower()
        if aggregate.star:
            counts = [0] * ngroups
            for gid in group_ids:
                counts[gid] += 1
            return counts
        seen: Optional[List[set]] = (
            [set() for _ in range(ngroups)] if aggregate.distinct else None
        )
        if name == "count":
            counts = [0] * ngroups
            for gid, value in zip(group_ids, arg):
                if value is None:
                    continue
                if seen is not None:
                    bucket = seen[gid]
                    if value in bucket:
                        continue
                    bucket.add(value)
                counts[gid] += 1
            return counts
        if name in ("sum", "avg"):
            totals: List[object] = [None] * ngroups
            counts = [0] * ngroups
            for gid, value in zip(group_ids, arg):
                if value is None:
                    continue
                if seen is not None:
                    bucket = seen[gid]
                    if value in bucket:
                        continue
                    bucket.add(value)
                if not isinstance(value, (int, float)):
                    raise _FallbackToReference  # reference raises per row
                counts[gid] += 1
                total = totals[gid]
                totals[gid] = value if total is None else total + value
            if name == "sum":
                return totals
            return [
                None if count == 0 else total / count
                for total, count in zip(totals, counts)
            ]
        if name == "min":
            best: List[object] = [None] * ngroups
            for gid, value in zip(group_ids, arg):
                if value is None:
                    continue
                if seen is not None:
                    bucket = seen[gid]
                    if value in bucket:
                        continue
                    bucket.add(value)
                current = best[gid]
                if current is None or value < current:
                    best[gid] = value
            return best
        if name == "max":
            best = [None] * ngroups
            for gid, value in zip(group_ids, arg):
                if value is None:
                    continue
                if seen is not None:
                    bucket = seen[gid]
                    if value in bucket:
                        continue
                    bucket.add(value)
                current = best[gid]
                if current is None or value > current:
                    best[gid] = value
            return best
        raise _FallbackToReference  # unknown aggregate: reference raises

    # ------------------------------------------------------------------
    # Project / distinct / sort / limit
    # ------------------------------------------------------------------
    def _execute_project(self, node: ProjectNode, stats: ExecStats):
        child_layout, cols, n = self._execute(node.child, stats)
        output_names: List[str] = []
        # Star expansions pass child columns straight through (an int
        # position); everything else lowers to a vector kernel.
        outputs: List[object] = []
        for item in node.items:
            if item.is_star:
                for position, column in enumerate(child_layout.columns):
                    if item.star_qualifier is not None and not column.startswith(
                        item.star_qualifier + "."
                    ):
                        continue
                    output_names.append(column)
                    outputs.append(position)
                continue
            output_names.append(item.output_name().lower())
            position = _passthrough_position(item.expr, child_layout)
            outputs.append(
                position
                if position is not None
                else compile_vector_evaluator(item.expr, child_layout)
            )
        layout = RowLayout(output_names)
        out_cols: List[Sequence[object]] = []
        first_err: Optional[Tuple[int, int, BaseException]] = None
        for index, output in enumerate(outputs):
            if isinstance(output, int):
                out_cols.append(cols[output])
                continue
            values, err = self._run_kernel_chunked(output, cols, n)
            # The reference path evaluates items row-major, so the first
            # exception is the minimum over (row, item position).
            if err is not None and (
                first_err is None or (err[0], index) < (first_err[0], first_err[1])
            ):
                first_err = (err[0], index, err[1])
            out_cols.append(values)
        if first_err is not None:
            raise first_err[2]
        return layout, out_cols, n

    def _execute_distinct(self, node: DistinctNode, stats: ExecStats):
        layout, cols, n = self._execute(node.child, stats)
        # The whole row is the distinct key, so this operator is inherently
        # tuple-shaped: transpose, dedup in first-occurrence order, and
        # return to columns.
        rows = _rows_from_columns(cols, n)
        deduped = list(dict.fromkeys(rows))
        return layout, _columns_from_rows(deduped, len(layout)), len(deduped)

    def _execute_sort(self, node: SortNode, stats: ExecStats):
        layout, cols, n = self._execute(node.child, stats)
        items = node.order_items
        key_vectors: List[List[object]] = []
        first_err: Optional[Tuple[int, int, BaseException]] = None
        for index, item in enumerate(items):
            values, err = self._value_vector(item.expr, layout, cols, n)
            if err is not None and (
                first_err is None or (err[0], index) < (first_err[0], first_err[1])
            ):
                first_err = (err[0], index, err[1])
            key_vectors.append(values)
        if first_err is not None:
            raise first_err[2]
        order = list(range(n))
        # Stable sorts applied last-to-first compose to the reference
        # ordering for mixed ASC/DESC; sorting an index vector by a
        # precomputed key vector replaces per-row key tuples.
        for index in range(len(items) - 1, -1, -1):
            sortable = [_sort_key(value) for value in key_vectors[index]]
            order.sort(
                key=sortable.__getitem__, reverse=not items[index].ascending
            )
        return layout, [[col[i] for i in order] for col in cols], n

    def _execute_limit(self, node: LimitNode, stats: ExecStats):
        layout, cols, n = self._execute(node.child, stats)
        if node.limit is None or n <= node.limit:
            return layout, cols, n
        sliced = [col[: node.limit] for col in cols]
        return layout, sliced, (len(sliced[0]) if sliced else 0)
