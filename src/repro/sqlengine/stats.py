"""Per-table and per-column statistics.

These are the raw inputs to the BestPeer++ histogram module and the
pay-as-you-go cost model: row counts, byte sizes, per-column min/max and
distinct-value estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sqlengine.table import Table


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for one column."""

    column: str
    null_count: int
    distinct_count: int
    minimum: Optional[object]
    maximum: Optional[object]


@dataclass(frozen=True)
class TableStats:
    """Summary statistics for one table."""

    table: str
    row_count: int
    byte_size: int
    columns: Dict[str, ColumnStats]

    @property
    def avg_row_bytes(self) -> float:
        if self.row_count == 0:
            return 0.0
        return self.byte_size / self.row_count


def collect_table_stats(table: Table) -> TableStats:
    """Scan ``table`` once and summarize every column."""
    column_names = table.schema.column_names
    nulls = [0] * len(column_names)
    distinct = [set() for _ in column_names]
    minima: list = [None] * len(column_names)
    maxima: list = [None] * len(column_names)

    for row in table.rows():
        for position, value in enumerate(row):
            if value is None:
                nulls[position] += 1
                continue
            distinct[position].add(value)
            if minima[position] is None or value < minima[position]:
                minima[position] = value
            if maxima[position] is None or value > maxima[position]:
                maxima[position] = value

    columns = {
        name.lower(): ColumnStats(
            column=name.lower(),
            null_count=nulls[position],
            distinct_count=len(distinct[position]),
            minimum=minima[position],
            maximum=maxima[position],
        )
        for position, name in enumerate(column_names)
    }
    return TableStats(
        table=table.schema.name,
        row_count=len(table),
        byte_size=table.byte_size,
        columns=columns,
    )
