"""Vector expression compilation: lower :class:`Expr` trees into batch kernels.

Where :mod:`repro.sqlengine.compile` lowers an expression into a closure
evaluated once per row, this module lowers it once per plan into a *vector*
kernel evaluated once per batch.  A kernel takes the operator's column
vectors plus a **selection vector** (strictly increasing row indices into
those columns, often a plain ``range``) and returns per-row results for
exactly the selected rows.

Two kernel shapes exist:

* value kernels (:func:`compile_vector_evaluator`) return
  ``(values, errors)`` where ``values`` aligns 1:1 with the selection
  vector and ``errors`` is a row-ordered list of ``(row_index, exception)``
  pairs (the value slot of an error row holds ``None`` as a placeholder);
* tri-state kernels (used internally for boolean contexts) partition the
  selection into ``(true_rows, unknown_rows, errors)`` — everything else is
  false — which is what makes short-circuit AND/OR *narrowing* possible:
  ``AND`` evaluates its right side only for rows whose left side is true or
  unknown, exactly mirroring the interpreted short-circuit.

Errors are **deferred**, never raised mid-batch: evaluating a batch must
surface the same exception the row-at-a-time reference path would have hit
first, so kernels record per-row exceptions (including raw ``TypeError``
from e.g. ``BETWEEN`` over incomparable values, matching the interpreted
path) and the executor re-raises the earliest one in row order at the
operator boundary.  Within one row, recording follows interpreted
evaluation order (left before right, condition before result).

Like the row compiler, LIKE regexes and IN-list frozensets are resolved at
compile time, and anything that cannot be lowered (a column missing from
the layout, an unresolved subquery, an unknown node type) falls back to a
per-row adapter over ``Expr.evaluate`` so the interpreted path stays the
reference semantics.

Callers must treat returned value vectors as read-only: kernels pass
through underlying column storage unchanged when the selection covers it
entirely.
"""

from __future__ import annotations

import operator
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import SqlExecutionError
from repro.sqlengine.expr import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    RowLayout,
    UnaryOp,
    _SCALAR_FUNCTIONS,
    _like_regex,
)

#: Column vectors for one batch: ``columns[position][row_index]``.
Columns = Sequence[Sequence[object]]
#: A selection vector: strictly increasing row indices into the columns.
Selection = Sequence[int]
#: Deferred per-row errors, sorted by row index (indices are unique).
Errors = List[Tuple[int, BaseException]]
#: A value kernel: ``(columns, selection) -> (values, errors)``.
VectorFn = Callable[[Columns, Selection], Tuple[List[object], Errors]]
#: A tri-state kernel: ``(columns, selection) -> (true, unknown, errors)``.
TriFn = Callable[[Columns, Selection], Tuple[List[int], List[int], Errors]]
#: A predicate kernel: ``(columns, selection) -> (passing_rows, errors)``.
FilterFn = Callable[[Columns, Selection], Tuple[List[int], Errors]]

_COMPARISON_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def compile_vector_evaluator(expr: Expr, layout: RowLayout) -> VectorFn:
    """Compile ``expr`` into a batch kernel with reference-path semantics.

    For every selected row, ``values[k]`` (or the deferred error covering
    that row) equals what ``expr.evaluate(row, layout)`` would have produced
    (or raised).
    """
    try:
        return _lower_value(expr, layout)
    except SqlExecutionError:
        # e.g. a column the layout cannot resolve: the interpreted path
        # raises per row, so the per-row adapter preserves exact behaviour.
        return _row_adapter(expr, layout)


def compile_vector_filter(expr: Expr, layout: RowLayout) -> FilterFn:
    """Compile a WHERE/ON predicate into a selection-narrowing kernel.

    SQL semantics: NULL (and anything not ``True``) rejects the row, exactly
    like the executor's ``evaluate(...) is True`` checks.  Rows whose
    evaluation would raise come back in ``errors`` instead of the output
    selection.
    """
    try:
        if _is_boolean_node(expr):
            tri = _lower_tri(expr, layout)

            def run_tri(cols: Columns, sel: Selection):
                true_sel, _unknown, errs = tri(cols, sel)
                return true_sel, errs

            return run_tri
        value = _lower_value(expr, layout)
    except SqlExecutionError:
        value = _row_adapter(expr, layout)

    def run_value(cols: Columns, sel: Selection):
        values, errs = value(cols, sel)
        # Error rows hold a None placeholder, so `is True` skips them.
        return [i for v, i in zip(values, sel) if v is True], errs

    return run_value


def _is_boolean_node(expr: Expr) -> bool:
    """Whether ``expr`` always evaluates to bool/NULL (never another type)."""
    if isinstance(expr, BinaryOp):
        return expr.op in ("and", "or") or expr.op in _COMPARISON_OPS
    if isinstance(expr, UnaryOp):
        return expr.op == "not"
    return isinstance(expr, (Between, InList, Like, IsNull))


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _merge_sorted(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Merge two sorted, disjoint index lists."""
    if not a:
        return list(b)
    if not b:
        return list(a)
    merged: List[int] = []
    i, j = 0, 0
    while i < len(a) and j < len(b):
        if a[i] <= b[j]:
            merged.append(a[i])
            i += 1
        else:
            merged.append(b[j])
            j += 1
    merged.extend(a[i:])
    merged.extend(b[j:])
    return merged


def _merge_errs(a: Errors, b: Errors) -> Errors:
    """Merge two row-sorted error lists, keeping one error per row.

    When both sides error on the same row, ``a`` wins: callers pass the
    earlier evaluation stage (e.g. a comparison's left side) as ``a``,
    matching the exception the interpreted path would raise first.
    """
    if not a:
        return b
    if not b:
        return a
    merged: Errors = []
    i, j = 0, 0
    while i < len(a) and j < len(b):
        if a[i][0] < b[j][0]:
            merged.append(a[i])
            i += 1
        elif b[j][0] < a[i][0]:
            merged.append(b[j])
            j += 1
        else:
            merged.append(a[i])
            i += 1
            j += 1
    merged.extend(a[i:])
    merged.extend(b[j:])
    return merged


def _row_adapter(expr: Expr, layout: RowLayout) -> VectorFn:
    """Reference-semantics fallback: interpret ``expr`` per selected row."""

    def run(cols: Columns, sel: Selection):
        values: List[object] = []
        errs: Errors = []
        for i in sel:
            row = tuple(col[i] for col in cols)
            try:
                values.append(expr.evaluate(row, layout))
            except Exception as exc:  # deferred, incl. raw TypeError
                values.append(None)
                errs.append((i, exc))
        return values, errs

    return run


def _position_kernel(position: int) -> VectorFn:
    def run(cols: Columns, sel: Selection):
        col = cols[position]
        if len(sel) == len(col):
            # A strictly increasing selection as long as the column is the
            # identity: pass the storage through without copying.
            return col, []
        return [col[i] for i in sel], []

    return run


def _value_from_tri(tri: TriFn) -> VectorFn:
    """Adapt a tri-state kernel to value shape (for e.g. ``SELECT a AND b``)."""

    def run(cols: Columns, sel: Selection):
        true_sel, unknown_sel, errs = tri(cols, sel)
        true_set = set(true_sel)
        unknown_set = set(unknown_sel)
        err_set = {i for i, _ in errs}
        values: List[object] = []
        for i in sel:
            if i in true_set:
                values.append(True)
            elif i in unknown_set or i in err_set:
                values.append(None)
            else:
                values.append(False)
        return values, errs

    return run


def _tri_from_value(value: VectorFn, strict: bool) -> TriFn:
    """Adapt a value kernel to tri-state shape.

    ``strict`` applies ``_as_bool`` semantics: a non-boolean value in a
    logical context is a deferred per-row error with the interpreted
    message.  Non-strict is for nodes that can only yield bool/NULL.
    """

    def run(cols: Columns, sel: Selection):
        values, errs = value(cols, sel)
        err_set = {i for i, _ in errs} if errs else None
        true_sel: List[int] = []
        unknown_sel: List[int] = []
        bool_errs: Errors = []
        for v, i in zip(values, sel):
            if err_set is not None and i in err_set:
                continue
            if v is True:
                true_sel.append(i)
            elif v is None:
                unknown_sel.append(i)
            elif v is not False and strict:
                bool_errs.append(
                    (i, SqlExecutionError(f"expected a boolean, got {v!r}"))
                )
        if bool_errs:
            errs = _merge_errs(errs, bool_errs)
        return true_sel, unknown_sel, errs

    return run


# ----------------------------------------------------------------------
# Value lowering (one function per node type)
# ----------------------------------------------------------------------
def _lower_value(expr: Expr, layout: RowLayout) -> VectorFn:
    if isinstance(expr, Literal):
        value = expr.value
        return lambda cols, sel: ([value] * len(sel), [])
    if isinstance(expr, ColumnRef):
        return _position_kernel(layout.resolve(expr.name))
    if isinstance(expr, BinaryOp):
        if expr.op in ("and", "or"):
            return _value_from_tri(_lower_tri(expr, layout))
        if expr.op in _COMPARISON_OPS:
            return _lower_value_comparison(expr, layout)
        if expr.op in ("+", "-", "*", "/", "%"):
            return _lower_value_arithmetic(expr, layout)
        raise SqlExecutionError(f"unknown operator: {expr.op!r}")
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return _value_from_tri(_lower_tri_not(expr, layout))
        return _lower_value_negate(expr, layout)
    if isinstance(expr, Between):
        return _lower_value_between(expr, layout)
    if isinstance(expr, InList):
        return _lower_value_in_list(expr, layout)
    if isinstance(expr, Like):
        return _lower_value_like(expr, layout)
    if isinstance(expr, IsNull):
        return _lower_value_is_null(expr, layout)
    if isinstance(expr, CaseWhen):
        return _lower_value_case(expr, layout)
    if isinstance(expr, FuncCall):
        return _lower_value_func(expr, layout)
    # InSubquery (a planning bug at evaluation time) and unknown future
    # node types: interpret per row for the identical error.
    return _row_adapter(expr, layout)


def _lower_value_comparison(expr: BinaryOp, layout: RowLayout) -> VectorFn:
    left = _lower_value(expr.left, layout)
    right = _lower_value(expr.right, layout)
    compare = _COMPARISON_OPS[expr.op]
    op = expr.op

    def run(cols: Columns, sel: Selection):
        # Both sides evaluate for every row before the NULL check, exactly
        # like the interpreted path: an error on the right must surface even
        # when the left is NULL.
        left_values, left_errs = left(cols, sel)
        right_values, right_errs = right(cols, sel)
        values: List[object] = [None] * len(sel)
        errs = _merge_errs(left_errs, right_errs)
        err_set = {i for i, _ in errs} if errs else None
        compare_errs: Errors = []
        for k, i in enumerate(sel):
            if err_set is not None and i in err_set:
                continue
            lhs = left_values[k]
            rhs = right_values[k]
            if lhs is None or rhs is None:
                continue
            try:
                values[k] = compare(lhs, rhs)
            except TypeError:
                compare_errs.append(
                    (i, SqlExecutionError(f"cannot compare {lhs!r} {op} {rhs!r}"))
                )
        if compare_errs:
            errs = _merge_errs(errs, compare_errs)
        return values, errs

    return run


def _lower_value_arithmetic(expr: BinaryOp, layout: RowLayout) -> VectorFn:
    left = _lower_value(expr.left, layout)
    right = _lower_value(expr.right, layout)
    op = expr.op
    arithmetic = _ARITHMETIC_OPS.get(op)

    def run(cols: Columns, sel: Selection):
        left_values, left_errs = left(cols, sel)
        right_values, right_errs = right(cols, sel)
        values: List[object] = [None] * len(sel)
        errs = _merge_errs(left_errs, right_errs)
        err_set = {i for i, _ in errs} if errs else None
        new_errs: Errors = []
        for k, i in enumerate(sel):
            if err_set is not None and i in err_set:
                continue
            lhs = left_values[k]
            rhs = right_values[k]
            if lhs is None or rhs is None:
                continue
            if not isinstance(lhs, (int, float)) or not isinstance(rhs, (int, float)):
                new_errs.append(
                    (i, SqlExecutionError(f"non-numeric arithmetic: {lhs!r} {op} {rhs!r}"))
                )
            elif arithmetic is not None:
                values[k] = arithmetic(lhs, rhs)
            elif rhs == 0:
                new_errs.append(
                    (i, SqlExecutionError(
                        "division by zero" if op == "/" else "modulo by zero"
                    ))
                )
            else:
                values[k] = lhs / rhs if op == "/" else lhs % rhs
        if new_errs:
            errs = _merge_errs(errs, new_errs)
        return values, errs

    return run


def _lower_value_negate(expr: UnaryOp, layout: RowLayout) -> VectorFn:
    operand = _lower_value(expr.operand, layout)

    def run(cols: Columns, sel: Selection):
        operand_values, errs = operand(cols, sel)
        values: List[object] = [None] * len(sel)
        err_set = {i for i, _ in errs} if errs else None
        new_errs: Errors = []
        for k, i in enumerate(sel):
            if err_set is not None and i in err_set:
                continue
            v = operand_values[k]
            if v is None:
                continue
            if isinstance(v, (int, float)):
                values[k] = -v
            else:
                new_errs.append((i, SqlExecutionError(f"cannot negate {v!r}")))
        if new_errs:
            errs = _merge_errs(errs, new_errs)
        return values, errs

    return run


def _lower_value_between(expr: Between, layout: RowLayout) -> VectorFn:
    operand = _lower_value(expr.operand, layout)
    low = _lower_value(expr.low, layout)
    high = _lower_value(expr.high, layout)
    negated = expr.negated

    def run(cols: Columns, sel: Selection):
        operand_values, operand_errs = operand(cols, sel)
        low_values, low_errs = low(cols, sel)
        high_values, high_errs = high(cols, sel)
        values: List[object] = [None] * len(sel)
        errs = _merge_errs(_merge_errs(operand_errs, low_errs), high_errs)
        err_set = {i for i, _ in errs} if errs else None
        range_errs: Errors = []
        for k, i in enumerate(sel):
            if err_set is not None and i in err_set:
                continue
            v = operand_values[k]
            lo = low_values[k]
            hi = high_values[k]
            if v is None or lo is None or hi is None:
                continue
            try:
                result = lo <= v <= hi
            except TypeError as exc:
                # The interpreted path lets this TypeError propagate raw.
                range_errs.append((i, exc))
                continue
            values[k] = not result if negated else result
        if range_errs:
            errs = _merge_errs(errs, range_errs)
        return values, errs

    return run


def _lower_value_in_list(expr: InList, layout: RowLayout) -> VectorFn:
    operand = _lower_value(expr.operand, layout)
    negated = expr.negated
    if all(isinstance(item, Literal) for item in expr.items):
        literal_values = [item.value for item in expr.items]
        saw_null = any(value is None for value in literal_values)
        try:
            members = frozenset(v for v in literal_values if v is not None)
        except TypeError:
            members = None  # unhashable literal: fall through to scan
        if members is not None:

            def run_set(cols: Columns, sel: Selection):
                operand_values, errs = operand(cols, sel)
                values: List[object] = [None] * len(sel)
                err_set = {i for i, _ in errs} if errs else None
                for k, i in enumerate(sel):
                    if err_set is not None and i in err_set:
                        continue
                    v = operand_values[k]
                    if v is None:
                        continue
                    try:
                        matched = v in members
                    except TypeError:
                        matched = False
                    if matched:
                        values[k] = not negated
                    elif not saw_null:
                        values[k] = negated
                return values, errs

            return run_set
    items = [_lower_value(item, layout) for item in expr.items]

    def run_scan(cols: Columns, sel: Selection):
        operand_values, operand_errs = operand(cols, sel)
        position = {i: k for k, i in enumerate(sel)}
        values: List[object] = [None] * len(sel)
        errs = list(operand_errs)
        err_set = {i for i, _ in operand_errs}
        # Rows narrow out of `active` as soon as an item matches (the
        # interpreted path stops evaluating further items there too).
        active = [
            i
            for k, i in enumerate(sel)
            if i not in err_set and operand_values[k] is not None
        ]
        operand_of = {i: operand_values[position[i]] for i in active}
        saw_null_rows = set()
        for item in items:
            if not active:
                break
            item_values, item_errs = item(cols, active)
            item_err_map = dict(item_errs)
            survivors: List[int] = []
            for k, i in enumerate(active):
                if i in item_err_map:
                    errs.append((i, item_err_map[i]))
                    continue
                candidate = item_values[k]
                if candidate is None:
                    saw_null_rows.add(i)
                    survivors.append(i)
                elif candidate == operand_of[i]:
                    values[position[i]] = not negated
                else:
                    survivors.append(i)
            active = survivors
        for i in active:
            values[position[i]] = None if i in saw_null_rows else negated
        errs.sort(key=lambda pair: pair[0])
        return values, errs

    return run_scan


def _lower_value_like(expr: Like, layout: RowLayout) -> VectorFn:
    operand = _lower_value(expr.operand, layout)
    match = _like_regex(expr.pattern).match
    negated = expr.negated

    def run(cols: Columns, sel: Selection):
        operand_values, errs = operand(cols, sel)
        values: List[object] = [None] * len(sel)
        err_set = {i for i, _ in errs} if errs else None
        for k, i in enumerate(sel):
            if err_set is not None and i in err_set:
                continue
            v = operand_values[k]
            if v is None:
                continue
            if not isinstance(v, str):
                v = str(v)
            matched = match(v) is not None
            values[k] = not matched if negated else matched
        return values, errs

    return run


def _lower_value_is_null(expr: IsNull, layout: RowLayout) -> VectorFn:
    operand = _lower_value(expr.operand, layout)
    negated = expr.negated

    def run(cols: Columns, sel: Selection):
        operand_values, errs = operand(cols, sel)
        if not errs:
            if negated:
                return [v is not None for v in operand_values], errs
            return [v is None for v in operand_values], errs
        err_set = {i for i, _ in errs}
        values: List[object] = []
        for v, i in zip(operand_values, sel):
            if i in err_set:
                values.append(None)
            else:
                values.append((v is not None) if negated else (v is None))
        return values, errs

    return run


def _lower_value_case(expr: CaseWhen, layout: RowLayout) -> VectorFn:
    whens: List[Tuple[TriFn, VectorFn]] = [
        (_lower_tri(condition, layout), _lower_value(result, layout))
        for condition, result in expr.whens
    ]
    default: Optional[VectorFn] = (
        _lower_value(expr.default, layout) if expr.default is not None else None
    )

    def run(cols: Columns, sel: Selection):
        position = {i: k for k, i in enumerate(sel)}
        values: List[object] = [None] * len(sel)
        errs: Errors = []
        # Rows narrow out as soon as a condition is true (or errors): later
        # WHEN arms never evaluate for them, like the interpreted walk.
        active: Sequence[int] = sel
        for condition, result in whens:
            if not active:
                break
            true_sel, _unknown, cond_errs = condition(cols, active)
            errs.extend(cond_errs)
            if true_sel:
                result_values, result_errs = result(cols, true_sel)
                errs.extend(result_errs)
                result_err_set = {i for i, _ in result_errs}
                for k, i in enumerate(true_sel):
                    if i not in result_err_set:
                        values[position[i]] = result_values[k]
            resolved = set(true_sel)
            resolved.update(i for i, _ in cond_errs)
            active = [i for i in active if i not in resolved]
        if default is not None and active:
            default_values, default_errs = default(cols, active)
            errs.extend(default_errs)
            default_err_set = {i for i, _ in default_errs}
            for k, i in enumerate(active):
                if i not in default_err_set:
                    values[position[i]] = default_values[k]
        errs.sort(key=lambda pair: pair[0])
        return values, errs

    return run


def _lower_value_func(expr: FuncCall, layout: RowLayout) -> VectorFn:
    if expr.is_aggregate:
        # By the time a projection evaluates, the GroupBy operator has
        # materialized the aggregate under its SQL text; resolve it once.
        return _position_kernel(layout.resolve(expr.to_sql()))
    function = _SCALAR_FUNCTIONS.get(expr.name.lower())
    # The interpreted path checks the function name and arity before
    # evaluating any argument; unknown/misused calls error per row without
    # touching the arguments.
    if function is None:
        return _constant_error_kernel(
            SqlExecutionError(f"unknown function: {expr.name!r}")
        )
    if len(expr.args) != 1:
        return _constant_error_kernel(
            SqlExecutionError(f"{expr.name} takes exactly one argument")
        )
    argument = _lower_value(expr.args[0], layout)

    def run(cols: Columns, sel: Selection):
        argument_values, errs = argument(cols, sel)
        values: List[object] = [None] * len(sel)
        err_set = {i for i, _ in errs} if errs else None
        call_errs: Errors = []
        for k, i in enumerate(sel):
            if err_set is not None and i in err_set:
                continue
            try:
                values[k] = function(argument_values[k])
            except Exception as exc:  # e.g. abs() of a str: raw TypeError
                call_errs.append((i, exc))
        if call_errs:
            errs = _merge_errs(errs, call_errs)
        return values, errs

    return run


def _constant_error_kernel(error: BaseException) -> VectorFn:
    def run(cols: Columns, sel: Selection):
        return [None] * len(sel), [(i, error) for i in sel]

    return run


# ----------------------------------------------------------------------
# Tri-state lowering (boolean contexts)
# ----------------------------------------------------------------------
def _lower_tri(expr: Expr, layout: RowLayout) -> TriFn:
    """Tri-state kernel for a logical context (AND/OR operand, NOT operand,
    CASE condition): non-boolean values become deferred ``_as_bool`` errors.
    """
    if isinstance(expr, BinaryOp):
        if expr.op == "and":
            return _lower_tri_and(expr, layout)
        if expr.op == "or":
            return _lower_tri_or(expr, layout)
        if expr.op in _COMPARISON_OPS:
            return _lower_tri_comparison(expr, layout)
    elif isinstance(expr, UnaryOp) and expr.op == "not":
        return _lower_tri_not(expr, layout)
    elif isinstance(expr, (Between, InList, Like, IsNull)):
        # These yield only bool/NULL, so the _as_bool check can't fire.
        return _tri_from_value(_lower_value(expr, layout), strict=False)
    return _tri_from_value(_lower_value(expr, layout), strict=True)


def _lower_tri_and(expr: BinaryOp, layout: RowLayout) -> TriFn:
    left = _lower_tri(expr.left, layout)
    right = _lower_tri(expr.right, layout)

    def run(cols: Columns, sel: Selection):
        left_true, left_unknown, errs = left(cols, sel)
        # Short-circuit narrowing: the right side evaluates only where the
        # left is true or unknown (interpreted AND stops on false).
        right_sel = _merge_sorted(left_true, left_unknown)
        if not right_sel:
            return [], [], errs
        right_true, right_unknown, right_errs = right(cols, right_sel)
        errs = _merge_errs(errs, right_errs)
        if not left_unknown:
            return right_true, right_unknown, errs
        left_true_set = set(left_true)
        right_true_set = set(right_true)
        right_unknown_set = set(right_unknown)
        right_err_set = {i for i, _ in right_errs}
        true_sel = [i for i in right_true if i in left_true_set]
        unknown_sel = []
        for i in right_sel:
            if i in right_err_set:
                continue
            if i in left_true_set:
                if i in right_unknown_set:
                    unknown_sel.append(i)  # T AND N = N
            elif i in right_true_set or i in right_unknown_set:
                unknown_sel.append(i)  # N AND T = N, N AND N = N
            # N AND F = F: drop
        return true_sel, unknown_sel, errs

    return run


def _lower_tri_or(expr: BinaryOp, layout: RowLayout) -> TriFn:
    left = _lower_tri(expr.left, layout)
    right = _lower_tri(expr.right, layout)

    def run(cols: Columns, sel: Selection):
        left_true, left_unknown, errs = left(cols, sel)
        # Short-circuit narrowing: the right side evaluates only where the
        # left is false or unknown (interpreted OR stops on true).
        skip = set(left_true)
        skip.update(i for i, _ in errs)
        right_sel = [i for i in sel if i not in skip] if skip else list(sel)
        if not right_sel:
            return left_true, [], errs
        right_true, right_unknown, right_errs = right(cols, right_sel)
        errs = _merge_errs(errs, right_errs)
        true_sel = _merge_sorted(left_true, right_true)
        left_unknown_set = set(left_unknown)
        right_true_set = set(right_true)
        right_unknown_set = set(right_unknown)
        right_err_set = {i for i, _ in right_errs}
        unknown_sel = []
        for i in right_sel:
            if i in right_err_set:
                continue
            if i in left_unknown_set:
                if i not in right_true_set:
                    unknown_sel.append(i)  # N OR F = N, N OR N = N
            elif i in right_unknown_set:
                unknown_sel.append(i)  # F OR N = N
        return true_sel, unknown_sel, errs

    return run


def _lower_tri_not(expr: UnaryOp, layout: RowLayout) -> TriFn:
    operand = _lower_tri(expr.operand, layout)

    def run(cols: Columns, sel: Selection):
        true_sel, unknown_sel, errs = operand(cols, sel)
        drop = set(true_sel)
        drop.update(unknown_sel)
        drop.update(i for i, _ in errs)
        # NOT false = true; NOT NULL stays NULL; errors stay errors.
        inverted = [i for i in sel if i not in drop]
        return inverted, unknown_sel, errs

    return run


def _lower_tri_comparison(expr: BinaryOp, layout: RowLayout) -> TriFn:
    compare = _COMPARISON_OPS[expr.op]
    op = expr.op
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        position = layout.resolve(expr.left.name)
        literal = expr.right.value
        if literal is None:
            # column <op> NULL is NULL for every non-erroring row.
            def run_null(cols: Columns, sel: Selection):
                return [], list(sel), []

            return run_null

        def run_column_literal(cols: Columns, sel: Selection):
            col = cols[position]
            true_sel: List[int] = []
            unknown_sel: List[int] = []
            errs: Errors = []
            append_true = true_sel.append
            for i in sel:
                lhs = col[i]
                if lhs is None:
                    unknown_sel.append(i)
                    continue
                try:
                    if compare(lhs, literal):
                        append_true(i)
                except TypeError:
                    errs.append(
                        (i, SqlExecutionError(f"cannot compare {lhs!r} {op} {literal!r}"))
                    )
            return true_sel, unknown_sel, errs

        return run_column_literal
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, ColumnRef):
        left_position = layout.resolve(expr.left.name)
        right_position = layout.resolve(expr.right.name)

        def run_column_column(cols: Columns, sel: Selection):
            left_col = cols[left_position]
            right_col = cols[right_position]
            true_sel: List[int] = []
            unknown_sel: List[int] = []
            errs: Errors = []
            append_true = true_sel.append
            for i in sel:
                lhs = left_col[i]
                rhs = right_col[i]
                if lhs is None or rhs is None:
                    unknown_sel.append(i)
                    continue
                try:
                    if compare(lhs, rhs):
                        append_true(i)
                except TypeError:
                    errs.append(
                        (i, SqlExecutionError(f"cannot compare {lhs!r} {op} {rhs!r}"))
                    )
            return true_sel, unknown_sel, errs

        return run_column_column
    return _tri_from_value(_lower_value_comparison(expr, layout), strict=False)
