"""Uncorrelated subquery resolution.

The engine supports ``expr IN (SELECT column FROM ...)`` for uncorrelated
subqueries by a classic rewrite: the planner executes the subquery first and
replaces the :class:`~repro.sqlengine.expr.InSubquery` node with a plain
:class:`~repro.sqlengine.expr.InList` of the resulting values.  The rewrite
happens once per outer statement, before planning, so nested occurrences in
WHERE and HAVING are all covered.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.errors import SqlExecutionError
from repro.sqlengine.expr import (
    Between,
    BinaryOp,
    CaseWhen,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)

# Executes a SelectStmt and returns its rows (duck-typed to avoid importing
# Database here).
ExecuteFn = Callable[[object], List[tuple]]


def resolve_subqueries(expr: Optional[Expr], execute: ExecuteFn) -> Optional[Expr]:
    """Replace every InSubquery under ``expr`` with a literal InList."""
    if expr is None:
        return None
    return _rewrite(expr, execute)


def _rewrite(expr: Expr, execute: ExecuteFn) -> Expr:
    if isinstance(expr, InSubquery):
        rows = execute(expr.subquery)
        if rows and len(rows[0]) != 1:
            raise SqlExecutionError(
                "an IN subquery must return exactly one column"
            )
        items = tuple(Literal(row[0]) for row in rows)
        operand = _rewrite(expr.operand, execute)
        if not items:
            # SQL defines x IN (empty set) as FALSE and NOT IN as TRUE,
            # regardless of x being NULL.
            return Literal(bool(expr.negated))
        return InList(operand, items, expr.negated)
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op, _rewrite(expr.left, execute), _rewrite(expr.right, execute)
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _rewrite(expr.operand, execute))
    if isinstance(expr, Between):
        return Between(
            _rewrite(expr.operand, execute),
            _rewrite(expr.low, execute),
            _rewrite(expr.high, execute),
            expr.negated,
        )
    if isinstance(expr, InList):
        return InList(
            _rewrite(expr.operand, execute),
            tuple(_rewrite(item, execute) for item in expr.items),
            expr.negated,
        )
    if isinstance(expr, Like):
        return Like(_rewrite(expr.operand, execute), expr.pattern, expr.negated)
    if isinstance(expr, IsNull):
        return IsNull(_rewrite(expr.operand, execute), expr.negated)
    if isinstance(expr, CaseWhen):
        return CaseWhen(
            tuple(
                (_rewrite(condition, execute), _rewrite(result, execute))
                for condition, result in expr.whens
            ),
            _rewrite(expr.default, execute) if expr.default else None,
        )
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(_rewrite(arg, execute) for arg in expr.args),
            star=expr.star,
            distinct=expr.distinct,
        )
    return expr  # Literal, ColumnRef


def contains_subquery(expr: Optional[Expr]) -> bool:
    """True if any InSubquery node appears under ``expr``."""
    if expr is None:
        return False
    found = False

    def probe(subquery_stmt):
        nonlocal found
        found = True
        return []

    # Reuse the rewriter's traversal with a probe that records occurrences;
    # the rewritten tree is discarded.
    _rewrite(expr, probe)
    return found
