"""An embedded relational engine, built from scratch.

Every BestPeer++ normal peer hosts "a dedicated MySQL database" and every
HadoopDB worker hosts a PostgreSQL instance.  This package is the
reproduction's stand-in for both: a small but real relational engine with

* a typed catalogue (:mod:`~repro.sqlengine.schema`),
* row storage with primary and secondary indexes
  (:mod:`~repro.sqlengine.table`, :mod:`~repro.sqlengine.indexes`),
* an expression language (:mod:`~repro.sqlengine.expr`),
* a SQL parser for the dialect the paper's workloads need
  (:mod:`~repro.sqlengine.parser`),
* a rule-based planner with index selection (:mod:`~repro.sqlengine.planner`),
* a pull-based executor with hash joins, aggregation, sorting
  (:mod:`~repro.sqlengine.executor`),
* a vectorized executor running batch kernels over column-major storage
  (:mod:`~repro.sqlengine.vectorize`, :mod:`~repro.sqlengine.vexecutor`), and
* per-table statistics feeding histograms and the cost model
  (:mod:`~repro.sqlengine.stats`).

The public entry point is :class:`~repro.sqlengine.database.Database`.
"""

from repro.sqlengine.types import ColumnType
from repro.sqlengine.schema import Column, TableSchema
from repro.sqlengine.table import MemTable, Table
from repro.sqlengine.database import EXECUTION_MODES, Database, QueryResult
from repro.sqlengine.parser import parse
from repro.sqlengine.stats import ColumnStats, TableStats
from repro.sqlengine.vexecutor import VectorizedExecutor

__all__ = [
    "ColumnType",
    "Column",
    "TableSchema",
    "Table",
    "MemTable",
    "Database",
    "EXECUTION_MODES",
    "QueryResult",
    "VectorizedExecutor",
    "parse",
    "ColumnStats",
    "TableStats",
]
