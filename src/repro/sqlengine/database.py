"""The public database facade.

One :class:`Database` instance plays the role the local MySQL server plays on
a BestPeer++ normal peer (or PostgreSQL on a HadoopDB worker): it owns a
catalogue of tables and executes SQL text.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.subquery import contains_subquery, resolve_subqueries
from repro.sqlengine.executor import ExecStats, Executor
from repro.sqlengine.expr import RowLayout
from repro.sqlengine.parser import (
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    InsertStmt,
    SelectStmt,
    UpdateStmt,
    parse,
)
from repro.sqlengine.planner import Planner, explain_plan
from repro.sqlengine.schema import TableSchema
from repro.sqlengine.stats import TableStats, collect_table_stats
from repro.sqlengine.table import Table
from repro.sqlengine.types import value_byte_size


class QueryResult:
    """Rows plus metadata returned by :meth:`Database.execute`."""

    def __init__(
        self,
        columns: Sequence[str],
        rows: List[Tuple[object, ...]],
        stats: Optional[ExecStats] = None,
        rowcount: int = 0,
    ) -> None:
        self.columns = [column.rsplit(".", 1)[-1] for column in columns]
        self.qualified_columns = list(columns)
        self.rows = rows
        self.stats = stats or ExecStats()
        # For INSERT/UPDATE/DELETE: the number of affected rows.
        self.rowcount = rowcount if rowcount else len(rows)

    @property
    def byte_size(self) -> int:
        """Approximate wire size of the result set."""
        return sum(
            value_byte_size(value) for row in self.rows for value in row
        )

    def scalar(self) -> object:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise SqlExecutionError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} rows"
            )
        return self.rows[0][0]

    def column(self, name: str) -> List[object]:
        """All values of one output column."""
        lowered = name.lower()
        try:
            position = self.columns.index(lowered)
        except ValueError:
            raise SqlExecutionError(f"no output column {name!r}") from None
        return [row[position] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"QueryResult(columns={self.columns}, rows={len(self.rows)})"


class Database:
    """An embedded relational database with a SQL interface."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}

    # ------------------------------------------------------------------
    # Catalogue
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise SqlCatalogError(f"table already exists: {schema.name!r}")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        lowered = name.lower()
        if lowered not in self._tables:
            if if_exists:
                return
            raise SqlCatalogError(f"no such table: {name!r}")
        del self._tables[lowered]

    def table(self, name: str) -> Table:
        lowered = name.lower()
        table = self._tables.get(lowered)
        if table is None:
            raise SqlCatalogError(f"no such table: {name!r}")
        return table

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def table_stats(self, name: str) -> TableStats:
        return collect_table_stats(self.table(name))

    @property
    def total_bytes(self) -> int:
        """Approximate size of all stored data (feeds storage metrics)."""
        return sum(table.byte_size for table in self._tables.values())

    # ------------------------------------------------------------------
    # SQL execution
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> QueryResult:
        """Parse and run one SQL statement."""
        statement = parse(sql)
        if isinstance(statement, SelectStmt):
            return self.execute_select(statement)
        if isinstance(statement, InsertStmt):
            return self._execute_insert(statement)
        if isinstance(statement, CreateTableStmt):
            self.create_table(
                TableSchema(statement.name, statement.columns, statement.primary_key)
            )
            return QueryResult([], [])
        if isinstance(statement, CreateIndexStmt):
            self.table(statement.table).create_index(
                statement.name, statement.column, statement.unique
            )
            return QueryResult([], [])
        if isinstance(statement, UpdateStmt):
            return self._execute_update(statement)
        if isinstance(statement, DeleteStmt):
            return self._execute_delete(statement)
        if isinstance(statement, DropTableStmt):
            self.drop_table(statement.name, statement.if_exists)
            return QueryResult([], [])
        raise SqlExecutionError(f"unsupported statement: {type(statement).__name__}")

    def explain(self, sql: str) -> str:
        """The physical plan for a SELECT, as indented text."""
        statement = parse(sql)
        if not isinstance(statement, SelectStmt):
            raise SqlExecutionError("EXPLAIN supports SELECT statements only")
        statement = self._resolve_subqueries(statement)
        plan = Planner(self._tables).plan(statement)
        return explain_plan(plan)

    def execute_select(self, statement: SelectStmt) -> QueryResult:
        statement = self._resolve_subqueries(statement)
        plan = Planner(self._tables).plan(statement)
        layout, rows, stats = Executor(self._tables).execute(plan)
        return QueryResult(layout.columns, rows, stats)

    def _resolve_subqueries(self, statement: SelectStmt) -> SelectStmt:
        """Execute uncorrelated IN-subqueries and inline their results."""
        if not contains_subquery(statement.where) and not contains_subquery(
            statement.having
        ):
            return statement

        def run(sub_statement) -> list:
            return list(self.execute_select(sub_statement).rows)

        return dataclasses.replace(
            statement,
            where=resolve_subqueries(statement.where, run),
            having=resolve_subqueries(statement.having, run),
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _execute_insert(self, statement: InsertStmt) -> QueryResult:
        table = self.table(statement.table)
        if statement.columns:
            positions = [
                table.schema.column_index(column) for column in statement.columns
            ]
            width = len(table.schema.columns)
            expanded = []
            for row in statement.rows:
                if len(row) != len(positions):
                    raise SqlCatalogError(
                        f"INSERT names {len(positions)} columns but supplies "
                        f"{len(row)} values"
                    )
                values: List[object] = [None] * width
                for position, value in zip(positions, row):
                    values[position] = value
                expanded.append(tuple(values))
            rows = expanded
        else:
            rows = list(statement.rows)
        table.insert_many(rows)
        return QueryResult([], [], rowcount=len(rows))

    def _execute_update(self, statement: UpdateStmt) -> QueryResult:
        table = self.table(statement.table)
        layout = RowLayout(
            [f"{table.schema.name}.{column}" for column in table.schema.column_names]
        )
        assignments = [
            (table.schema.column_index(column), expr)
            for column, expr in statement.assignments
        ]
        updated = 0
        for row_id in list(table.row_ids()):
            row = table.row_by_id(row_id)
            if statement.where is not None:
                if statement.where.evaluate(row, layout) is not True:
                    continue
            values = list(row)
            for position, expr in assignments:
                values[position] = expr.evaluate(row, layout)
            table.update_row(row_id, values)
            updated += 1
        return QueryResult([], [], rowcount=updated)

    def _execute_delete(self, statement: DeleteStmt) -> QueryResult:
        table = self.table(statement.table)
        layout = RowLayout(
            [f"{table.schema.name}.{column}" for column in table.schema.column_names]
        )
        if statement.where is None:
            deleted = len(table)
            table.truncate()
        else:
            where = statement.where
            deleted = table.delete_where(
                lambda row: where.evaluate(row, layout) is True
            )
        return QueryResult([], [], rowcount=deleted)
