"""The public database facade.

One :class:`Database` instance plays the role the local MySQL server plays on
a BestPeer++ normal peer (or PostgreSQL on a HadoopDB worker): it owns a
catalogue of tables and executes SQL text.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import collections

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.compile import (
    compile_evaluator,
    compile_predicate,
    interpreted_evaluator,
)
from repro.sqlengine.subquery import contains_subquery, resolve_subqueries
from repro.sqlengine.executor import ExecStats, Executor
from repro.sqlengine.expr import RowLayout
from repro.sqlengine.parser import (
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    InsertStmt,
    SelectStmt,
    UpdateStmt,
    parse,
)
from repro.sqlengine.planner import Planner, explain_plan, plan_tables
from repro.sqlengine.schema import TableSchema
from repro.sqlengine.stats import TableStats, collect_table_stats
from repro.sqlengine.table import Table
from repro.sqlengine.types import value_byte_size
from repro.sqlengine.vexecutor import VectorizedExecutor

#: Supported expression-evaluation strategies, slowest to fastest.
EXECUTION_MODES = ("interpreted", "compiled", "vectorized")


class QueryResult:
    """Rows plus metadata returned by :meth:`Database.execute`."""

    def __init__(
        self,
        columns: Sequence[str],
        rows: List[Tuple[object, ...]],
        stats: Optional[ExecStats] = None,
        rowcount: int = 0,
    ) -> None:
        self.columns = [column.rsplit(".", 1)[-1] for column in columns]
        self.qualified_columns = list(columns)
        self.rows = rows
        self.stats = stats or ExecStats()
        # For INSERT/UPDATE/DELETE: the number of affected rows.
        self.rowcount = rowcount if rowcount else len(rows)
        self._byte_size: Optional[int] = None

    @property
    def byte_size(self) -> int:
        """Approximate wire size of the result set (computed once, cached).

        Anything mutating ``rows`` in place must call
        :meth:`invalidate_byte_size`.
        """
        if self._byte_size is None:
            self._byte_size = sum(
                value_byte_size(value) for row in self.rows for value in row
            )
        return self._byte_size

    def invalidate_byte_size(self) -> None:
        """Drop the cached wire size after an in-place ``rows`` rewrite."""
        self._byte_size = None

    def scalar(self) -> object:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise SqlExecutionError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} rows"
            )
        return self.rows[0][0]

    def column(self, name: str) -> List[object]:
        """All values of one output column."""
        lowered = name.lower()
        try:
            position = self.columns.index(lowered)
        except ValueError:
            raise SqlExecutionError(f"no output column {name!r}") from None
        return [row[position] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"QueryResult(columns={self.columns}, rows={len(self.rows)})"


@dataclasses.dataclass(frozen=True)
class PreparedSelect:
    """A parsed-and-planned SELECT, shareable across identically-schemed peers.

    BestPeer++ broadcasts the *same* subquery to every data owner; preparing
    it once and shipping the plan replaces N parse+plan passes with one.
    ``tables`` lists the base tables the plan reads so the executing peer can
    pre-check its catalogue (preserving broadcast skip-if-absent semantics).
    """

    sql: str
    plan: object
    tables: Tuple[str, ...]


class Database:
    """An embedded relational database with a SQL interface.

    Repeated statements hit an LRU parse+plan cache keyed by the execution
    mode, the SQL text, and the catalogue version (every table's mutation
    counter), so any DDL/insert/delete invalidates affected entries without
    explicit hooks.  ``execution_mode`` selects one of
    :data:`EXECUTION_MODES`: ``"interpreted"`` walks expression trees per
    row (the reference), ``"compiled"`` runs closure-compiled evaluators per
    row, and ``"vectorized"`` (the default) runs batch kernels over
    column-major storage.  All three must produce identical rows, stats, and
    errors.  ``use_compiled`` survives as a compatibility alias covering the
    two row-at-a-time modes.
    """

    #: Default maximum number of cached plans per database.
    PLAN_CACHE_SIZE = 128

    def __init__(
        self,
        name: str = "db",
        use_compiled: Optional[bool] = None,
        plan_cache_size: int = PLAN_CACHE_SIZE,
        execution_mode: Optional[str] = None,
        batch_size: int = VectorizedExecutor.DEFAULT_BATCH_SIZE,
    ) -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}
        if use_compiled is not None and execution_mode is not None:
            raise SqlExecutionError(
                "pass either use_compiled or execution_mode, not both"
            )
        if execution_mode is not None:
            self.execution_mode = execution_mode
        elif use_compiled is not None:
            self._execution_mode = "compiled" if use_compiled else "interpreted"
        else:
            self._execution_mode = "vectorized"
        self._batch_size = batch_size
        self._plan_cache: "collections.OrderedDict[Tuple[str, str], Tuple[Tuple[Tuple[str, int], ...], object]]" = (
            collections.OrderedDict()
        )
        self._plan_cache_size = plan_cache_size
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    @property
    def execution_mode(self) -> str:
        return self._execution_mode

    @execution_mode.setter
    def execution_mode(self, mode: str) -> None:
        if mode not in EXECUTION_MODES:
            raise SqlExecutionError(
                f"unknown execution mode {mode!r}; expected one of "
                f"{', '.join(EXECUTION_MODES)}"
            )
        self._execution_mode = mode

    @property
    def use_compiled(self) -> bool:
        """Compatibility view: is any compiled evaluation strategy active?"""
        return self._execution_mode != "interpreted"

    @use_compiled.setter
    def use_compiled(self, value: bool) -> None:
        self._execution_mode = "compiled" if value else "interpreted"

    # ------------------------------------------------------------------
    # Catalogue
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise SqlCatalogError(f"table already exists: {schema.name!r}")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        lowered = name.lower()
        if lowered not in self._tables:
            if if_exists:
                return
            raise SqlCatalogError(f"no such table: {name!r}")
        del self._tables[lowered]

    def table(self, name: str) -> Table:
        lowered = name.lower()
        table = self._tables.get(lowered)
        if table is None:
            raise SqlCatalogError(f"no such table: {name!r}")
        return table

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def table_stats(self, name: str) -> TableStats:
        return collect_table_stats(self.table(name))

    @property
    def total_bytes(self) -> int:
        """Approximate size of all stored data (feeds storage metrics)."""
        return sum(table.byte_size for table in self._tables.values())

    # ------------------------------------------------------------------
    # SQL execution
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> QueryResult:
        """Parse and run one SQL statement."""
        plan = self._cached_plan(sql)
        if plan is not None:
            self.plan_cache_hits += 1
            return self._run_plan(plan)
        statement = parse(sql)
        if isinstance(statement, SelectStmt):
            self.plan_cache_misses += 1
            return self.execute_select(statement, cache_key=sql)
        if isinstance(statement, InsertStmt):
            return self._execute_insert(statement)
        if isinstance(statement, CreateTableStmt):
            self.create_table(
                TableSchema(statement.name, statement.columns, statement.primary_key)
            )
            return QueryResult([], [])
        if isinstance(statement, CreateIndexStmt):
            self.table(statement.table).create_index(
                statement.name, statement.column, statement.unique
            )
            return QueryResult([], [])
        if isinstance(statement, UpdateStmt):
            return self._execute_update(statement)
        if isinstance(statement, DeleteStmt):
            return self._execute_delete(statement)
        if isinstance(statement, DropTableStmt):
            self.drop_table(statement.name, statement.if_exists)
            return QueryResult([], [])
        raise SqlExecutionError(f"unsupported statement: {type(statement).__name__}")

    def explain(self, sql: str) -> str:
        """The physical plan for a SELECT, as indented text."""
        statement = parse(sql)
        if not isinstance(statement, SelectStmt):
            raise SqlExecutionError("EXPLAIN supports SELECT statements only")
        statement = self._resolve_subqueries(statement)
        plan = Planner(self._tables).plan(statement)
        return explain_plan(plan)

    def execute_select(
        self, statement: SelectStmt, cache_key: Optional[str] = None
    ) -> QueryResult:
        statement = self._resolve_subqueries(statement)
        plan = Planner(self._tables).plan(statement)
        if cache_key is not None:
            # Safe even for resolved subqueries: the cache key includes
            # every table's data version, so new data re-plans.
            self._store_plan(cache_key, plan)
        return self._run_plan(plan)

    def _run_plan(self, plan: object) -> QueryResult:
        if self._execution_mode == "vectorized":
            layout, rows, stats = VectorizedExecutor(
                self._tables, batch_size=self._batch_size
            ).execute(plan)
        else:
            layout, rows, stats = Executor(
                self._tables, use_compiled=self._execution_mode == "compiled"
            ).execute(plan)
        return QueryResult(layout.columns, rows, stats)

    # ------------------------------------------------------------------
    # Plan cache & prepared statements
    # ------------------------------------------------------------------
    def _catalog_state(self) -> Tuple[Tuple[str, int], ...]:
        """The cache-keying fingerprint: every table's mutation counter."""
        return tuple(
            (name, self._tables[name].version) for name in sorted(self._tables)
        )

    def _cached_plan(self, sql: str) -> Optional[object]:
        # Plans themselves are mode-independent, but keying on the mode
        # keeps per-mode hit/miss accounting honest when a benchmark flips
        # modes between runs of the same statement.
        cache_key = (self._execution_mode, sql)
        entry = self._plan_cache.get(cache_key)
        if entry is None:
            return None
        state, plan = entry
        if state != self._catalog_state():
            del self._plan_cache[cache_key]
            return None
        self._plan_cache.move_to_end(cache_key)
        return plan

    def _store_plan(self, sql: str, plan: object) -> None:
        cache_key = (self._execution_mode, sql)
        self._plan_cache[cache_key] = (self._catalog_state(), plan)
        self._plan_cache.move_to_end(cache_key)
        while len(self._plan_cache) > self._plan_cache_size:
            self._plan_cache.popitem(last=False)

    def clear_plan_cache(self) -> None:
        self._plan_cache.clear()

    @property
    def plan_cache_len(self) -> int:
        return len(self._plan_cache)

    def prepare(self, sql: str) -> PreparedSelect:
        """Parse and plan a SELECT once, for reuse across identical catalogues.

        Statements with IN-subqueries are rejected: their plans inline
        locally-resolved results, which are not shareable across peers.
        """
        statement = parse(sql)
        if not isinstance(statement, SelectStmt):
            raise SqlExecutionError("prepare supports SELECT statements only")
        if contains_subquery(statement.where) or contains_subquery(
            statement.having
        ):
            raise SqlExecutionError(
                "cannot prepare a statement containing subqueries"
            )
        self.plan_cache_misses += 1
        plan = Planner(self._tables).plan(statement)
        return PreparedSelect(sql, plan, plan_tables(plan))

    def execute_prepared(self, prepared: PreparedSelect) -> QueryResult:
        """Run a plan prepared on an identically-schemed peer.

        Missing tables raise :class:`SqlCatalogError` so broadcast callers
        keep their skip-if-absent semantics.  Any execution-time mismatch
        (e.g. the plan probes an index this peer lacks) falls back to a
        fresh local parse+plan of the original SQL.
        """
        for name in prepared.tables:
            if name not in self._tables:
                raise SqlCatalogError(f"no such table: {name!r}")
        self.plan_cache_hits += 1
        try:
            return self._run_plan(prepared.plan)
        except SqlExecutionError:
            return self.execute(prepared.sql)

    def _resolve_subqueries(self, statement: SelectStmt) -> SelectStmt:
        """Execute uncorrelated IN-subqueries and inline their results."""
        if not contains_subquery(statement.where) and not contains_subquery(
            statement.having
        ):
            return statement

        def run(sub_statement) -> list:
            return list(self.execute_select(sub_statement).rows)

        return dataclasses.replace(
            statement,
            where=resolve_subqueries(statement.where, run),
            having=resolve_subqueries(statement.having, run),
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _execute_insert(self, statement: InsertStmt) -> QueryResult:
        table = self.table(statement.table)
        if statement.columns:
            positions = [
                table.schema.column_index(column) for column in statement.columns
            ]
            width = len(table.schema.columns)
            expanded = []
            for row in statement.rows:
                if len(row) != len(positions):
                    raise SqlCatalogError(
                        f"INSERT names {len(positions)} columns but supplies "
                        f"{len(row)} values"
                    )
                values: List[object] = [None] * width
                for position, value in zip(positions, row):
                    values[position] = value
                expanded.append(tuple(values))
            rows = expanded
        else:
            rows = list(statement.rows)
        table.insert_many(rows)
        return QueryResult([], [], rowcount=len(rows))

    def _execute_update(self, statement: UpdateStmt) -> QueryResult:
        table = self.table(statement.table)
        layout = RowLayout(
            [f"{table.schema.name}.{column}" for column in table.schema.column_names]
        )
        assignments = [
            (table.schema.column_index(column), self._evaluator(expr, layout))
            for column, expr in statement.assignments
        ]
        matches = (
            None
            if statement.where is None
            else self._predicate(statement.where, layout)
        )
        updated = 0
        for row_id in list(table.row_ids()):
            row = table.row_by_id(row_id)
            if matches is not None and not matches(row):
                continue
            values = list(row)
            for position, evaluate in assignments:
                values[position] = evaluate(row)
            table.update_row(row_id, values)
            updated += 1
        return QueryResult([], [], rowcount=updated)

    def _evaluator(self, expr, layout: RowLayout):
        if self.use_compiled:
            return compile_evaluator(expr, layout)
        return interpreted_evaluator(expr, layout)

    def _predicate(self, expr, layout: RowLayout):
        if self.use_compiled:
            return compile_predicate(expr, layout)
        return lambda row: expr.evaluate(row, layout) is True

    def _execute_delete(self, statement: DeleteStmt) -> QueryResult:
        table = self.table(statement.table)
        layout = RowLayout(
            [f"{table.schema.name}.{column}" for column in table.schema.column_names]
        )
        if statement.where is None:
            deleted = len(table)
            table.truncate()
        else:
            deleted = table.delete_where(self._predicate(statement.where, layout))
        return QueryResult([], [], rowcount=deleted)
