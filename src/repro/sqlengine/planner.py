"""Rule-based query planner.

Translates a parsed :class:`~repro.sqlengine.parser.SelectStmt` into a tree
of logical plan nodes:

* predicates are split into conjuncts and pushed down to the deepest scan
  that can evaluate them,
* an indexable conjunct (``col = literal``, ``col <op> literal`` or
  ``col BETWEEN a AND b`` over an indexed column) turns a scan into an index
  access path,
* equi-join conditions become hash joins; everything else falls back to a
  nested-loop join,
* aggregates in the projection/HAVING introduce a group-by node.

The same planner serves the BestPeer++ normal peers and the HadoopDB
workers, which keeps the benchmark comparison apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.expr import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    find_aggregates,
)
from repro.sqlengine.parser import (
    Join,
    OrderItem,
    SelectItem,
    SelectStmt,
    TableRef,
)

_COMPARISONS = {"=", "<", "<=", ">", ">="}


# ----------------------------------------------------------------------
# Plan nodes
# ----------------------------------------------------------------------
@dataclass
class IndexAccess:
    """An index access path chosen for a scan."""

    column: str
    # Equality probe...
    eq_value: Optional[object] = None
    # ...or range bounds (either side may be open).
    low: Optional[object] = None
    high: Optional[object] = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    @property
    def is_equality(self) -> bool:
        return self.eq_value is not None


@dataclass
class ScanNode:
    """Scan a base table under a binding (alias) name."""

    table: str
    binding: str
    predicate: Optional[Expr] = None
    index_access: Optional[IndexAccess] = None


@dataclass
class JoinNode:
    left: object
    right: object
    condition: Optional[Expr]
    kind: str = "inner"  # "inner" | "left"
    # Filled by the planner for equi-joins: pairs of (left column, right column).
    equi_keys: Tuple[Tuple[str, str], ...] = ()


@dataclass
class FilterNode:
    child: object
    predicate: Expr


@dataclass
class GroupByNode:
    child: object
    group_exprs: Tuple[Expr, ...]
    aggregates: Tuple[FuncCall, ...]


@dataclass
class ProjectNode:
    child: object
    items: Tuple[SelectItem, ...]


@dataclass
class DistinctNode:
    child: object


@dataclass
class SortNode:
    child: object
    order_items: Tuple[OrderItem, ...]


@dataclass
class LimitNode:
    child: object
    limit: int


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class Planner:
    """Plans SELECT statements against a catalogue of tables.

    ``catalog`` maps lowercase table names to objects exposing ``schema``
    (a :class:`~repro.sqlengine.schema.TableSchema`) and ``index_on(column)``
    — i.e., :class:`~repro.sqlengine.table.Table` instances.
    """

    def __init__(self, catalog: Dict[str, object]) -> None:
        self._catalog = catalog

    def plan(self, stmt: SelectStmt) -> object:
        bindings = self._resolve_bindings(stmt)
        conjuncts = _split_conjuncts(stmt.where)

        # Partition WHERE conjuncts by which bindings they reference.
        scan_predicates: Dict[str, List[Expr]] = {name: [] for name in bindings}
        join_conjuncts: List[Expr] = []
        for conjunct in conjuncts:
            touched = self._bindings_of(conjunct, bindings)
            if len(touched) == 1:
                scan_predicates[next(iter(touched))].append(conjunct)
            else:
                join_conjuncts.append(conjunct)

        # Build scans (with index selection) for every binding.
        scans: Dict[str, object] = {}
        for name, table_name in bindings.items():
            scans[name] = self._build_scan(
                table_name, name, scan_predicates[name]
            )

        # Left-deep join tree in FROM order; comma-join conditions are the
        # multi-binding conjuncts that become applicable once both sides are
        # in the tree.
        plan, joined = self._join_from_tables(stmt, scans, bindings, join_conjuncts)

        # Any remaining multi-binding conjunct (e.g. referencing three
        # bindings) is applied as a filter above the joins.
        leftovers = [
            conjunct for conjunct in join_conjuncts if conjunct not in joined
        ]
        for conjunct in leftovers:
            plan = FilterNode(plan, conjunct)

        # Aggregation.
        aggregates = self._collect_aggregates(stmt)
        if stmt.group_by or aggregates:
            plan = GroupByNode(plan, tuple(stmt.group_by), tuple(aggregates))
            if stmt.having is not None:
                plan = FilterNode(plan, stmt.having)
        elif stmt.having is not None:
            raise SqlExecutionError("HAVING requires GROUP BY or aggregates")

        # ORDER BY may reference projection aliases (sort above the
        # projection) or columns the projection drops (sort below it).
        sort_below_project = stmt.order_by and not self._order_resolvable(stmt)
        if sort_below_project:
            plan = SortNode(plan, stmt.order_by)

        plan = ProjectNode(plan, stmt.items)

        if stmt.distinct:
            plan = DistinctNode(plan)

        if stmt.order_by and not sort_below_project:
            plan = SortNode(plan, stmt.order_by)

        if stmt.limit is not None:
            plan = LimitNode(plan, stmt.limit)

        return plan

    # ------------------------------------------------------------------
    # Binding resolution
    # ------------------------------------------------------------------
    def _resolve_bindings(self, stmt: SelectStmt) -> Dict[str, str]:
        """Map binding (alias) name -> table name, validating the catalogue."""
        bindings: Dict[str, str] = {}
        refs = list(stmt.tables) + [join.table for join in stmt.joins]
        for ref in refs:
            if ref.table not in self._catalog:
                raise SqlCatalogError(f"unknown table: {ref.table!r}")
            if ref.binding in bindings:
                raise SqlCatalogError(f"duplicate table binding: {ref.binding!r}")
            bindings[ref.binding] = ref.table
        return bindings

    def _bindings_of(self, expr: Expr, bindings: Dict[str, str]) -> set:
        """Which bindings an expression references."""
        touched = set()
        for name in expr.referenced_columns():
            lowered = name.lower()
            if "." in lowered:
                qualifier = lowered.split(".", 1)[0]
                if qualifier in bindings:
                    touched.add(qualifier)
                    continue
            bare = lowered.rsplit(".", 1)[-1]
            owners = [
                binding
                for binding, table in bindings.items()
                if self._catalog[table].schema.has_column(bare)
            ]
            if len(owners) == 1:
                touched.add(owners[0])
            elif len(owners) > 1:
                raise SqlExecutionError(f"ambiguous column in predicate: {name!r}")
            else:
                raise SqlCatalogError(f"unknown column in predicate: {name!r}")
        return touched

    # ------------------------------------------------------------------
    # Scan construction with index selection
    # ------------------------------------------------------------------
    def _build_scan(
        self, table_name: str, binding: str, predicates: List[Expr]
    ) -> ScanNode:
        table = self._catalog[table_name]
        access: Optional[IndexAccess] = None
        for predicate in predicates:
            access = self._match_index(table, predicate)
            if access is not None:
                break
        residual = _combine_conjuncts(predicates)
        return ScanNode(
            table=table_name,
            binding=binding,
            predicate=residual,
            index_access=access,
        )

    def _match_index(self, table: object, predicate: Expr) -> Optional[IndexAccess]:
        """Turn ``col <op> literal`` / ``col BETWEEN a AND b`` into index access."""
        if isinstance(predicate, Between) and not predicate.negated:
            column = _bare_column(predicate.operand)
            if (
                column is not None
                and isinstance(predicate.low, Literal)
                and isinstance(predicate.high, Literal)
                and table.index_on(column) is not None
            ):
                return IndexAccess(
                    column=column,
                    low=predicate.low.value,
                    high=predicate.high.value,
                )
            return None
        if not isinstance(predicate, BinaryOp) or predicate.op not in _COMPARISONS:
            return None
        column, literal, op = _normalize_comparison(predicate)
        if column is None or table.index_on(column) is None:
            return None
        if op == "=":
            return IndexAccess(column=column, eq_value=literal)
        if op == "<":
            return IndexAccess(column=column, high=literal, high_inclusive=False)
        if op == "<=":
            return IndexAccess(column=column, high=literal)
        if op == ">":
            return IndexAccess(column=column, low=literal, low_inclusive=False)
        return IndexAccess(column=column, low=literal)

    # ------------------------------------------------------------------
    # Join tree
    # ------------------------------------------------------------------
    def _join_from_tables(
        self,
        stmt: SelectStmt,
        scans: Dict[str, object],
        bindings: Dict[str, str],
        join_conjuncts: List[Expr],
    ) -> Tuple[object, List[Expr]]:
        order = [ref.binding for ref in stmt.tables]
        plan = scans[order[0]]
        in_tree = {order[0]}
        used: List[Expr] = []

        def applicable_conjuncts() -> List[Expr]:
            ready = []
            for conjunct in join_conjuncts:
                if conjunct in used:
                    continue
                if self._bindings_of(conjunct, bindings) <= in_tree:
                    ready.append(conjunct)
            return ready

        # Comma-joined tables: join in FROM order using whatever WHERE
        # conjuncts become applicable.
        for binding in order[1:]:
            in_tree.add(binding)
            ready = applicable_conjuncts()
            used.extend(ready)
            condition = _combine_conjuncts(ready)
            plan = self._make_join(plan, scans[binding], condition, "inner", bindings)

        # Explicit JOIN ... ON clauses, in statement order.
        for join in stmt.joins:
            in_tree.add(join.table.binding)
            plan = self._make_join(
                plan, scans[join.table.binding], join.condition, join.kind, bindings
            )
            ready = applicable_conjuncts()
            used.extend(ready)
            for conjunct in ready:
                plan = FilterNode(plan, conjunct)

        return plan, used

    def _make_join(
        self,
        left: object,
        right: object,
        condition: Optional[Expr],
        kind: str,
        bindings: Dict[str, str],
    ) -> JoinNode:
        right_binding = right.binding if isinstance(right, ScanNode) else None
        equi_keys: List[Tuple[str, str]] = []
        residual: List[Expr] = []
        for conjunct in _split_conjuncts(condition):
            pair = self._extract_equi_pair(conjunct, right_binding, bindings)
            if pair is not None:
                equi_keys.append(pair)
            else:
                residual.append(conjunct)
        node = JoinNode(
            left=left,
            right=right,
            condition=_combine_conjuncts(residual),
            kind=kind,
            equi_keys=tuple(equi_keys),
        )
        return node

    def _extract_equi_pair(
        self,
        conjunct: Expr,
        right_binding: Optional[str],
        bindings: Dict[str, str],
    ) -> Optional[Tuple[str, str]]:
        """``a.x = b.y`` with exactly one side bound to the right input."""
        if right_binding is None:
            return None
        if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
            return None
        if not isinstance(conjunct.left, ColumnRef) or not isinstance(
            conjunct.right, ColumnRef
        ):
            return None
        left_side = self._bindings_of(conjunct.left, bindings)
        right_side = self._bindings_of(conjunct.right, bindings)
        if left_side == {right_binding} and right_binding not in right_side:
            return (conjunct.right.name, conjunct.left.name)
        if right_side == {right_binding} and right_binding not in left_side:
            return (conjunct.left.name, conjunct.right.name)
        return None

    def _order_resolvable(self, stmt: SelectStmt) -> bool:
        """True if every ORDER BY expression resolves on the projection output."""
        output_names = set()
        for item in stmt.items:
            if item.is_star:
                # A star projection keeps every input column; anything the
                # sort references will still be present.
                return True
            output_names.add(item.output_name().lower())
        for order_item in stmt.order_by:
            for name in order_item.expr.referenced_columns():
                bare = name.lower().rsplit(".", 1)[-1]
                if bare not in output_names:
                    return False
        return True

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def _collect_aggregates(self, stmt: SelectStmt) -> List[FuncCall]:
        aggregates: List[FuncCall] = []
        seen = set()
        sources: List[Expr] = [
            item.expr for item in stmt.items if item.expr is not None
        ]
        if stmt.having is not None:
            sources.append(stmt.having)
        for expr in sources:
            for aggregate in find_aggregates(expr):
                key = aggregate.to_sql().lower()
                if key not in seen:
                    seen.add(key)
                    aggregates.append(aggregate)
        return aggregates


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _split_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _combine_conjuncts(conjuncts: Sequence[Expr]) -> Optional[Expr]:
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = BinaryOp("and", combined, conjunct)
    return combined


def plan_tables(plan: object) -> Tuple[str, ...]:
    """All base table names a plan reads, in scan order.

    Used by prepared-statement execution to validate that a plan built on
    one peer is still applicable on another (same catalogue entries).
    """
    names: List[str] = []

    def walk(node: object) -> None:
        if isinstance(node, ScanNode):
            names.append(node.table)
        elif isinstance(node, JoinNode):
            walk(node.left)
            walk(node.right)
        elif hasattr(node, "child"):
            walk(node.child)

    walk(plan)
    return tuple(names)


def explain_plan(plan: object, indent: int = 0) -> str:
    """Render a plan tree as indented text (the engine's EXPLAIN output)."""
    pad = "  " * indent
    if isinstance(plan, ScanNode):
        if plan.index_access is not None:
            access = plan.index_access
            if access.is_equality:
                detail = f"index eq {access.column} = {access.eq_value!r}"
            else:
                low = "-inf" if access.low is None else repr(access.low)
                high = "+inf" if access.high is None else repr(access.high)
                detail = f"index range {access.column} in [{low}, {high}]"
        else:
            detail = "full scan"
        line = f"{pad}Scan {plan.table} AS {plan.binding} ({detail})"
        if plan.predicate is not None:
            line += f" filter {plan.predicate.to_sql()}"
        return line
    if isinstance(plan, JoinNode):
        if plan.equi_keys:
            keys = ", ".join(f"{l} = {r}" for l, r in plan.equi_keys)
            header = f"{pad}HashJoin [{plan.kind}] on {keys}"
        else:
            header = f"{pad}NestedLoopJoin [{plan.kind}]"
        if plan.condition is not None:
            header += f" residual {plan.condition.to_sql()}"
        return "\n".join(
            [
                header,
                explain_plan(plan.left, indent + 1),
                explain_plan(plan.right, indent + 1),
            ]
        )
    if isinstance(plan, FilterNode):
        return "\n".join(
            [
                f"{pad}Filter {plan.predicate.to_sql()}",
                explain_plan(plan.child, indent + 1),
            ]
        )
    if isinstance(plan, GroupByNode):
        groups = ", ".join(e.to_sql() for e in plan.group_exprs) or "<all>"
        aggs = ", ".join(a.to_sql() for a in plan.aggregates)
        return "\n".join(
            [
                f"{pad}GroupBy [{groups}] computing [{aggs}]",
                explain_plan(plan.child, indent + 1),
            ]
        )
    if isinstance(plan, ProjectNode):
        items = ", ".join(item.output_name() for item in plan.items)
        return "\n".join(
            [f"{pad}Project [{items}]", explain_plan(plan.child, indent + 1)]
        )
    if isinstance(plan, DistinctNode):
        return "\n".join(
            [f"{pad}Distinct", explain_plan(plan.child, indent + 1)]
        )
    if isinstance(plan, SortNode):
        keys = ", ".join(
            f"{item.expr.to_sql()} {'ASC' if item.ascending else 'DESC'}"
            for item in plan.order_items
        )
        return "\n".join(
            [f"{pad}Sort [{keys}]", explain_plan(plan.child, indent + 1)]
        )
    if isinstance(plan, LimitNode):
        return "\n".join(
            [f"{pad}Limit {plan.limit}", explain_plan(plan.child, indent + 1)]
        )
    return f"{pad}{type(plan).__name__}"


def _bare_column(expr: Expr) -> Optional[str]:
    if isinstance(expr, ColumnRef):
        return expr.name.rsplit(".", 1)[-1].lower()
    return None


def _normalize_comparison(predicate: BinaryOp):
    """Return (column, literal, op) with the column on the left, else Nones."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    if isinstance(predicate.left, ColumnRef) and isinstance(
        predicate.right, Literal
    ):
        return _bare_column(predicate.left), predicate.right.value, predicate.op
    if isinstance(predicate.left, Literal) and isinstance(
        predicate.right, ColumnRef
    ):
        return (
            _bare_column(predicate.right),
            predicate.left.value,
            flipped[predicate.op],
        )
    return None, None, None
