"""Column types and value coercion.

The engine supports the types the TPC-H schema needs.  DATE values are stored
as ISO-8601 strings (``YYYY-MM-DD``): ISO dates compare correctly as strings,
which keeps comparison semantics trivial and serialization cheap.
"""

from __future__ import annotations

import enum
import re
from typing import Optional

from repro.errors import SqlTypeError

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")


class ColumnType(enum.Enum):
    """Supported column types."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    DATE = "date"

    def coerce(self, value: object) -> object:
        """Validate/convert ``value`` to this type; ``None`` passes through."""
        if value is None:
            return None
        if self is ColumnType.INTEGER:
            return _coerce_integer(value)
        if self is ColumnType.FLOAT:
            return _coerce_float(value)
        if self is ColumnType.DATE:
            return _coerce_date(value)
        return _coerce_text(value)

    def byte_size(self, value: object) -> int:
        """Approximate on-the-wire size of a value of this type."""
        if value is None:
            return 1
        if self is ColumnType.INTEGER or self is ColumnType.FLOAT:
            return 8
        if self is ColumnType.DATE:
            return 10
        return len(str(value)) + 4


def _coerce_integer(value: object) -> int:
    if isinstance(value, bool):
        raise SqlTypeError(f"booleans are not INTEGER values: {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            pass
    raise SqlTypeError(f"not an INTEGER: {value!r}")


def _coerce_float(value: object) -> float:
    if isinstance(value, bool):
        raise SqlTypeError(f"booleans are not FLOAT values: {value!r}")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            pass
    raise SqlTypeError(f"not a FLOAT: {value!r}")


def _coerce_date(value: object) -> str:
    if isinstance(value, str):
        if _DATE_RE.match(value):
            return value
        raise SqlTypeError(f"not an ISO date (YYYY-MM-DD): {value!r}")
    # datetime.date and datetime.datetime both render ISO via isoformat.
    isoformat = getattr(value, "isoformat", None)
    if callable(isoformat):
        text = isoformat()[:10]
        if _DATE_RE.match(text):
            return text
    raise SqlTypeError(f"not a DATE: {value!r}")


def _coerce_text(value: object) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return str(value)
    raise SqlTypeError(f"not a TEXT value: {value!r}")


def value_byte_size(value: object, column_type: Optional[ColumnType] = None) -> int:
    """Size of ``value`` in bytes; infers the type when not supplied."""
    if column_type is not None:
        return column_type.byte_size(value)
    if value is None:
        return 1
    if isinstance(value, (int, float)):
        return 8
    return len(str(value)) + 4
