"""Row storage: tables and MemTables.

A :class:`Table` stores rows as tuples in insertion order with tombstoned
deletes, maintains its primary/secondary indexes, and tracks approximate byte
sizes so the distributed engines can price network transfers.

A :class:`MemTable` is the bounded in-memory buffer the paper's query
executor uses on the query-submitting peer: "the peer P creates a set of
MemTables to hold the data retrieved from other peers and bulk inserts these
data into the local MySQL when the MemTable is full" (Section 5.2).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.indexes import OrderedIndex
from repro.sqlengine.schema import TableSchema
from repro.sqlengine.types import value_byte_size


class Table:
    """Heap storage for one table plus its indexes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: List[Optional[Tuple[object, ...]]] = []
        self._live_count = 0
        self._byte_size = 0
        #: Monotonic counter bumped on every mutation (rows or indexes).
        #: Plan caches key on it, so plans stay valid even when loaders
        #: mutate the table directly instead of going through SQL.
        self.version = 0
        #: Lazily materialized column-major mirror of the live rows, used by
        #: the vectorized executor.  Valid only while
        #: ``_column_store_version == version``; insert paths append to it
        #: incrementally, destructive mutations drop it.
        self._column_store: Optional[List[List[object]]] = None
        self._column_store_version = -1
        self.indexes: Dict[str, OrderedIndex] = {}
        if schema.primary_key is not None:
            self.create_index(
                f"pk_{schema.name}", schema.primary_key, unique=True
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._live_count

    @property
    def byte_size(self) -> int:
        """Approximate size of all live rows in bytes."""
        return self._byte_size

    def rows(self) -> Iterator[Tuple[object, ...]]:
        """Iterate live rows in insertion order."""
        for row in self._rows:
            if row is not None:
                yield row

    def row_by_id(self, row_id: int) -> Tuple[object, ...]:
        if row_id < 0 or row_id >= len(self._rows):
            raise SqlExecutionError(f"row id out of range: {row_id}")
        row = self._rows[row_id]
        if row is None:
            raise SqlExecutionError(f"row {row_id} was deleted")
        return row

    def row_ids(self) -> Iterator[int]:
        for row_id, row in enumerate(self._rows):
            if row is not None:
                yield row_id

    def column_data(self) -> List[List[object]]:
        """Column-major view of the live rows, cached per table version.

        ``column_data()[k][i]`` is the ``k``-th attribute of the ``i``-th
        live row in insertion order (tombstones compacted away, so positions
        are *not* row ids).  The cache rebuilds lazily after destructive
        mutations; the insert paths extend it incrementally so repeated
        scans of an append-mostly table never re-transpose.
        """
        if self._column_store_version != self.version:
            if self._live_count:
                self._column_store = [list(col) for col in zip(*self.rows())]
            else:
                self._column_store = [[] for _ in self.schema.columns]
            self._column_store_version = self.version
        assert self._column_store is not None
        return self._column_store

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[object]) -> int:
        """Insert one row; returns its row id."""
        row = self.schema.coerce_row(values)
        row_id = len(self._rows)
        # Validate unique indexes before touching any state so a violation
        # leaves the table unchanged.
        for index in self.indexes.values():
            if index.unique:
                key = row[self.schema.column_index(index.column)]
                if key is not None and index.lookup(key):
                    raise SqlExecutionError(
                        f"duplicate key {key!r} for unique index {index.name!r}"
                    )
        self._rows.append(row)
        self._live_count += 1
        self._byte_size += self._row_bytes(row)
        if self._column_store is not None and self._column_store_version == self.version:
            for column_values, value in zip(self._column_store, row):
                column_values.append(value)
            self._column_store_version = self.version + 1
        self.version += 1
        for index in self.indexes.values():
            index.insert(row[self.schema.column_index(index.column)], row_id)
        return row_id

    def insert_many(self, rows: Sequence[Sequence[object]]) -> List[int]:
        """Bulk-append ``rows`` atomically; returns their row ids.

        One coercion pass, one unique-key validation pass (a violation
        anywhere in the batch leaves the table unchanged, where per-row
        insertion would have kept the earlier rows), one mutation-version
        bump, and one merge per index — instead of per-row work for each.
        """
        coerced = [self.schema.coerce_row(row) for row in rows]
        if not coerced:
            return []
        for index in self.indexes.values():
            if not index.unique:
                continue
            position = self.schema.column_index(index.column)
            seen = set()
            for row in coerced:
                key = row[position]
                if key is None:
                    continue
                if key in seen or index.lookup(key):
                    raise SqlExecutionError(
                        f"duplicate key {key!r} for unique index {index.name!r}"
                    )
                seen.add(key)
        first_id = len(self._rows)
        row_ids = list(range(first_id, first_id + len(coerced)))
        self._rows.extend(coerced)
        self._live_count += len(coerced)
        self._byte_size += sum(self._row_bytes(row) for row in coerced)
        if self._column_store is not None and self._column_store_version == self.version:
            for position, column_values in enumerate(self._column_store):
                column_values.extend(row[position] for row in coerced)
            self._column_store_version = self.version + 1
        self.version += 1
        for index in self.indexes.values():
            position = self.schema.column_index(index.column)
            index.insert_many(
                (row[position], row_id) for row, row_id in zip(coerced, row_ids)
            )
        return row_ids

    def delete_row(self, row_id: int) -> None:
        row = self.row_by_id(row_id)
        for index in self.indexes.values():
            index.remove(row[self.schema.column_index(index.column)], row_id)
        self._rows[row_id] = None
        self._live_count -= 1
        self._byte_size -= self._row_bytes(row)
        self._drop_column_store()
        self.version += 1

    def delete_where(self, predicate: Callable[[Tuple[object, ...]], bool]) -> int:
        """Delete all rows matching ``predicate``; returns the count."""
        victims = [
            row_id
            for row_id, row in enumerate(self._rows)
            if row is not None and predicate(row)
        ]
        for row_id in victims:
            self.delete_row(row_id)
        return len(victims)

    def update_row(self, row_id: int, values: Sequence[object]) -> None:
        old = self.row_by_id(row_id)
        new = self.schema.coerce_row(values)
        for index in self.indexes.values():
            position = self.schema.column_index(index.column)
            if index.unique and new[position] != old[position]:
                if new[position] is not None and index.lookup(new[position]):
                    raise SqlExecutionError(
                        f"duplicate key {new[position]!r} for unique index "
                        f"{index.name!r}"
                    )
        for index in self.indexes.values():
            position = self.schema.column_index(index.column)
            if old[position] != new[position]:
                index.remove(old[position], row_id)
                index.insert(new[position], row_id)
        self._rows[row_id] = new
        self._byte_size += self._row_bytes(new) - self._row_bytes(old)
        self._drop_column_store()
        self.version += 1

    def truncate(self) -> None:
        self._rows.clear()
        self._live_count = 0
        self._byte_size = 0
        self._drop_column_store()
        self.version += 1
        for index in list(self.indexes.values()):
            self.indexes[index.name] = OrderedIndex(
                index.name, index.column, index.unique
            )

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def create_index(self, name: str, column: str, unique: bool = False) -> OrderedIndex:
        if name in self.indexes:
            raise SqlCatalogError(f"index already exists: {name!r}")
        if not self.schema.has_column(column):
            raise SqlCatalogError(
                f"cannot index unknown column {column!r} of {self.schema.name!r}"
            )
        index = OrderedIndex(name, column, unique)
        position = self.schema.column_index(column)
        for row_id, row in enumerate(self._rows):
            if row is not None:
                index.insert(row[position], row_id)
        self.indexes[name] = index
        # Index creation bumps the version without changing row content, so
        # a current column store stays current.
        if self._column_store_version == self.version:
            self._column_store_version += 1
        self.version += 1
        return index

    def index_on(self, column: str) -> Optional[OrderedIndex]:
        """Any index whose key is ``column``, preferring unique ones."""
        lowered = column.lower()
        best: Optional[OrderedIndex] = None
        for index in self.indexes.values():
            if index.column == lowered:
                if index.unique:
                    return index
                best = best or index
        return best

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_column_store(self) -> None:
        self._column_store = None
        self._column_store_version = -1

    def _row_bytes(self, row: Tuple[object, ...]) -> int:
        return sum(
            column.column_type.byte_size(value)
            for column, value in zip(self.schema.columns, row)
        )


class MemTable:
    """A bounded in-memory staging buffer for fetched remote tuples.

    When the buffer exceeds ``capacity_bytes`` it spills (bulk-inserts) into
    the backing :class:`Table`.  The number of spills is observable so tests
    can verify the bulk-insert behaviour the paper describes.
    """

    def __init__(self, backing: Table, capacity_bytes: int = 100 * 1024 * 1024) -> None:
        if capacity_bytes <= 0:
            raise SqlExecutionError(
                f"MemTable capacity must be positive: {capacity_bytes}"
            )
        self.backing = backing
        self.capacity_bytes = capacity_bytes
        self._buffer: List[Tuple[object, ...]] = []
        self._buffered_bytes = 0
        self.spill_count = 0

    @property
    def buffered_rows(self) -> int:
        return len(self._buffer)

    @property
    def buffered_bytes(self) -> int:
        return self._buffered_bytes

    def append(self, values: Sequence[object]) -> None:
        row = self.backing.schema.coerce_row(values)
        self._buffer.append(row)
        self._buffered_bytes += self.backing._row_bytes(row)
        if self._buffered_bytes >= self.capacity_bytes:
            self.flush()

    def extend(self, rows: Sequence[Sequence[object]]) -> None:
        for row in rows:
            self.append(row)

    def flush(self) -> int:
        """Bulk-insert the buffer into the backing table; returns row count."""
        flushed = len(self._buffer)
        if flushed:
            self.backing.insert_many(self._buffer)
            self._buffer.clear()
            self._buffered_bytes = 0
            self.spill_count += 1
        return flushed
