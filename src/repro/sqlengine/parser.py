"""SQL parser for the dialect the paper's workloads use.

Supported statements::

    SELECT [DISTINCT] items FROM tables [JOIN ... ON ...]
        [WHERE expr] [GROUP BY exprs] [HAVING expr]
        [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
    INSERT INTO table VALUES (...), (...)
    CREATE TABLE name (col TYPE [NOT NULL] [PRIMARY KEY], ...)
    CREATE [UNIQUE] INDEX name ON table (column)
    UPDATE table SET col = expr [, ...] [WHERE expr]
    DELETE FROM table [WHERE expr]
    DROP TABLE name

The parser is a hand-written tokenizer + recursive-descent parser producing
the statement dataclasses below; expressions reuse :mod:`repro.sqlengine.expr`
nodes directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import SqlParseError
from repro.sqlengine.expr import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.sqlengine.schema import Column
from repro.sqlengine.types import ColumnType


# ----------------------------------------------------------------------
# Statement AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    """One projection: an expression with an optional alias, or ``*``."""

    expr: Optional[Expr]  # None means "*"
    alias: Optional[str] = None
    star_qualifier: Optional[str] = None  # for "t.*"

    @property
    def is_star(self) -> bool:
        return self.expr is None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.expr is None:
            return "*"
        if isinstance(self.expr, ColumnRef):
            return self.expr.name.rsplit(".", 1)[-1]
        return self.expr.to_sql()


@dataclass(frozen=True)
class TableRef:
    table: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return (self.alias or self.table).lower()


@dataclass(frozen=True)
class Join:
    table: TableRef
    condition: Expr
    kind: str = "inner"


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class SelectStmt:
    items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]
    joins: Tuple[Join, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class InsertStmt:
    table: str
    rows: Tuple[Tuple[object, ...], ...]
    columns: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CreateTableStmt:
    name: str
    columns: Tuple[Column, ...]
    primary_key: Optional[str] = None


@dataclass(frozen=True)
class CreateIndexStmt:
    name: str
    table: str
    column: str
    unique: bool = False


@dataclass(frozen=True)
class UpdateStmt:
    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class DeleteStmt:
    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class DropTableStmt:
    name: str
    if_exists: bool = False


Statement = object  # any of the dataclasses above


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+|\.\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(?:\.(?:[A-Za-z_][A-Za-z_0-9]*|\*))?)
  | (?P<op><=|>=|!=|<>|=|<|>|\+|-|\*|/|%|\(|\)|,|;)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "join", "inner", "left", "on", "and", "or", "not", "between",
    "in", "like", "is", "null", "as", "asc", "desc", "insert", "into",
    "values", "create", "table", "index", "unique", "primary", "key",
    "update", "set", "delete", "drop", "exists", "if", "date",
    "case", "when", "then", "else", "end",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "string" | "ident" | "keyword" | "op" | "eof"
    text: str
    position: int


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SqlParseError(
                f"unexpected character {sql[position]!r} at offset {position}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup or "op"
        text = match.group()
        if kind == "ident" and text.lower() in _KEYWORDS and "." not in text:
            kind = "keyword"
            text = text.lower()
        tokens.append(_Token(kind, text, match.start()))
    tokens.append(_Token("eof", "", len(sql)))
    return tokens


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
class _Parser:
    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._tokens = _tokenize(sql)
        self._index = 0

    # -- token helpers --------------------------------------------------
    @property
    def _current(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._current
        if token.kind != "eof":
            self._index += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._current
        return token.kind == "keyword" and token.text in keywords

    def _accept_keyword(self, *keywords: str) -> Optional[str]:
        if self._check_keyword(*keywords):
            return self._advance().text
        return None

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            raise SqlParseError(
                f"expected {keyword.upper()!r} at offset {self._current.position}, "
                f"found {self._current.text!r}"
            )

    def _accept_op(self, op: str) -> bool:
        token = self._current
        if token.kind == "op" and token.text == op:
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            raise SqlParseError(
                f"expected {op!r} at offset {self._current.position}, "
                f"found {self._current.text!r}"
            )

    def _expect_ident(self) -> str:
        token = self._current
        if token.kind == "ident":
            self._advance()
            return token.text
        # Non-reserved usage of soft keywords as identifiers (e.g. a table
        # named "date") is not supported; keep the grammar strict.
        raise SqlParseError(
            f"expected an identifier at offset {token.position}, "
            f"found {token.text!r}"
        )

    # -- entry point -----------------------------------------------------
    def parse_statement(self) -> Statement:
        if self._check_keyword("select"):
            statement = self._parse_select()
        elif self._check_keyword("insert"):
            statement = self._parse_insert()
        elif self._check_keyword("create"):
            statement = self._parse_create()
        elif self._check_keyword("update"):
            statement = self._parse_update()
        elif self._check_keyword("delete"):
            statement = self._parse_delete()
        elif self._check_keyword("drop"):
            statement = self._parse_drop()
        else:
            raise SqlParseError(
                f"cannot parse statement starting with {self._current.text!r}"
            )
        self._accept_op(";")
        if self._current.kind != "eof":
            raise SqlParseError(
                f"trailing input at offset {self._current.position}: "
                f"{self._current.text!r}"
            )
        return statement

    # -- SELECT ----------------------------------------------------------
    def _parse_select(self) -> SelectStmt:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct") is not None

        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())

        self._expect_keyword("from")
        tables = [self._parse_table_ref()]
        joins: List[Join] = []
        while True:
            if self._accept_op(","):
                tables.append(self._parse_table_ref())
                continue
            kind = "inner"
            if self._accept_keyword("left"):
                kind = "left"
                self._accept_keyword("inner")  # tolerate nothing; LEFT JOIN
                self._expect_keyword("join")
            elif self._accept_keyword("inner"):
                self._expect_keyword("join")
            elif self._accept_keyword("join"):
                pass
            else:
                break
            table = self._parse_table_ref()
            self._expect_keyword("on")
            condition = self._parse_expr()
            joins.append(Join(table, condition, kind))

        where = None
        if self._accept_keyword("where"):
            where = self._parse_expr()

        group_by: List[Expr] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_expr())
            while self._accept_op(","):
                group_by.append(self._parse_expr())

        having = None
        if self._accept_keyword("having"):
            having = self._parse_expr()

        order_by: List[OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_op(","):
                order_by.append(self._parse_order_item())

        limit = None
        if self._accept_keyword("limit"):
            token = self._advance()
            if token.kind != "number" or "." in token.text:
                raise SqlParseError(f"LIMIT expects an integer, got {token.text!r}")
            limit = int(token.text)

        return SelectStmt(
            items=tuple(items),
            tables=tuple(tables),
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> SelectItem:
        token = self._current
        if token.kind == "op" and token.text == "*":
            self._advance()
            return SelectItem(expr=None)
        if token.kind == "ident" and token.text.endswith(".*"):
            self._advance()
            return SelectItem(expr=None, star_qualifier=token.text[:-2].lower())
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident().lower()
        elif self._current.kind == "ident" and "." not in self._current.text:
            alias = self._advance().text.lower()
        return SelectItem(expr=expr, alias=alias)

    def _parse_table_ref(self) -> TableRef:
        table = self._expect_ident().lower()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident().lower()
        elif self._current.kind == "ident" and "." not in self._current.text:
            alias = self._advance().text.lower()
        return TableRef(table, alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expr()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return OrderItem(expr, ascending)

    # -- INSERT ----------------------------------------------------------
    def _parse_insert(self) -> InsertStmt:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_ident().lower()
        columns: List[str] = []
        if self._accept_op("("):
            columns.append(self._expect_ident().lower())
            while self._accept_op(","):
                columns.append(self._expect_ident().lower())
            self._expect_op(")")
        self._expect_keyword("values")
        rows = [self._parse_value_row()]
        while self._accept_op(","):
            rows.append(self._parse_value_row())
        return InsertStmt(table=table, rows=tuple(rows), columns=tuple(columns))

    def _parse_value_row(self) -> Tuple[object, ...]:
        self._expect_op("(")
        values = [self._parse_literal_value()]
        while self._accept_op(","):
            values.append(self._parse_literal_value())
        self._expect_op(")")
        return tuple(values)

    def _parse_literal_value(self) -> object:
        expr = self._parse_expr()
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, UnaryOp) and expr.op == "-" and isinstance(
            expr.operand, Literal
        ):
            return -expr.operand.value  # type: ignore[operator]
        raise SqlParseError(
            f"INSERT values must be literals, got {expr.to_sql()}"
        )

    # -- CREATE ----------------------------------------------------------
    def _parse_create(self) -> Statement:
        self._expect_keyword("create")
        unique = self._accept_keyword("unique") is not None
        if self._accept_keyword("index"):
            return self._parse_create_index(unique)
        if unique:
            raise SqlParseError("UNIQUE is only valid for CREATE INDEX")
        self._expect_keyword("table")
        return self._parse_create_table()

    def _parse_create_table(self) -> CreateTableStmt:
        name = self._expect_ident().lower()
        self._expect_op("(")
        columns: List[Column] = []
        primary_key: Optional[str] = None
        while True:
            column_name = self._expect_ident().lower()
            column_type = self._parse_column_type()
            nullable = True
            while True:
                if self._accept_keyword("not"):
                    self._expect_keyword("null")
                    nullable = False
                elif self._accept_keyword("primary"):
                    self._expect_keyword("key")
                    if primary_key is not None:
                        raise SqlParseError("multiple PRIMARY KEY declarations")
                    primary_key = column_name
                    nullable = False
                else:
                    break
            columns.append(Column(column_name, column_type, nullable))
            if not self._accept_op(","):
                break
        self._expect_op(")")
        return CreateTableStmt(name, tuple(columns), primary_key)

    def _parse_column_type(self) -> ColumnType:
        token = self._current
        if token.kind == "keyword" and token.text == "date":
            self._advance()
            return ColumnType.DATE
        if token.kind != "ident":
            raise SqlParseError(f"expected a type name, got {token.text!r}")
        self._advance()
        type_name = token.text.lower()
        # Swallow optional length/precision arguments: VARCHAR(25), DECIMAL(15,2).
        if self._accept_op("("):
            while not self._accept_op(")"):
                self._advance()
        if type_name in ("integer", "int", "bigint", "smallint"):
            return ColumnType.INTEGER
        if type_name in ("float", "real", "double", "decimal", "numeric"):
            return ColumnType.FLOAT
        if type_name in ("text", "varchar", "char", "string"):
            return ColumnType.TEXT
        raise SqlParseError(f"unknown column type: {token.text!r}")

    def _parse_create_index(self, unique: bool) -> CreateIndexStmt:
        name = self._expect_ident().lower()
        self._expect_keyword("on")
        table = self._expect_ident().lower()
        self._expect_op("(")
        column = self._expect_ident().lower()
        self._expect_op(")")
        return CreateIndexStmt(name=name, table=table, column=column, unique=unique)

    # -- UPDATE / DELETE / DROP -------------------------------------------
    def _parse_update(self) -> UpdateStmt:
        self._expect_keyword("update")
        table = self._expect_ident().lower()
        self._expect_keyword("set")
        assignments: List[Tuple[str, Expr]] = []
        while True:
            column = self._expect_ident().lower()
            self._expect_op("=")
            assignments.append((column, self._parse_expr()))
            if not self._accept_op(","):
                break
        where = None
        if self._accept_keyword("where"):
            where = self._parse_expr()
        return UpdateStmt(table, tuple(assignments), where)

    def _parse_delete(self) -> DeleteStmt:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_ident().lower()
        where = None
        if self._accept_keyword("where"):
            where = self._parse_expr()
        return DeleteStmt(table, where)

    def _parse_drop(self) -> DropTableStmt:
        self._expect_keyword("drop")
        self._expect_keyword("table")
        if_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("exists")
            if_exists = True
        name = self._expect_ident().lower()
        return DropTableStmt(name, if_exists)

    # -- expressions -------------------------------------------------------
    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        token = self._current
        if token.kind == "op" and token.text in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self._advance()
            op = "!=" if token.text == "<>" else token.text
            return BinaryOp(op, left, self._parse_additive())
        negated = False
        if self._check_keyword("not"):
            # Lookahead for NOT BETWEEN / NOT IN / NOT LIKE.
            next_token = self._tokens[self._index + 1]
            if next_token.kind == "keyword" and next_token.text in (
                "between", "in", "like",
            ):
                self._advance()
                negated = True
        if self._accept_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high, negated)
        if self._accept_keyword("in"):
            self._expect_op("(")
            if self._check_keyword("select"):
                subquery = self._parse_select()
                self._expect_op(")")
                return InSubquery(left, subquery, negated)
            items = [self._parse_additive()]
            while self._accept_op(","):
                items.append(self._parse_additive())
            self._expect_op(")")
            return InList(left, tuple(items), negated)
        if self._accept_keyword("like"):
            token = self._advance()
            if token.kind != "string":
                raise SqlParseError("LIKE expects a string pattern")
            return Like(left, _unquote(token.text), negated)
        if self._accept_keyword("is"):
            is_not = self._accept_keyword("not") is not None
            self._expect_keyword("null")
            return IsNull(left, negated=is_not)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            if self._accept_op("+"):
                left = BinaryOp("+", left, self._parse_multiplicative())
            elif self._accept_op("-"):
                left = BinaryOp("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            if self._accept_op("*"):
                left = BinaryOp("*", left, self._parse_unary())
            elif self._accept_op("/"):
                left = BinaryOp("/", left, self._parse_unary())
            elif self._accept_op("%"):
                left = BinaryOp("%", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept_op("-"):
            operand = self._parse_unary()
            # Constant-fold negative numeric literals so they stay literals
            # (index matching and INSERT treat them as plain values).
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ):
                return Literal(-operand.value)
            return UnaryOp("-", operand)
        if self._accept_op("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._current
        if token.kind == "number":
            self._advance()
            if "." in token.text:
                return Literal(float(token.text))
            return Literal(int(token.text))
        if token.kind == "string":
            self._advance()
            return Literal(_unquote(token.text))
        if token.kind == "keyword" and token.text == "null":
            self._advance()
            return Literal(None)
        if token.kind == "keyword" and token.text == "date":
            # DATE '1998-11-05' literal syntax.
            self._advance()
            literal = self._advance()
            if literal.kind != "string":
                raise SqlParseError("DATE expects a quoted string")
            return Literal(_unquote(literal.text))
        if token.kind == "keyword" and token.text == "case":
            return self._parse_case()
        if self._accept_op("("):
            expr = self._parse_expr()
            self._expect_op(")")
            return expr
        if token.kind == "ident":
            self._advance()
            if self._accept_op("("):
                return self._parse_function_call(token.text)
            return ColumnRef(token.text.lower())
        raise SqlParseError(
            f"unexpected token {token.text!r} at offset {token.position}"
        )

    def _parse_case(self) -> Expr:
        """Searched (CASE WHEN c THEN r ...) or simple (CASE x WHEN v ...)."""
        self._expect_keyword("case")
        subject: Optional[Expr] = None
        if not self._check_keyword("when"):
            subject = self._parse_expr()
        whens = []
        while self._accept_keyword("when"):
            condition = self._parse_expr()
            if subject is not None:
                condition = BinaryOp("=", subject, condition)
            self._expect_keyword("then")
            whens.append((condition, self._parse_expr()))
        if not whens:
            raise SqlParseError("CASE needs at least one WHEN clause")
        default = None
        if self._accept_keyword("else"):
            default = self._parse_expr()
        self._expect_keyword("end")
        return CaseWhen(tuple(whens), default)

    def _parse_function_call(self, name: str) -> Expr:
        if self._current.kind == "op" and self._current.text == "*":
            self._advance()
            self._expect_op(")")
            return FuncCall(name.lower(), (), star=True)
        distinct = self._accept_keyword("distinct") is not None
        args = [self._parse_expr()]
        while self._accept_op(","):
            args.append(self._parse_expr())
        self._expect_op(")")
        return FuncCall(name.lower(), tuple(args), distinct=distinct)


def _unquote(text: str) -> str:
    return text[1:-1].replace("''", "'")


def parse(sql: str) -> Statement:
    """Parse one SQL statement into its AST."""
    if not sql or not sql.strip():
        raise SqlParseError("empty SQL statement")
    return _Parser(sql).parse_statement()
