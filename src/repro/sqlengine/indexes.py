"""Secondary and primary indexes.

The engine uses an ordered index (sorted key array + row-id lists, maintained
with binary search) — the same access paths a B+-tree gives MySQL/MyISAM:
exact lookup, range scan, and min/max in O(log n).

Row ids are positions into the owning table's row list; deleted rows leave
tombstones in the table, and the index drops their entries eagerly.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import SqlCatalogError, SqlExecutionError


class OrderedIndex:
    """An ordered (key -> row ids) index over one column.

    ``None`` keys are not indexed (SQL semantics: NULL never matches an
    equality or range predicate), so lookups never return NULL rows.
    """

    def __init__(self, name: str, column: str, unique: bool = False) -> None:
        self.name = name
        self.column = column.lower()
        self.unique = unique
        self._keys: List[object] = []
        self._row_ids: List[List[int]] = []

    def __len__(self) -> int:
        return sum(len(ids) for ids in self._row_ids)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert(self, key: object, row_id: int) -> None:
        if key is None:
            return
        position = bisect.bisect_left(self._keys, key)
        if position < len(self._keys) and self._keys[position] == key:
            if self.unique:
                raise SqlExecutionError(
                    f"unique index {self.name!r} violated by key {key!r}"
                )
            self._row_ids[position].append(row_id)
        else:
            self._keys.insert(position, key)
            self._row_ids.insert(position, [row_id])

    def remove(self, key: object, row_id: int) -> None:
        if key is None:
            return
        position = bisect.bisect_left(self._keys, key)
        if position >= len(self._keys) or self._keys[position] != key:
            raise SqlExecutionError(
                f"index {self.name!r} has no entry for key {key!r}"
            )
        ids = self._row_ids[position]
        try:
            ids.remove(row_id)
        except ValueError:
            raise SqlExecutionError(
                f"index {self.name!r} key {key!r} has no row id {row_id}"
            ) from None
        if not ids:
            del self._keys[position]
            del self._row_ids[position]

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(self, key: object) -> List[int]:
        """Row ids whose key equals ``key`` (empty for None)."""
        if key is None:
            return []
        position = bisect.bisect_left(self._keys, key)
        if position < len(self._keys) and self._keys[position] == key:
            return list(self._row_ids[position])
        return []

    def range_scan(
        self,
        low: Optional[object] = None,
        high: Optional[object] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Row ids with keys in the given (possibly open-ended) range."""
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif high_inclusive:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        for position in range(start, stop):
            yield from self._row_ids[position]

    def min_key(self) -> Optional[object]:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Optional[object]:
        return self._keys[-1] if self._keys else None

    def distinct_keys(self) -> int:
        return len(self._keys)

    def keys(self) -> Iterable[object]:
        return iter(self._keys)
