"""Secondary and primary indexes.

The engine uses an ordered index (sorted key array + row-id lists, maintained
with binary search) — the same access paths a B+-tree gives MySQL/MyISAM:
exact lookup, range scan, and min/max in O(log n).

Row ids are positions into the owning table's row list; deleted rows leave
tombstones in the table, and the index drops their entries eagerly.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import SqlCatalogError, SqlExecutionError

#: Sentinel distinct from every real key (``None`` is a valid non-key).
_NO_KEY = object()


class OrderedIndex:
    """An ordered (key -> row ids) index over one column.

    ``None`` keys are not indexed (SQL semantics: NULL never matches an
    equality or range predicate), so lookups never return NULL rows.
    """

    def __init__(self, name: str, column: str, unique: bool = False) -> None:
        self.name = name
        self.column = column.lower()
        self.unique = unique
        self._keys: List[object] = []
        self._row_ids: List[List[int]] = []

    def __len__(self) -> int:
        return sum(len(ids) for ids in self._row_ids)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert(self, key: object, row_id: int) -> None:
        if key is None:
            return
        position = bisect.bisect_left(self._keys, key)
        if position < len(self._keys) and self._keys[position] == key:
            if self.unique:
                raise SqlExecutionError(
                    f"unique index {self.name!r} violated by key {key!r}"
                )
            self._row_ids[position].append(row_id)
        else:
            self._keys.insert(position, key)
            self._row_ids.insert(position, [row_id])

    def insert_many(self, pairs: Iterable[Tuple[object, int]]) -> None:
        """Bulk-insert ``(key, row_id)`` pairs in one merge pass.

        Equivalent to calling :meth:`insert` per pair, but rebuilds the
        sorted key array with a single two-pointer merge instead of shifting
        it once per row — the loader path every bulk ingest (MemTable spill,
        benchmark setup) pays.
        """
        incoming = sorted(pair for pair in pairs if pair[0] is not None)
        if not incoming:
            return
        if self.unique:
            previous: object = _NO_KEY
            for key, _ in incoming:
                if key == previous or self.lookup(key):
                    raise SqlExecutionError(
                        f"unique index {self.name!r} violated by key {key!r}"
                    )
                previous = key
        merged_keys: List[object] = []
        merged_ids: List[List[int]] = []
        keys, ids = self._keys, self._row_ids
        i, n = 0, len(keys)
        j, m = 0, len(incoming)
        while i < n and j < m:
            key = keys[i]
            new_key = incoming[j][0]
            if key < new_key:
                merged_keys.append(key)
                merged_ids.append(ids[i])
                i += 1
                continue
            if new_key < key:
                bucket = [incoming[j][1]]
                j += 1
                while j < m and incoming[j][0] == new_key:
                    bucket.append(incoming[j][1])
                    j += 1
                merged_keys.append(new_key)
                merged_ids.append(bucket)
                continue
            bucket = ids[i]
            while j < m and incoming[j][0] == key:
                bucket.append(incoming[j][1])
                j += 1
            merged_keys.append(key)
            merged_ids.append(bucket)
            i += 1
        merged_keys.extend(keys[i:])
        merged_ids.extend(ids[i:])
        while j < m:
            new_key = incoming[j][0]
            bucket = [incoming[j][1]]
            j += 1
            while j < m and incoming[j][0] == new_key:
                bucket.append(incoming[j][1])
                j += 1
            merged_keys.append(new_key)
            merged_ids.append(bucket)
        self._keys = merged_keys
        self._row_ids = merged_ids

    def remove(self, key: object, row_id: int) -> None:
        if key is None:
            return
        position = bisect.bisect_left(self._keys, key)
        if position >= len(self._keys) or self._keys[position] != key:
            raise SqlExecutionError(
                f"index {self.name!r} has no entry for key {key!r}"
            )
        ids = self._row_ids[position]
        try:
            ids.remove(row_id)
        except ValueError:
            raise SqlExecutionError(
                f"index {self.name!r} key {key!r} has no row id {row_id}"
            ) from None
        if not ids:
            del self._keys[position]
            del self._row_ids[position]

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(self, key: object) -> List[int]:
        """Row ids whose key equals ``key`` (empty for None)."""
        if key is None:
            return []
        position = bisect.bisect_left(self._keys, key)
        if position < len(self._keys) and self._keys[position] == key:
            return list(self._row_ids[position])
        return []

    def range_scan(
        self,
        low: Optional[object] = None,
        high: Optional[object] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Row ids with keys in the given (possibly open-ended) range."""
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif high_inclusive:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        for position in range(start, stop):
            yield from self._row_ids[position]

    def min_key(self) -> Optional[object]:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Optional[object]:
        return self._keys[-1] if self._keys else None

    def distinct_keys(self) -> int:
        return len(self._keys)

    def keys(self) -> Iterable[object]:
        return iter(self._keys)
