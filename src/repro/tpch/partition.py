"""Supply-chain partitioning for the throughput benchmark (§6.2.1).

The TPC-H schema is split into two sub-schemas:

* the **supplier schema**: ``supplier``, ``partsupp``, ``part``,
* the **retailer schema**: ``lineitem``, ``orders``, ``customer``,

with ``nation`` and ``region`` commonly owned by both.  Data is partitioned
by nation — "we partition the TPC-H data sets into 25 data sets, one data set
for each nation, and configure each normal peer to only host data from a
unique nation" — and every table carries an added nation-key column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.tpch.dbgen import NUM_NATIONS, TpchGenerator

SUPPLIER_TABLES = ["supplier", "partsupp", "part"]
RETAILER_TABLES = ["lineitem", "orders", "customer"]
COMMON_TABLES = ["nation", "region"]


@dataclass(frozen=True)
class PeerAssignment:
    """One normal peer's role in the supply-chain network."""

    peer_id: str
    role: str  # "supplier" | "retailer"
    nation_key: int

    @property
    def tables(self) -> List[str]:
        owned = SUPPLIER_TABLES if self.role == "supplier" else RETAILER_TABLES
        return owned + COMMON_TABLES


class SupplyChainPartitioner:
    """Assigns peers to supplier/retailer roles and generates their data.

    The paper sets "the number of suppliers to be equal to the number of
    retailers" — peers are assigned alternately.  Each peer hosts the data
    of one nation; nation keys are assigned round-robin within each role.
    """

    def __init__(self, generator: Optional[TpchGenerator] = None) -> None:
        self.generator = generator or TpchGenerator()

    def assign(self, peer_ids: Sequence[str]) -> List[PeerAssignment]:
        """Alternate supplier/retailer roles over the peer list."""
        assignments: List[PeerAssignment] = []
        supplier_count = 0
        retailer_count = 0
        for index, peer_id in enumerate(peer_ids):
            if index % 2 == 0:
                role = "supplier"
                nation = supplier_count % NUM_NATIONS
                supplier_count += 1
            else:
                role = "retailer"
                nation = retailer_count % NUM_NATIONS
                retailer_count += 1
            assignments.append(PeerAssignment(peer_id, role, nation))
        return assignments

    def generate_for(self, assignment: PeerAssignment, peer_index: int):
        """The nation-pinned data for one assigned peer.

        Returns ``{table: rows}`` including the appended nation-key column
        (for tables that do not already carry one).
        """
        return self.generator.generate_peer(
            peer_index,
            tables=assignment.tables,
            nation_key=assignment.nation_key,
            with_nation_key=True,
        )

    @staticmethod
    def suppliers(assignments: Sequence[PeerAssignment]) -> List[PeerAssignment]:
        return [a for a in assignments if a.role == "supplier"]

    @staticmethod
    def retailers(assignments: Sequence[PeerAssignment]) -> List[PeerAssignment]:
        return [a for a in assignments if a.role == "retailer"]
