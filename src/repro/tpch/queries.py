"""The benchmark queries of Sections 6.1 and 6.2.

"We implement the benchmark queries by ourselves since the TPC-H queries are
complex and time-consuming queries which are not suitable for benchmarking
corporate network applications" (§6.1.4).  Each helper returns SQL text; the
default parameters are tuned so the selectivity matches the paper's intent
(Q1 "yields approximately 3,000 tuples per normal peer" out of ~6M — i.e., a
highly selective predicate served by the secondary indexes).
"""

from __future__ import annotations


def Q1(ship_date: str = "1998-09-15", commit_date: str = "1998-07-01") -> str:
    """Q1 — simple selection on LineItem (Fig. 6).

    "evaluates a simple selection predicate on the l_shipdate and
    l_commitdate attributes from the LineItem table."
    """
    return (
        "SELECT l_orderkey, l_partkey, l_suppkey, l_linenumber, l_quantity "
        "FROM lineitem "
        f"WHERE l_shipdate > DATE '{ship_date}' "
        f"AND l_commitdate > DATE '{commit_date}'"
    )


def Q2(ship_date: str = "1998-06-01") -> str:
    """Q2 — simple aggregation on LineItem (Fig. 7).

    "involves computing the total prices over the qualified tuples stored in
    LineItem table."
    """
    return (
        "SELECT SUM(l_extendedprice * (1 - l_discount)) AS total_price "
        "FROM lineitem "
        f"WHERE l_shipdate > DATE '{ship_date}'"
    )


def Q3(ship_date: str = "1998-03-01", order_date: str = "1998-06-01") -> str:
    """Q3 — two-table join LineItem ⋈ Orders (Fig. 8).

    "involves retrieving qualified tuples from joining two tables, i.e.,
    LineItem and Orders."
    """
    return (
        "SELECT l_orderkey, o_orderdate, o_shippriority, l_extendedprice "
        "FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey "
        f"AND l_shipdate > DATE '{ship_date}' "
        f"AND o_orderdate > DATE '{order_date}'"
    )


def Q4(min_size: int = 25) -> str:
    """Q4 — join PartSupp ⋈ Part plus aggregation (Fig. 9)."""
    return (
        "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS total_value "
        "FROM partsupp, part "
        "WHERE ps_partkey = p_partkey "
        f"AND p_size > {min_size} "
        "GROUP BY ps_partkey"
    )


def Q5() -> str:
    """Q5 — multi-table join plus aggregation (Fig. 10).

    Four tables; HadoopDB "compiles this query into four MapReduce jobs with
    the first three jobs performing the joins and the final job performing
    the final aggregation."
    """
    return (
        "SELECT s_nationkey, "
        "SUM(l_extendedprice * (1 - l_discount)) AS revenue "
        "FROM customer, orders, lineitem, supplier "
        "WHERE c_custkey = o_custkey "
        "AND l_orderkey = o_orderkey "
        "AND l_suppkey = s_suppkey "
        "AND c_nationkey = s_nationkey "
        "GROUP BY s_nationkey "
        "ORDER BY revenue DESC"
    )


PERFORMANCE_QUERIES = {
    "Q1": Q1(),
    "Q2": Q2(),
    "Q3": Q3(),
    "Q4": Q4(),
    "Q5": Q5(),
}


def supplier_throughput_query(nation_key: int) -> str:
    """The light-weight query against one supplier peer's data (§6.2.3).

    Submitted by retailer-peer users; touches the supplier schema
    (Supplier, PartSupp, Part) of a single nation, so the single-peer
    optimization applies.
    """
    return (
        "SELECT s_suppkey, s_name, SUM(ps_supplycost * ps_availqty) AS stock_value "
        "FROM supplier, partsupp, part "
        "WHERE s_suppkey = ps_suppkey "
        "AND ps_partkey = p_partkey "
        f"AND s_nationkey = {nation_key} "
        f"AND ps_nationkey = {nation_key} "
        f"AND p_nationkey = {nation_key} "
        "GROUP BY s_suppkey, s_name"
    )


def retailer_throughput_query(nation_key: int) -> str:
    """The heavy-weight query against one retailer peer's data (§6.2.3).

    Submitted by supplier-peer users; joins the retailer schema (Customer,
    Orders, LineItem) of a single nation.
    """
    return (
        "SELECT c_custkey, c_name, "
        "SUM(l_extendedprice * (1 - l_discount)) AS revenue "
        "FROM customer, orders, lineitem "
        "WHERE c_custkey = o_custkey "
        "AND o_orderkey = l_orderkey "
        f"AND c_nationkey = {nation_key} "
        f"AND o_nationkey = {nation_key} "
        f"AND l_nationkey = {nation_key} "
        "GROUP BY c_custkey, c_name"
    )
