"""A deterministic, seeded TPC-H data generator (the reproduction's dbgen).

"We generate the data sets using TPC-H dbgen tool and distribute 1 GB data
per node" (§6.1.5).  Generating a literal gigabyte per simulated peer is
pointless on a laptop; instead the generator is parameterized by ``scale``
(rows per peer grow linearly with it) while preserving the properties the
benchmark relies on:

* values follow **uniform distributions** ("the values in TPC-H data sets
  follow uniform distribution", §6.1.5) so every peer holds roughly the same
  value range of every column,
* key ranges are **disjoint across peers**, so the union of all peers'
  partitions is a consistent database and cross-key joins resolve within one
  peer's contribution,
* foreign keys reference keys of the same peer's partition.

At ``scale=1.0`` a peer holds 300 orders, ~1200 lineitems, 40 parts, 160
partsupps, 30 customers and 10 suppliers (plus the 25-nation / 5-region
dimension tables).
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.tpch.schema import NATION_KEY_COLUMNS, TABLE_NAMES

# Key space reserved per peer and table; peers' keys never collide.
KEY_STRIDE = 10_000_000

_START_DATE = datetime.date(1992, 1, 1)
_END_DATE = datetime.date(1998, 8, 2)
_DATE_SPAN_DAYS = (_END_DATE - _START_DATE).days

_MKT_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIP_MODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
_SHIP_INSTRUCTIONS = ["COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"]
_CONTAINERS = ["JUMBO BOX", "LG CASE", "MED BAG", "SM PKG", "WRAP JAR"]
_TYPES = ["ANODIZED BRASS", "BURNISHED COPPER", "ECONOMY TIN", "PLATED STEEL",
          "POLISHED NICKEL", "PROMO ANODIZED", "STANDARD BRUSHED"]
_BRANDS = [f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6)]
_NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]
_REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NUM_NATIONS = len(_NATION_NAMES)

# Rows per peer at scale 1.0, proportioned like TPC-H (lineitem ~4x orders,
# partsupp 4x part, orders 10x customer).
_BASE_ROWS = {
    "customer": 30,
    "supplier": 10,
    "part": 40,
    "orders": 300,
}
_LINEITEMS_PER_ORDER = (1, 7)   # uniform, mean 4 as in TPC-H
_PARTSUPPS_PER_PART = 4


class TpchGenerator:
    """Generates per-peer horizontal partitions of the TPC-H tables."""

    def __init__(self, seed: int = 42, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive: {scale}")
        self.seed = seed
        self.scale = scale

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def rows_for(self, table: str) -> int:
        """Expected row count for one peer's partition of ``table``."""
        table = table.lower()
        if table == "nation":
            return NUM_NATIONS
        if table == "region":
            return len(_REGION_NAMES)
        if table == "lineitem":
            return self.rows_for("orders") * 4  # mean lineitems per order
        if table == "partsupp":
            return self.rows_for("part") * _PARTSUPPS_PER_PART
        if table not in _BASE_ROWS:
            raise KeyError(f"not a TPC-H table: {table!r}")
        return max(1, round(_BASE_ROWS[table] * self.scale))

    def key_base(self, peer_index: int) -> int:
        """First key of a peer's reserved key range."""
        return peer_index * KEY_STRIDE + 1

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate_peer(
        self,
        peer_index: int,
        tables: Optional[Sequence[str]] = None,
        nation_key: Optional[int] = None,
        with_nation_key: bool = False,
    ) -> Dict[str, List[tuple]]:
        """Generate one peer's partition of every requested table.

        ``nation_key`` pins all rows to one nation (the throughput
        benchmark's "each normal peer only hosts data from a unique nation",
        §6.2.1); ``with_nation_key`` appends the extra nation-key column the
        paper adds for that benchmark.
        """
        wanted = [name.lower() for name in (tables or TABLE_NAMES)]
        data: Dict[str, List[tuple]] = {}
        for table in wanted:
            generator = getattr(self, f"_gen_{table}")
            rows = generator(peer_index, nation_key)
            if with_nation_key and table not in ("supplier", "customer"):
                nation = nation_key if nation_key is not None else 0
                rows = [
                    row + (self._nation_of(row, table, nation),) for row in rows
                ]
            data[table] = rows
        return data

    # -- dimension tables ------------------------------------------------
    def _gen_region(self, peer_index: int, nation_key: Optional[int]):
        return [
            (key, name, f"region comment {key}")
            for key, name in enumerate(_REGION_NAMES)
        ]

    def _gen_nation(self, peer_index: int, nation_key: Optional[int]):
        return [
            (key, name, key % len(_REGION_NAMES), f"nation comment {key}")
            for key, name in enumerate(_NATION_NAMES)
        ]

    # -- fact tables -------------------------------------------------------
    def _gen_supplier(self, peer_index: int, nation_key: Optional[int]):
        rng = self._rng(peer_index, "supplier")
        base = self.key_base(peer_index)
        rows = []
        for offset in range(self.rows_for("supplier")):
            key = base + offset
            nation = nation_key if nation_key is not None else rng.randrange(NUM_NATIONS)
            rows.append(
                (
                    key,
                    f"Supplier#{key:09d}",
                    f"addr-{key}",
                    nation,
                    f"{nation:02d}-{rng.randrange(10**7):07d}",
                    round(rng.uniform(-999.99, 9999.99), 2),
                    f"supplier comment {key}",
                )
            )
        return rows

    def _gen_customer(self, peer_index: int, nation_key: Optional[int]):
        rng = self._rng(peer_index, "customer")
        base = self.key_base(peer_index)
        rows = []
        for offset in range(self.rows_for("customer")):
            key = base + offset
            nation = nation_key if nation_key is not None else rng.randrange(NUM_NATIONS)
            rows.append(
                (
                    key,
                    f"Customer#{key:09d}",
                    f"addr-{key}",
                    nation,
                    f"{nation:02d}-{rng.randrange(10**7):07d}",
                    round(rng.uniform(-999.99, 9999.99), 2),
                    rng.choice(_MKT_SEGMENTS),
                    f"customer comment {key}",
                )
            )
        return rows

    def _gen_part(self, peer_index: int, nation_key: Optional[int]):
        rng = self._rng(peer_index, "part")
        base = self.key_base(peer_index)
        rows = []
        for offset in range(self.rows_for("part")):
            key = base + offset
            rows.append(
                (
                    key,
                    f"part {key}",
                    f"Manufacturer#{1 + key % 5}",
                    rng.choice(_BRANDS),
                    rng.choice(_TYPES),
                    rng.randrange(1, 51),
                    rng.choice(_CONTAINERS),
                    round(900 + (key % 1000) * 0.1 + rng.uniform(0, 100), 2),
                    f"part comment {key}",
                )
            )
        return rows

    def _gen_partsupp(self, peer_index: int, nation_key: Optional[int]):
        rng = self._rng(peer_index, "partsupp")
        base = self.key_base(peer_index)
        supplier_count = self.rows_for("supplier")
        rows = []
        for part_offset in range(self.rows_for("part")):
            part_key = base + part_offset
            for replica in range(_PARTSUPPS_PER_PART):
                supplier_key = base + (part_offset + replica) % supplier_count
                rows.append(
                    (
                        part_key,
                        supplier_key,
                        rng.randrange(1, 10000),
                        round(rng.uniform(1.0, 1000.0), 2),
                        f"partsupp comment {part_key}/{replica}",
                    )
                )
        return rows

    def _gen_orders(self, peer_index: int, nation_key: Optional[int]):
        rng = self._rng(peer_index, "orders")
        base = self.key_base(peer_index)
        customer_count = self.rows_for("customer")
        rows = []
        for offset in range(self.rows_for("orders")):
            key = base + offset
            order_date = _START_DATE + datetime.timedelta(
                days=rng.randrange(_DATE_SPAN_DAYS + 1)
            )
            rows.append(
                (
                    key,
                    base + rng.randrange(customer_count),
                    rng.choice(["O", "F", "P"]),
                    round(rng.uniform(1000.0, 400000.0), 2),
                    order_date.isoformat(),
                    rng.choice(_ORDER_PRIORITIES),
                    f"Clerk#{rng.randrange(1000):09d}",
                    0,
                    f"order comment {key}",
                )
            )
        return rows

    def _gen_lineitem(self, peer_index: int, nation_key: Optional[int]):
        rng = self._rng(peer_index, "lineitem")
        base = self.key_base(peer_index)
        part_count = self.rows_for("part")
        supplier_count = self.rows_for("supplier")
        rows = []
        for order in self._gen_orders(peer_index, nation_key):
            order_key = order[0]
            order_date = datetime.date.fromisoformat(order[4])
            for line_number in range(1, rng.randint(*_LINEITEMS_PER_ORDER) + 1):
                quantity = float(rng.randrange(1, 51))
                ship_date = order_date + datetime.timedelta(
                    days=rng.randrange(1, 122)
                )
                commit_date = order_date + datetime.timedelta(
                    days=rng.randrange(30, 91)
                )
                receipt_date = ship_date + datetime.timedelta(
                    days=rng.randrange(1, 31)
                )
                rows.append(
                    (
                        order_key,
                        base + rng.randrange(part_count),
                        base + rng.randrange(supplier_count),
                        line_number,
                        quantity,
                        round(quantity * rng.uniform(900.0, 2100.0), 2),
                        round(rng.uniform(0.0, 0.10), 2),
                        round(rng.uniform(0.0, 0.08), 2),
                        rng.choice(["A", "N", "R"]),
                        rng.choice(["F", "O"]),
                        ship_date.isoformat(),
                        commit_date.isoformat(),
                        receipt_date.isoformat(),
                        rng.choice(_SHIP_INSTRUCTIONS),
                        rng.choice(_SHIP_MODES),
                        f"lineitem comment {order_key}/{line_number}",
                    )
                )
        return rows

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _rng(self, peer_index: int, table: str) -> random.Random:
        """One independent stream per (seed, peer, table).

        ``orders`` and ``lineitem`` derive dates from the same stream seed so
        a lineitem's ship date is always consistent with its order's date.
        """
        return random.Random((self.seed, peer_index, table).__repr__())

    @staticmethod
    def _nation_of(row: tuple, table: str, default_nation: int) -> int:
        """Nation-key value for the appended throughput-benchmark column."""
        if table == "nation":
            return row[0]
        if table == "region":
            return default_nation
        return default_nation
