"""TPC-H workload substrate.

The paper's performance benchmark (Section 6.1) runs five custom queries over
TPC-H data generated with ``dbgen`` (1 GB per node); the throughput benchmark
(Section 6.2) partitions the same schema into supplier/retailer sub-schemas by
nation.  This package is the reproduction's ``dbgen``:

* :mod:`~repro.tpch.schema` — the eight TPC-H tables plus the secondary
  index set of the paper's Table 4,
* :mod:`~repro.tpch.dbgen` — a deterministic, seeded generator producing
  uniformly distributed rows with per-peer disjoint key ranges,
* :mod:`~repro.tpch.queries` — the benchmark queries Q1-Q5 and the
  supplier/retailer throughput queries,
* :mod:`~repro.tpch.partition` — the nation-based supply-chain partitioning.
"""

from repro.tpch.schema import (
    SECONDARY_INDICES,
    TPCH_SCHEMAS,
    create_tpch_tables,
    schema_for,
)
from repro.tpch.dbgen import TpchGenerator
from repro.tpch.queries import (
    Q1,
    Q2,
    Q3,
    Q4,
    Q5,
    retailer_throughput_query,
    supplier_throughput_query,
)
from repro.tpch.partition import (
    COMMON_TABLES,
    RETAILER_TABLES,
    SUPPLIER_TABLES,
    SupplyChainPartitioner,
)

__all__ = [
    "TPCH_SCHEMAS",
    "SECONDARY_INDICES",
    "schema_for",
    "create_tpch_tables",
    "TpchGenerator",
    "Q1",
    "Q2",
    "Q3",
    "Q4",
    "Q5",
    "supplier_throughput_query",
    "retailer_throughput_query",
    "SUPPLIER_TABLES",
    "RETAILER_TABLES",
    "COMMON_TABLES",
    "SupplyChainPartitioner",
]
