"""The TPC-H global shared schema.

"We use the original TPC-H schema as the shared global schema" (§6.1.4).
Every peer contributes a horizontal partition of each table.  For the
throughput benchmark the paper adds a nation-key column to each table
("we modify the original TPC-H schema and add a nation key column in each
table", §6.2.1) — pass ``with_nation_key=True`` to get that variant.

``SECONDARY_INDICES`` reproduces the paper's Table 4: the secondary indexes
built on selected columns during data loading (the exact table contents are
reconstructed from the columns the five benchmark queries filter on).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sqlengine import Column, ColumnType, Database, TableSchema

_I = ColumnType.INTEGER
_F = ColumnType.FLOAT
_T = ColumnType.TEXT
_D = ColumnType.DATE

# (table, [(column, type)], primary_key)
_TABLE_DEFS: List[Tuple[str, List[Tuple[str, ColumnType]], str]] = [
    (
        "region",
        [("r_regionkey", _I), ("r_name", _T), ("r_comment", _T)],
        "r_regionkey",
    ),
    (
        "nation",
        [
            ("n_nationkey", _I),
            ("n_name", _T),
            ("n_regionkey", _I),
            ("n_comment", _T),
        ],
        "n_nationkey",
    ),
    (
        "supplier",
        [
            ("s_suppkey", _I),
            ("s_name", _T),
            ("s_address", _T),
            ("s_nationkey", _I),
            ("s_phone", _T),
            ("s_acctbal", _F),
            ("s_comment", _T),
        ],
        "s_suppkey",
    ),
    (
        "customer",
        [
            ("c_custkey", _I),
            ("c_name", _T),
            ("c_address", _T),
            ("c_nationkey", _I),
            ("c_phone", _T),
            ("c_acctbal", _F),
            ("c_mktsegment", _T),
            ("c_comment", _T),
        ],
        "c_custkey",
    ),
    (
        "part",
        [
            ("p_partkey", _I),
            ("p_name", _T),
            ("p_mfgr", _T),
            ("p_brand", _T),
            ("p_type", _T),
            ("p_size", _I),
            ("p_container", _T),
            ("p_retailprice", _F),
            ("p_comment", _T),
        ],
        "p_partkey",
    ),
    (
        "partsupp",
        [
            ("ps_partkey", _I),
            ("ps_suppkey", _I),
            ("ps_availqty", _I),
            ("ps_supplycost", _F),
            ("ps_comment", _T),
        ],
        # Composite (ps_partkey, ps_suppkey) in TPC-H; the engine indexes
        # both columns separately instead (see SECONDARY_INDICES).
        None,
    ),
    (
        "orders",
        [
            ("o_orderkey", _I),
            ("o_custkey", _I),
            ("o_orderstatus", _T),
            ("o_totalprice", _F),
            ("o_orderdate", _D),
            ("o_orderpriority", _T),
            ("o_clerk", _T),
            ("o_shippriority", _I),
            ("o_comment", _T),
        ],
        "o_orderkey",
    ),
    (
        "lineitem",
        [
            ("l_orderkey", _I),
            ("l_partkey", _I),
            ("l_suppkey", _I),
            ("l_linenumber", _I),
            ("l_quantity", _F),
            ("l_extendedprice", _F),
            ("l_discount", _F),
            ("l_tax", _F),
            ("l_returnflag", _T),
            ("l_linestatus", _T),
            ("l_shipdate", _D),
            ("l_commitdate", _D),
            ("l_receiptdate", _D),
            ("l_shipinstruct", _T),
            ("l_shipmode", _T),
            ("l_comment", _T),
        ],
        None,
    ),
]

# Nation-key column added per table for the throughput benchmark (§6.2.1).
NATION_KEY_COLUMNS: Dict[str, str] = {
    "region": "rn_nationkey",
    "nation": "nn_nationkey",
    "supplier": "s_nationkey",   # already present in the base schema
    "customer": "c_nationkey",   # already present in the base schema
    "part": "p_nationkey",
    "partsupp": "ps_nationkey",
    "orders": "o_nationkey",
    "lineitem": "l_nationkey",
}

# Table 4 of the paper: secondary indexes built during data loading, on the
# columns the benchmark queries filter or join on.
SECONDARY_INDICES: Dict[str, List[str]] = {
    "lineitem": ["l_shipdate", "l_commitdate", "l_orderkey", "l_suppkey"],
    "orders": ["o_orderdate", "o_custkey"],
    "part": ["p_size"],
    "partsupp": ["ps_partkey", "ps_suppkey"],
    "customer": ["c_nationkey"],
    "supplier": ["s_nationkey"],
}

TABLE_NAMES = [name for name, _, _ in _TABLE_DEFS]


def schema_for(table: str, with_nation_key: bool = False) -> TableSchema:
    """Build the :class:`TableSchema` for one TPC-H table."""
    for name, columns, primary_key in _TABLE_DEFS:
        if name != table.lower():
            continue
        column_objects = [
            Column(column_name, column_type)
            for column_name, column_type in columns
        ]
        if with_nation_key:
            extra = NATION_KEY_COLUMNS[name]
            if all(column.name != extra for column in column_objects):
                column_objects.append(Column(extra, _I))
        return TableSchema(name, column_objects, primary_key)
    raise KeyError(f"not a TPC-H table: {table!r}")


TPCH_SCHEMAS: Dict[str, TableSchema] = {
    name: schema_for(name) for name in TABLE_NAMES
}


def create_tpch_tables(
    database: Database,
    tables: List[str] = None,
    with_nation_key: bool = False,
    with_secondary_indices: bool = True,
) -> None:
    """Create (a subset of) the TPC-H tables in ``database``.

    Mirrors the paper's loading process (§6.1.5): a primary index per table
    on the primary key (automatic) plus the Table-4 secondary indexes.
    """
    for name in tables if tables is not None else TABLE_NAMES:
        database.create_table(schema_for(name, with_nation_key))
        if with_secondary_indices:
            for column in SECONDARY_INDICES.get(name, []):
                database.table(name).create_index(f"idx_{name}_{column}", column)
