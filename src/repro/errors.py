"""Exception hierarchy for the BestPeer++ reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate on the specific subclass.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """A violation of simulation invariants (e.g., time moving backwards)."""


class NetworkError(SimulationError):
    """A message could not be delivered (unknown host, partitioned link)."""


class TransientNetworkError(NetworkError):
    """A delivery failed for a reason that may clear on retry.

    Raised by the fault-injection layer for dropped messages and transient
    peer unavailability windows.  Callers should retry (with backoff)
    rather than treat the destination as crashed.
    """


class RpcTimeoutError(TransientNetworkError):
    """A delivery exceeded its timeout (slow link or overloaded receiver)."""


class CloudError(SimulationError):
    """Cloud-adapter failure (unknown instance, double-terminate, ...)."""

class InstanceNotFound(CloudError):
    """The referenced cloud instance does not exist."""


class InstanceStateError(CloudError):
    """The instance is in the wrong state for the requested operation."""


class SqlError(ReproError):
    """Base class for errors raised by the embedded relational engine."""


class SqlParseError(SqlError):
    """The SQL text could not be parsed."""


class SqlCatalogError(SqlError):
    """Unknown or duplicate table/column/index."""


class SqlTypeError(SqlError):
    """A value does not conform to the declared column type."""


class SqlExecutionError(SqlError):
    """Runtime failure while executing a query plan."""


class BatonError(ReproError):
    """Base class for BATON overlay errors."""


class BatonRangeError(BatonError):
    """A key or range falls outside the overlay's value domain."""


class ReplicaUnavailableError(BatonError):
    """An item's primary is offline and no online replica holds a copy."""


class MigrationCensusError(BatonError):
    """A load-balancing migration lost or duplicated an index entry."""


class MapReduceError(ReproError):
    """Base class for MapReduce engine errors."""


class HdfsError(MapReduceError):
    """Simulated HDFS failure (missing file, missing block replica)."""


class BestPeerError(ReproError):
    """Base class for BestPeer++ core errors."""


class MembershipError(BestPeerError):
    """Join/departure protocol violation (bad certificate, blacklisted peer)."""


class CertificateError(MembershipError):
    """Certificate is missing, expired, revoked or forged."""


class AccessControlError(BestPeerError):
    """The user's role does not permit the requested access."""


class SchemaMappingError(BestPeerError):
    """Local-to-global schema mapping is missing or inconsistent."""


class QueryRejectedError(BestPeerError):
    """A peer rejected a query (snapshot timestamp newer than local data)."""


class PeerUnavailableError(BestPeerError):
    """A required peer is offline and fail-over has not completed yet."""


class BootstrapUnavailableError(PeerUnavailableError):
    """The bootstrap leader is down and the standby has not promoted yet."""


class LeadershipError(BestPeerError):
    """Lease/epoch protocol violation (lease held elsewhere, bad renewal)."""


class StaleLeaderError(LeadershipError):
    """A fenced ex-leader tried to act after losing (or outliving) its lease."""


class ServingError(BestPeerError):
    """Base class for serving front-door errors."""


class AdmissionRejectedError(ServingError):
    """The front door shed a request instead of admitting it.

    ``reason`` is one of the :mod:`repro.serving.admission` shed reasons;
    ``retry_after_s`` is the server-supplied hint a well-behaved client
    feeds into :meth:`repro.core.resilience.RetryPolicy.backoff_s` so shed
    traffic backs off instead of hammering the front door.
    """

    def __init__(
        self,
        message: str,
        tenant: str,
        lane: str,
        reason: str,
        retry_after_s: float,
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.lane = lane
        self.reason = reason
        self.retry_after_s = retry_after_s


class ChaosEquivalenceError(ReproError):
    """A chaos run diverged from the fault-free baseline (or is misconfigured)."""
