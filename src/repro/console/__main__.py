"""Console entry point: interactive REPL or script runner.

Usage::

    python -m repro.console              # interactive
    python -m repro.console setup.bp     # run a command script
"""

from __future__ import annotations

import sys

from repro.console.commands import Console, ConsoleError
from repro.errors import ReproError


def run_file(path: str) -> int:
    console = Console()
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            try:
                output = console.execute(line)
            except ReproError as error:
                print(f"{path}:{line_number}: error: {error}", file=sys.stderr)
                return 1
            if output:
                print(output)
    return 0


def repl() -> int:
    console = Console()
    print("BestPeer++ console — type 'help' for commands, 'exit' to leave")
    while True:
        try:
            line = input("bestpeer> ")
        except EOFError:
            print()
            return 0
        if line.strip() in ("exit", "quit"):
            return 0
        try:
            output = console.execute(line)
        except ReproError as error:
            print(f"error: {error}")
            continue
        if output:
            print(output)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        return run_file(argv[0])
    return repl()


if __name__ == "__main__":
    sys.exit(main())
