"""Console command processor.

Commands (one per line; ``#`` starts a comment):

    schema CREATE TABLE t (...)          collect a global table definition
    network create                        instantiate the network
    peer add <id> [type=m1.small] [tables=a,b]
    peer list | peer depart <id> | peer crash <id>
    load <peer> <table> <file.csv>        or inline: load p t 1,foo;2,bar
    role full <name>                      full access to every table
    role define <name> <table.col:rw[:low..high]> ...
    user create <name> <origin-peer> <role>
    sql [engine=basic] [user=<u>] [peer=<p>] SELECT ...
    explain [peer=<p>] SELECT ...         show a peer's local physical plan
    histogram <table> <col> [col...]      build + register a histogram
    maintenance                           run one Algorithm-1 epoch
    bootstrap status                      HA pair: leader, epoch, log, lag
    serving status                        front door: queues, SLO counters
    baton status                          overlay: per-node load, balancing
    baton rebalance                       one measured-load balancing round
    metrics | status | billing <hours> | help
"""

from __future__ import annotations

import csv
import io
import os
import shlex
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import BestPeerNetwork, READ, Role, WRITE, rule
from repro.core.config import DEFAULT_ENGINE, DEFAULT_INSTANCE_TYPE
from repro.errors import ReproError
from repro.sqlengine.parser import CreateTableStmt, parse
from repro.sqlengine.schema import TableSchema


class ConsoleError(ReproError):
    """A command could not be executed (bad syntax, wrong state)."""


class Console:
    """Stateful command processor over one BestPeer++ deployment."""

    def __init__(self, network: Optional[BestPeerNetwork] = None) -> None:
        self.network = network
        self._pending_schemas: Dict[str, TableSchema] = {}
        self._handlers: Dict[str, Callable[[str], str]] = {
            "schema": self._cmd_schema,
            "network": self._cmd_network,
            "peer": self._cmd_peer,
            "load": self._cmd_load,
            "role": self._cmd_role,
            "user": self._cmd_user,
            "sql": self._cmd_sql,
            "explain": self._cmd_explain,
            "histogram": self._cmd_histogram,
            "maintenance": self._cmd_maintenance,
            "bootstrap": self._cmd_bootstrap,
            "serving": self._cmd_serving,
            "baton": self._cmd_baton,
            "metrics": self._cmd_metrics,
            "status": self._cmd_status,
            "billing": self._cmd_billing,
            "help": self._cmd_help,
        }

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def execute(self, line: str) -> str:
        """Run one command line; returns its output text."""
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            return ""
        keyword, _, rest = stripped.partition(" ")
        handler = self._handlers.get(keyword.lower())
        if handler is None:
            raise ConsoleError(
                f"unknown command {keyword!r}; try 'help'"
            )
        return handler(rest.strip())

    def run_script(self, lines: Sequence[str]) -> List[str]:
        """Run many commands; returns the non-empty outputs."""
        outputs = []
        for line in lines:
            output = self.execute(line)
            if output:
                outputs.append(output)
        return outputs

    # ------------------------------------------------------------------
    # Schema / network lifecycle
    # ------------------------------------------------------------------
    def _cmd_schema(self, rest: str) -> str:
        statement = parse(rest)
        if not isinstance(statement, CreateTableStmt):
            raise ConsoleError("schema expects a CREATE TABLE statement")
        schema = TableSchema(
            statement.name, statement.columns, statement.primary_key
        )
        self._pending_schemas[schema.name] = schema
        return f"schema {schema.name} ({len(schema.columns)} columns) staged"

    def _cmd_network(self, rest: str) -> str:
        if rest != "create":
            raise ConsoleError("usage: network create")
        if self.network is not None:
            raise ConsoleError("network already created")
        if not self._pending_schemas:
            raise ConsoleError("define at least one schema first")
        self.network = BestPeerNetwork(self._pending_schemas)
        return (
            f"network created with global schema: "
            f"{', '.join(sorted(self._pending_schemas))}"
        )

    # ------------------------------------------------------------------
    # Peers
    # ------------------------------------------------------------------
    def _cmd_peer(self, rest: str) -> str:
        net = self._require_network()
        parts = shlex.split(rest)
        if not parts:
            raise ConsoleError("usage: peer add|list|depart|crash ...")
        action, args = parts[0], parts[1:]
        if action == "list":
            if not net.peers:
                return "no peers"
            lines = []
            for peer_id in sorted(net.peers):
                peer = net.peers[peer_id]
                lines.append(
                    f"{peer_id}: instance={peer.host} "
                    f"type={peer.instance.instance_type.name} "
                    f"online={peer.online}"
                )
            return "\n".join(lines)
        if action == "add":
            if not args:
                raise ConsoleError("usage: peer add <id> [type=..] [tables=..]")
            peer_id = args[0]
            options = _parse_options(args[1:])
            tables = (
                options["tables"].split(",") if "tables" in options else None
            )
            peer = net.add_peer(
                peer_id,
                instance_type=options.get("type", DEFAULT_INSTANCE_TYPE),
                tables=tables,
            )
            return f"peer {peer_id} joined on instance {peer.host}"
        if action == "depart":
            net.depart_peer(self._one_arg(args, "peer depart <id>"))
            return f"peer {args[0]} departed"
        if action == "crash":
            net.crash_peer(self._one_arg(args, "peer crash <id>"))
            return f"peer {args[0]} crashed"
        raise ConsoleError(f"unknown peer action {action!r}")

    # ------------------------------------------------------------------
    # Data loading
    # ------------------------------------------------------------------
    def _cmd_load(self, rest: str) -> str:
        net = self._require_network()
        parts = shlex.split(rest)
        if len(parts) != 3:
            raise ConsoleError("usage: load <peer> <table> <file.csv|inline>")
        peer_id, table, source = parts
        schema = net.global_schemas.get(table.lower())
        if schema is None:
            raise ConsoleError(f"unknown table {table!r}")
        rows = _read_rows(source)
        net.load_peer(peer_id, {table: rows})
        return f"loaded {len(rows)} rows into {table} at {peer_id}"

    # ------------------------------------------------------------------
    # Roles and users
    # ------------------------------------------------------------------
    def _cmd_role(self, rest: str) -> str:
        net = self._require_network()
        parts = shlex.split(rest)
        if len(parts) < 2:
            raise ConsoleError("usage: role full <name> | role define <name> <rules>")
        action, name = parts[0], parts[1]
        if action == "full":
            net.create_full_access_role(name)
            return f"role {name} defined (full access)"
        if action == "define":
            rules = [_parse_rule(text) for text in parts[2:]]
            if not rules:
                raise ConsoleError("role define needs at least one rule")
            net.define_role(Role(name, rules))
            return f"role {name} defined ({len(rules)} rules)"
        raise ConsoleError(f"unknown role action {action!r}")

    def _cmd_user(self, rest: str) -> str:
        net = self._require_network()
        parts = shlex.split(rest)
        if len(parts) != 4 or parts[0] != "create":
            raise ConsoleError("usage: user create <name> <origin-peer> <role>")
        _, user, origin, role_name = parts
        role = net.bootstrap.roles.get(role_name)
        if role is None:
            raise ConsoleError(f"unknown role {role_name!r}")
        net.create_user(user, origin, role)
        return f"user {user} created at {origin} with role {role_name}"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _cmd_sql(self, rest: str) -> str:
        net = self._require_network()
        options, sql = _leading_options(rest)
        if not sql:
            raise ConsoleError("usage: sql [engine=..] [user=..] [peer=..] SELECT ...")
        execution = net.execute(
            sql,
            peer_id=options.get("peer"),
            engine=options.get("engine", DEFAULT_ENGINE),
            user=options.get("user"),
        )
        lines = [
            " | ".join(execution.columns),
        ]
        for row in execution.records[:20]:
            lines.append(" | ".join(_render(value) for value in row))
        if len(execution.records) > 20:
            lines.append(f"... ({len(execution.records) - 20} more rows)")
        lines.append(
            f"-- {len(execution.records)} rows, {execution.strategy}, "
            f"{execution.latency_s:.3f}s simulated, "
            f"{execution.bytes_transferred:,} bytes, "
            f"${execution.dollar_cost:.6f}"
        )
        return "\n".join(lines)

    def _cmd_explain(self, rest: str) -> str:
        """Explain a query against one peer's local engine."""
        net = self._require_network()
        options, sql = _leading_options(rest)
        if not sql:
            raise ConsoleError("usage: explain [peer=<p>] SELECT ...")
        peer_id = options.get("peer") or sorted(net.peers)[0]
        peer = net.peers.get(peer_id)
        if peer is None:
            raise ConsoleError(f"unknown peer {peer_id!r}")
        return peer.database.explain(sql)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _cmd_histogram(self, rest: str) -> str:
        net = self._require_network()
        parts = shlex.split(rest)
        if len(parts) < 2:
            raise ConsoleError("usage: histogram <table> <col> [col...]")
        histogram = net.build_histogram(parts[0], parts[1:])
        return (
            f"histogram on {parts[0]}({', '.join(parts[1:])}): "
            f"{len(histogram.buckets)} buckets, "
            f"{histogram.relation_size()} tuples"
        )

    def _cmd_maintenance(self, rest: str) -> str:
        net = self._require_network()
        report = net.run_maintenance()
        return (
            f"failovers={len(report.failovers)} "
            f"scalings={len(report.scalings)} "
            f"released={len(report.released_instances)} "
            f"notified={report.notified_peers}"
        )

    def _cmd_bootstrap(self, rest: str) -> str:
        """Report the bootstrap HA pair's health (leader, log, lag)."""
        if rest != "status":
            raise ConsoleError("usage: bootstrap status")
        net = self._require_network()
        cluster = net.bootstrap_cluster
        lines = [
            f"leader: {cluster.leader_id} (epoch {cluster.epoch}, "
            f"online={cluster.leader.online})",
            f"log: {len(cluster.leader.log)} entries, "
            f"{cluster.promotions} promotion(s)",
        ]
        lag = cluster.replication_lag()
        for node_id in sorted(lag):
            lines.append(f"  standby {node_id}: {lag[node_id]} entries behind")
        events = net.metrics.recent_events()
        if events:
            lines.append("recent events:")
            for when, description in events:
                lines.append(f"  t={when:.1f}s {description}")
        return "\n".join(lines)

    def _cmd_serving(self, rest: str) -> str:
        """Report the serving front door's queues and per-tenant SLOs."""
        if rest != "status":
            raise ConsoleError("usage: serving status")
        net = self._require_network()
        if net.serving is None and not net.metrics.serving:
            return "serving front door not attached (BestPeerNetwork.attach_serving)"
        lines = []
        if net.serving is not None:
            lines.append(net.serving.status())
        if net.metrics.serving:
            lines.append("per-tenant SLOs:")
            for tenant, lane in sorted(net.metrics.serving):
                stats = net.metrics.serving[(tenant, lane)]
                lines.append(
                    f"  {tenant}/{lane}: offered={stats.offered} "
                    f"admitted={stats.admitted} "
                    f"completed={stats.completed} failed={stats.failed} "
                    f"shed={stats.shed} "
                    f"(full={stats.shed_queue_full}, "
                    f"backpressure={stats.shed_backpressure}) "
                    f"deadline_missed={stats.deadline_missed}"
                )
                if stats.e2e_latency.count:
                    lines.append(
                        f"    wait p50={stats.queue_wait.percentile(0.5):.3f}s "
                        f"p99={stats.queue_wait.percentile(0.99):.3f}s | "
                        f"e2e p50={stats.e2e_latency.percentile(0.5):.3f}s "
                        f"p99={stats.e2e_latency.percentile(0.99):.3f}s"
                    )
        return "\n".join(lines)

    def _cmd_baton(self, rest: str) -> str:
        """Report or drive the BATON overlay's load balancing."""
        net = self._require_network()
        if rest == "rebalance":
            report = net.rebalance_overlay()
            return (
                f"rebalance: hot={len(report.hot_nodes)} "
                f"migrations={report.migrations} "
                f"entries_moved={report.entries_moved} "
                f"max/mean {report.ratio_before:.2f} -> "
                f"{report.ratio_after:.2f}"
            )
        if rest != "status":
            raise ConsoleError("usage: baton status | baton rebalance")
        balancer = net.load_balancer
        tree = balancer.tree
        nodes = tree.nodes()
        if not nodes:
            return "overlay is empty"
        mean = balancer.mean_score()
        hot_ids = {node.node_id for node in balancer.hot_nodes()}
        lines = [
            f"overlay: {len(nodes)} node(s), "
            f"mean load={mean:.2f}, "
            f"max/mean={balancer.max_mean_ratio():.2f}, "
            f"hot(>{net.load_balancer.config.hot_multiple:g}x mean)="
            f"{len(hot_ids)}",
            f"balancing: rounds={balancer.rounds} "
            f"migrations={balancer.total_migrations} "
            f"entries_moved={balancer.total_entries_moved} "
            f"census_checks={balancer.census_checks}",
            f"replica reads: fanout={net.overlay.fanout_reads} "
            f"failover={net.overlay.failover_reads}",
        ]
        for node in sorted(nodes, key=lambda n: n.node_id):
            load = node.load
            marker = " HOT" if node.node_id in hot_ids else ""
            lines.append(
                f"  {node.node_id}: score={load.score():.2f} "
                f"routing={load.routing_hits} reads={load.reads} "
                f"writes={load.writes} entries={len(node.items)}"
                f"{marker}"
            )
        return "\n".join(lines)

    def _cmd_metrics(self, rest: str) -> str:
        return self._require_network().metrics.summary()

    def _cmd_status(self, rest: str) -> str:
        net = self._require_network()
        faults = net.metrics.faults
        lines = [
            f"peers: {len(net.peers)}",
            f"simulated time: {net.clock.now:.1f}s",
            f"bytes on the wire so far: {net.network.total.bytes:,}",
            "faults absorbed: "
            + ", ".join(
                f"{name}={value}" for name, value in faults.as_dict().items()
            ),
            f"plan cache: hits={net.metrics.plan_cache_hits}, "
            f"misses={net.metrics.plan_cache_misses}",
        ]
        for peer_id in sorted(net.peers):
            peer = net.peers[peer_id]
            lines.append(
                f"  {peer_id}: {peer.instance.instance_type.name}, "
                f"{peer.database.total_bytes:,} bytes in "
                f"{len(peer.database.table_names())} tables, "
                f"online={peer.online}"
            )
        return "\n".join(lines)

    def _cmd_billing(self, rest: str) -> str:
        net = self._require_network()
        try:
            hours = float(rest)
        except ValueError:
            raise ConsoleError("usage: billing <hours>") from None
        lines = []
        total = 0.0
        for peer_id in sorted(net.peers):
            charge = net.cloud.bill(net.peers[peer_id].host, hours)
            total += charge
            lines.append(f"  {peer_id}: ${charge:.4f}")
        lines.append(f"total for {hours:g}h: ${total:.4f}")
        return "\n".join(lines)

    def _cmd_help(self, rest: str) -> str:
        return __doc__.strip()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_network(self) -> BestPeerNetwork:
        if self.network is None:
            raise ConsoleError("no network yet; run 'network create' first")
        return self.network

    @staticmethod
    def _one_arg(args: Sequence[str], usage: str) -> str:
        if len(args) != 1:
            raise ConsoleError(f"usage: {usage}")
        return args[0]


# ----------------------------------------------------------------------
# Parsing helpers
# ----------------------------------------------------------------------
def _parse_options(parts: Sequence[str]) -> Dict[str, str]:
    options: Dict[str, str] = {}
    for part in parts:
        if "=" not in part:
            raise ConsoleError(f"expected key=value, got {part!r}")
        key, _, value = part.partition("=")
        options[key] = value
    return options


def _leading_options(rest: str) -> Tuple[Dict[str, str], str]:
    """Split ``engine=.. user=.. SELECT ...`` into options + SQL."""
    options: Dict[str, str] = {}
    tokens = rest.split()
    index = 0
    while index < len(tokens) and "=" in tokens[index] and not tokens[
        index
    ].upper().startswith("SELECT"):
        key, _, value = tokens[index].partition("=")
        options[key.lower()] = value
        index += 1
    return options, " ".join(tokens[index:])


def _read_rows(source: str) -> List[tuple]:
    """Rows from a CSV file path, or inline ``a,b;c,d`` text."""
    if os.path.exists(source):
        with open(source, newline="") as handle:
            return [tuple(_coerce(v) for v in row) for row in csv.reader(handle)]
    reader = csv.reader(io.StringIO(source.replace(";", "\n")))
    rows = [tuple(_coerce(value) for value in row) for row in reader]
    if not rows:
        raise ConsoleError(f"no rows in {source!r}")
    return rows


def _coerce(text: str) -> object:
    text = text.strip()
    if text == "" or text.upper() == "NULL":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_rule(text: str):
    """``table.col:rw`` or ``table.col:r:0..100`` -> an AccessRule."""
    pieces = text.split(":")
    if len(pieces) not in (2, 3):
        raise ConsoleError(
            f"rule format is table.col:privs[:low..high], got {text!r}"
        )
    column, privileges = pieces[0], pieces[1].lower()
    if not privileges or set(privileges) - {"r", "w"}:
        raise ConsoleError(f"privileges are 'r', 'w' or 'rw', got {pieces[1]!r}")
    privs = []
    if "r" in privileges:
        privs.append(READ)
    if "w" in privileges:
        privs.append(WRITE)
    value_range = None
    if len(pieces) == 3:
        low_text, separator, high_text = pieces[2].partition("..")
        if not separator:
            raise ConsoleError(f"range format is low..high, got {pieces[2]!r}")
        value_range = (_coerce(low_text), _coerce(high_text))
    return rule(column, privs, value_range)


def _render(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
