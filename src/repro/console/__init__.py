"""The administrator console.

"Through a web console interface, companies can easily configure their
access control policies" (§1) and local administrators manage users and
roles (§4.4).  This package is that surface, as a scriptable command console:
define the global schema, launch peers, load data (inline or from CSV),
define roles with value-range rules, create users, submit SQL through any
engine, and inspect metrics/billing/maintenance — all against an in-process
:class:`~repro.core.network.BestPeerNetwork`.

Interactive:  ``python -m repro.console``
Scripted:     ``python -m repro.console script.bp``
Embedded:     ``Console().run_script([...])``
"""

from repro.console.commands import Console, ConsoleError

__all__ = ["Console", "ConsoleError"]
