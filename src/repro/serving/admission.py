"""Bounded per-tenant admission queues with deadline-aware shedding.

Each (tenant, lane) pair owns one bounded queue.  A request is admitted
only when all three gates pass, and otherwise is rejected *immediately*
with a retry-after hint — nothing ever queues forever:

1. **deadline feasibility** — if the scheduler's current estimated queue
   delay already overruns the request's deadline, admitting it would only
   burn a worker on a result nobody can use (counted ``deadline_missed``),
2. **backpressure** — when worker saturation pushes the estimated delay
   past ``ServingConfig.bulk_backpressure_s``, new *bulk* requests are
   shed while interactive ones still queue: the analytics lane degrades
   first, by design (counted ``shed_backpressure``),
3. **queue bound** — a full (tenant, lane) queue sheds the newcomer
   (counted ``shed_queue_full``), so one tenant's flash crowd cannot grow
   state without limit or starve the other tenants' queues.

The queues themselves are ``deque(maxlen=...)`` — the bound is structural,
which is exactly what the RES003 analysis rule checks for on this package.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.config import (
    DEFAULT_ENGINE,
    LANE_INTERACTIVE,
    SERVING_LANES,
    ServingConfig,
)
from repro.errors import AdmissionRejectedError, ServingError

#: Why a request was not admitted.
REASON_QUEUE_FULL = "queue_full"
REASON_BACKPRESSURE = "backpressure"
REASON_DEADLINE = "deadline"
SHED_REASONS = (REASON_QUEUE_FULL, REASON_BACKPRESSURE, REASON_DEADLINE)


@dataclass(frozen=True)
class ServingRequest:
    """One query as it enters the front door.

    ``deadline_s`` is *relative* to submission time; when omitted the
    lane's default from :class:`~repro.core.config.ServingConfig` applies.
    ``engine``/``user``/``peer_id`` are forwarded verbatim to
    :meth:`repro.core.network.BestPeerNetwork.execute`.
    """

    tenant: str
    sql: str
    lane: str = LANE_INTERACTIVE
    deadline_s: Optional[float] = None
    engine: str = DEFAULT_ENGINE
    user: Optional[str] = None
    peer_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ServingError("a request needs a tenant")
        if self.lane not in SERVING_LANES:
            raise ServingError(
                f"unknown lane {self.lane!r}; pick one of {SERVING_LANES}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ServingError(
                f"relative deadline must be positive: {self.deadline_s}"
            )


@dataclass
class QueuedRequest:
    """An admitted request waiting for a worker."""

    request: ServingRequest
    submitted_at: float
    deadline_at: float


@dataclass(frozen=True)
class AdmissionTicket:
    """The front door's immediate answer to one submission."""

    tenant: str
    lane: str
    admitted: bool
    reason: Optional[str] = None  # a SHED_REASONS member when not admitted
    retry_after_s: float = 0.0
    queue_depth: int = 0  # lane occupancy right after the decision

    def raise_if_shed(self) -> "AdmissionTicket":
        """Turn a rejection into the typed error clients retry on."""
        if self.admitted:
            return self
        raise AdmissionRejectedError(
            f"request shed for tenant {self.tenant!r} lane {self.lane!r}: "
            f"{self.reason} (retry after {self.retry_after_s:.3f}s)",
            tenant=self.tenant,
            lane=self.lane,
            reason=self.reason or "unknown",
            retry_after_s=self.retry_after_s,
        )


class AdmissionController:
    """Owns the bounded queues and the three admission gates."""

    def __init__(self, config: ServingConfig) -> None:
        self.config = config
        self._queues: Dict[Tuple[str, str], Deque[QueuedRequest]] = {}

    # ------------------------------------------------------------------
    # Queue surface
    # ------------------------------------------------------------------
    def queue(self, tenant: str, lane: str) -> Deque[QueuedRequest]:
        key = (tenant, lane)
        q = self._queues.get(key)
        if q is None:
            q = deque(maxlen=self.config.queue_depth)
            self._queues[key] = q
        return q

    def depth(self, tenant: str, lane: str) -> int:
        q = self._queues.get((tenant, lane))
        return 0 if q is None else len(q)

    def backlog(self) -> int:
        """Total requests queued across every tenant and lane."""
        return sum(len(q) for q in self._queues.values())

    def tenants_with_backlog(self, lane: str) -> List[str]:
        """Tenants holding queued requests in ``lane``, in stable order."""
        return sorted(
            tenant
            for (tenant, queued_lane), q in self._queues.items()
            if queued_lane == lane and q
        )

    def pop(self, tenant: str, lane: str) -> Optional[QueuedRequest]:
        """Dequeue the oldest request of one (tenant, lane), if any."""
        q = self._queues.get((tenant, lane))
        if not q:
            return None
        return q.popleft()

    # ------------------------------------------------------------------
    # The admission decision
    # ------------------------------------------------------------------
    def offer(
        self,
        request: ServingRequest,
        now: float,
        estimated_delay_s: float,
        retry_after_s: float,
    ) -> Tuple[AdmissionTicket, Optional[QueuedRequest]]:
        """Admit or shed one request at time ``now``.

        ``estimated_delay_s`` is the scheduler's current queue-delay
        estimate (the backpressure signal from worker saturation);
        ``retry_after_s`` is the hint attached to any rejection.  Returns
        the ticket plus the queued entry when admitted.
        """
        deadline_at = now + (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.lane_deadline_s(request.lane)
        )
        if now + estimated_delay_s > deadline_at:
            return self._shed(request, REASON_DEADLINE, retry_after_s), None
        if (
            request.lane != LANE_INTERACTIVE
            and estimated_delay_s > self.config.bulk_backpressure_s
        ):
            return (
                self._shed(request, REASON_BACKPRESSURE, retry_after_s),
                None,
            )
        q = self.queue(request.tenant, request.lane)
        if len(q) >= self.config.queue_depth:
            return self._shed(request, REASON_QUEUE_FULL, retry_after_s), None
        queued = QueuedRequest(
            request=request, submitted_at=now, deadline_at=deadline_at
        )
        q.append(queued)
        ticket = AdmissionTicket(
            tenant=request.tenant,
            lane=request.lane,
            admitted=True,
            queue_depth=len(q),
        )
        return ticket, queued

    def _shed(
        self, request: ServingRequest, reason: str, retry_after_s: float
    ) -> AdmissionTicket:
        return AdmissionTicket(
            tenant=request.tenant,
            lane=request.lane,
            admitted=False,
            reason=reason,
            retry_after_s=retry_after_s,
            queue_depth=self.depth(request.tenant, request.lane),
        )
