"""The serving front door: clock-driven dispatch over a worker pool.

:class:`ServingFrontDoor` is the one gate every query passes on its way to
an engine.  It runs a discrete-event loop on the simulated clock:

* **submit** — callers hand in :class:`~repro.serving.admission.ServingRequest`
  objects in nondecreasing time order (an open-loop arrival stream).  Each
  submission first advances the serving timeline to the arrival instant —
  completing any worker that finished in the meantime — then faces the
  admission gates with the *current* saturation estimate, so backpressure
  genuinely propagates from the worker pool to the front door.
* **dispatch** — whenever a worker is idle, the weighted-fair scheduler
  picks the next (tenant, lane); a queued request whose deadline already
  passed is dropped (``deadline_missed``) instead of wasting the worker.
  The executor — typically :meth:`BestPeerNetwork.execute` — runs the
  query; its simulated latency becomes the worker's busy time, and the
  completion is scheduled on an :class:`~repro.sim.events.EventQueue`.
* **drain** — processes events until every queue is empty, returning the
  simulated time at which the last admitted request completed.

Engine failures are never swallowed silently: a request whose execution
raises a library error is counted ``failed``, the typed error is kept in a
bounded error feed, and an operational event is recorded in the metrics
registry.  After a drain, per (tenant, lane):
``offered == admitted + shed + deadline_missed`` and
``admitted == completed + failed`` — the property suite holds the front
door to exactly this accounting.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.core.config import SERVING_LANES, ServingConfig
from repro.core.metrics import LaneServingStats, MetricsRegistry
from repro.errors import ReproError, ServingError
from repro.serving.admission import (
    AdmissionController,
    AdmissionTicket,
    QueuedRequest,
    REASON_BACKPRESSURE,
    REASON_DEADLINE,
    REASON_QUEUE_FULL,
    ServingRequest,
)
from repro.serving.scheduler import WeightedFairScheduler
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue

#: How many recent execution failures the front door keeps inspectable.
ERROR_FEED_CAPACITY = 64


class ServingFrontDoor:
    """Admission + weighted-fair scheduling + a bounded worker pool.

    ``executor`` is any callable taking a :class:`ServingRequest` and
    returning an execution whose ``latency_s`` is the simulated service
    time (``BestPeerNetwork.execute`` adapted, or a stub in tests).  The
    front door keeps its own monotone serving timeline ``now``: the shared
    :class:`SimClock` advances with each engine call (engine calls are
    serialized in-process), while queue waits and end-to-end latencies are
    computed on the logical timeline where up to ``workers`` requests
    overlap.
    """

    def __init__(
        self,
        clock: SimClock,
        executor: Callable[[ServingRequest], object],
        config: Optional[ServingConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.clock = clock
        self.executor = executor
        self.config = config or ServingConfig()
        self.metrics = metrics or MetricsRegistry()
        self.admission = AdmissionController(self.config)
        self.scheduler = WeightedFairScheduler()
        self.now = clock.now
        self.idle_workers = self.config.workers
        self.service_estimate_s = self.config.initial_service_estimate_s
        self.errors: Deque[Tuple[float, str, str]] = deque(
            maxlen=ERROR_FEED_CAPACITY
        )
        self._completions = EventQueue()

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def register_tenant(self, tenant: str, weight: float = 1.0) -> None:
        """Declare a tenant's fair-share weight (optional; default 1)."""
        self.scheduler.set_weight(tenant, weight)

    # ------------------------------------------------------------------
    # The front of the front door
    # ------------------------------------------------------------------
    def submit(
        self, request: ServingRequest, now: Optional[float] = None
    ) -> AdmissionTicket:
        """Offer one request at time ``now`` (default: the current time).

        Returns the admission ticket; shed requests carry the reason and a
        retry-after hint.  Submissions must arrive in nondecreasing time
        order — the front door is an event loop, not a time machine.
        """
        when = self.now if now is None else now
        if when < self.now:
            raise ServingError(
                f"submissions must arrive in time order: {when} < {self.now}"
            )
        self._advance(when)
        stats = self._stats(request.tenant, request.lane)
        stats.offered += 1
        estimated = self.estimated_queue_delay_s()
        ticket, _ = self.admission.offer(
            request, self.now, estimated, self.retry_after_s(estimated)
        )
        if not ticket.admitted:
            if ticket.reason == REASON_QUEUE_FULL:
                stats.shed_queue_full += 1
            elif ticket.reason == REASON_BACKPRESSURE:
                stats.shed_backpressure += 1
            elif ticket.reason == REASON_DEADLINE:
                stats.deadline_missed += 1
            else:  # pragma: no cover - admission emits only known reasons
                raise ServingError(f"unknown shed reason: {ticket.reason!r}")
        self._pump()
        return ticket

    def advance_to(self, when: float) -> None:
        """Move the serving timeline forward without submitting anything."""
        if when < self.now:
            raise ServingError(
                f"cannot move the front door backwards: {when} < {self.now}"
            )
        self._advance(when)
        self._pump()

    def drain(self) -> float:
        """Run until every queue is empty and every worker is idle."""
        self._pump()
        while self._completions:
            when = self._completions.peek_time()
            self._advance(when)
            self._pump()
        if self.admission.backlog():  # pragma: no cover - defensive
            raise ServingError("drain left requests queued with idle workers")
        return self.now

    # ------------------------------------------------------------------
    # Backpressure signal
    # ------------------------------------------------------------------
    def estimated_queue_delay_s(self) -> float:
        """Expected wait for a newly queued request, from saturation.

        Work ahead of a newcomer is everything queued plus everything on
        a worker, drained by ``workers`` at the smoothed service time.
        """
        busy = self.config.workers - self.idle_workers
        ahead = self.admission.backlog() + busy
        if ahead < self.config.workers:
            return 0.0
        return ahead * self.service_estimate_s / self.config.workers

    def retry_after_s(self, estimated_delay_s: Optional[float] = None) -> float:
        """The hint attached to shed requests: come back once drained."""
        if estimated_delay_s is None:
            estimated_delay_s = self.estimated_queue_delay_s()
        return max(self.config.retry_after_min_s, estimated_delay_s)

    # ------------------------------------------------------------------
    # Event loop internals
    # ------------------------------------------------------------------
    def _advance(self, when: float) -> None:
        """Process completions up to ``when``, dispatching as workers free."""
        while True:
            next_completion = self._completions.peek_time()
            if next_completion is None or next_completion > when:
                break
            finished_at, _tenant = self._completions.pop()
            self.now = max(self.now, finished_at)
            self.idle_workers += 1
            self._pump()
        self.now = max(self.now, when)

    def _pump(self) -> None:
        """Dispatch queued requests while workers are idle."""
        while self.idle_workers > 0:
            queued = self._next_queued()
            if queued is None:
                return
            if queued.deadline_at < self.now:
                # Expired while waiting: drop it at dispatch time so the
                # worker goes to a request that can still meet its SLO.
                stats = self._stats(
                    queued.request.tenant, queued.request.lane
                )
                stats.deadline_missed += 1
                continue
            self._dispatch(queued)

    def _next_queued(self) -> Optional[QueuedRequest]:
        """Weighted-fair pick: interactive lane first, then bulk."""
        for lane in SERVING_LANES:
            candidates = self.admission.tenants_with_backlog(lane)
            if not candidates:
                continue
            tenant = self.scheduler.next_tenant(lane, candidates)
            if tenant is None:  # pragma: no cover - candidates is non-empty
                continue
            queued = self.admission.pop(tenant, lane)
            if queued is not None:
                self.scheduler.charge(tenant, lane)
                return queued
        return None

    def _dispatch(self, queued: QueuedRequest) -> None:
        request = queued.request
        stats = self._stats(request.tenant, request.lane)
        stats.admitted += 1
        wait_s = self.now - queued.submitted_at
        stats.queue_wait.record(wait_s)
        self.idle_workers -= 1
        clock_before = self.clock.now
        try:
            result = self.executor(request)
        except ReproError as error:
            # Surfaced, not swallowed: counted, kept in the error feed and
            # recorded as an operational event.
            service_s = max(0.0, self.clock.now - clock_before)
            stats.failed += 1
            self.errors.append(
                (self.now, request.tenant, f"{type(error).__name__}: {error}")
            )
            self.metrics.record_event(
                self.now,
                f"serving: {request.tenant}/{request.lane} query failed "
                f"({type(error).__name__})",
            )
        else:
            latency = getattr(result, "latency_s", 0.0) or 0.0
            service_s = max(0.0, self.clock.now - clock_before, latency)
            stats.completed += 1
            stats.e2e_latency.record(wait_s + service_s)
        if service_s > 0:
            alpha = self.config.service_ewma_alpha
            self.service_estimate_s = (
                1.0 - alpha
            ) * self.service_estimate_s + alpha * service_s
        self._completions.push(self.now + service_s, request.tenant)

    def _stats(self, tenant: str, lane: str) -> LaneServingStats:
        return self.metrics.serving_lane(
            tenant, lane, sample_capacity=self.config.latency_sample_cap
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def status(self) -> str:
        """A human-readable snapshot for the console."""
        lines = [
            f"workers: {self.config.workers - self.idle_workers} busy / "
            f"{self.config.workers} total",
            f"backlog: {self.admission.backlog()} queued, "
            f"estimated delay {self.estimated_queue_delay_s():.3f}s, "
            f"service estimate {self.service_estimate_s:.3f}s",
        ]
        for (tenant, lane) in sorted(self.metrics.serving):
            depth = self.admission.depth(tenant, lane)
            weight = self.scheduler.weight(tenant)
            lines.append(
                f"  {tenant}/{lane}: queued={depth}/"
                f"{self.config.queue_depth} weight={weight:g}"
            )
        if self.errors:
            lines.append(f"recent failures: {len(self.errors)}")
            for when, tenant, description in list(self.errors)[-3:]:
                lines.append(f"  t={when:.1f}s {tenant}: {description}")
        return "\n".join(lines)
