"""Weighted-fair scheduling across tenants, with priority lanes.

Stride scheduling: every tenant carries a virtual *pass* per lane; each
dispatch advances the dispatched tenant's pass by ``STRIDE_SCALE / weight``
and the scheduler always picks the backlogged tenant with the smallest
pass.  Over a backlogged interval each tenant therefore receives dispatch
share proportional to its weight — the property the hypothesis suite
checks.  A tenant going idle does not bank credit: on its next dispatch
its pass is floored to the lane's global pass, so a returning tenant
cannot burst ahead of tenants that kept the system busy.

Lanes are strictly prioritized: the front door offers the interactive
lane's candidates first and bulk only when no interactive work is queued.
Ties break on the tenant name, keeping every run deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import DEFAULT_TENANT_WEIGHT
from repro.errors import ServingError

#: Pass increments are STRIDE_SCALE / weight; the scale keeps strides well
#: above float noise for any sane weight range.
STRIDE_SCALE = 65536.0


class WeightedFairScheduler:
    """Stride scheduler over (tenant, lane) queues."""

    def __init__(self) -> None:
        self._weights: Dict[str, float] = {}
        self._passes: Dict[Tuple[str, str], float] = {}
        self._lane_floor: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Tenant registration
    # ------------------------------------------------------------------
    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ServingError(f"tenant weight must be positive: {weight}")
        self._weights[tenant] = weight

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, DEFAULT_TENANT_WEIGHT)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def next_tenant(self, lane: str, candidates: List[str]) -> Optional[str]:
        """The backlogged tenant owed the next dispatch in ``lane``.

        ``candidates`` must be the tenants with queued work (any order);
        the choice minimizes (effective pass, tenant name).
        """
        best: Optional[str] = None
        best_pass = 0.0
        for tenant in sorted(candidates):
            current = self._effective_pass(tenant, lane)
            if best is None or current < best_pass:
                best = tenant
                best_pass = current
        return best

    def charge(self, tenant: str, lane: str) -> None:
        """Account one dispatch to ``tenant`` in ``lane``."""
        current = self._effective_pass(tenant, lane)
        self._passes[(tenant, lane)] = current + STRIDE_SCALE / self.weight(
            tenant
        )
        # The floor trails the last dispatched pass so tenants that were
        # idle re-enter at the current virtual time, not at zero.
        self._lane_floor[lane] = current

    def _effective_pass(self, tenant: str, lane: str) -> float:
        stored = self._passes.get((tenant, lane), 0.0)
        return max(stored, self._lane_floor.get(lane, 0.0))
