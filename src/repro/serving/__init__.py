"""The serving front door: admission control, fairness, backpressure.

BestPeer++ is pitched as a pay-as-you-go *service* shared by many corporate
tenants; between "millions of users" and the query engines there must be a
layer that keeps the platform responsive when demand outstrips capacity.
This package is that layer, entirely on the simulated clock:

* :mod:`~repro.serving.admission` — bounded per-tenant, per-lane queues
  with deadline-aware shedding and retry-after hints,
* :mod:`~repro.serving.scheduler` — a weighted-fair (stride) scheduler
  across tenants with strict interactive-over-bulk lane priority,
* :mod:`~repro.serving.frontdoor` — the event-driven dispatch loop tying
  admission to a bounded worker pool wrapping the existing engines, with
  backpressure propagating from worker saturation back to admission.

Per-tenant SLO counters (admitted/shed/deadline-missed, queue-wait and
end-to-end latency percentiles) land in
:class:`repro.core.metrics.MetricsRegistry` and surface through the
console's ``serving status`` view.
"""

from repro.serving.admission import (
    AdmissionController,
    AdmissionTicket,
    QueuedRequest,
    REASON_BACKPRESSURE,
    REASON_DEADLINE,
    REASON_QUEUE_FULL,
    SHED_REASONS,
    ServingRequest,
)
from repro.serving.frontdoor import ServingFrontDoor
from repro.serving.scheduler import WeightedFairScheduler

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "QueuedRequest",
    "ServingRequest",
    "ServingFrontDoor",
    "WeightedFairScheduler",
    "REASON_QUEUE_FULL",
    "REASON_BACKPRESSURE",
    "REASON_DEADLINE",
    "SHED_REASONS",
]
